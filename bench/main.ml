(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation and times the synthesis flow with Bechamel (one Test.make per
   table harness, plus per-stage ablation timings).

   Run with:  dune exec bench/main.exe
   Fast mode: dune exec bench/main.exe -- --quick  (small benchmarks only)
   JSON mode: dune exec bench/main.exe -- --quick --json
              (tables suppressed; emits a polysynth-bench/1 document on
              stdout — see Polysynth_report.Bench_json.  Pass
              --baseline FILE to annotate each result with the speedup
              against a previously captured run.)
   Check:     dune exec bench/main.exe -- --validate FILE
              (validates a captured JSON document and exits non-zero on a
              schema violation; used by `make bench-json`.) *)

open Bechamel
module T = Polysynth_report.Tables
module Bench_json = Polysynth_report.Bench_json
module P = Polysynth_poly.Poly
module Ring = Polysynth_finite_ring.Canonical
module Squarefree = Polysynth_factor.Squarefree
module Extract = Polysynth_cse.Extract
module Kernel = Polysynth_cse.Kernel
module Cce = Polysynth_core.Cce
module Integrated = Polysynth_core.Integrated
module Engine = Polysynth_engine.Engine
module Netlist = Polysynth_hw.Netlist
module Simplify = Polysynth_analysis.Simplify
module Ex = Polysynth_workloads.Examples
module B = Polysynth_workloads.Benchmarks

let has flag = Array.exists (fun a -> a = flag) Sys.argv

let arg_value flag =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let quick = has "--quick"
let json_mode = has "--json"

let quick_names = [ "SG 3x2"; "Quad"; "Mibench"; "MVCS" ]

let table_names = if quick then Some quick_names else None

(* ---- validation mode ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the two results the acceptance gate tracks must always be present *)
let required_results =
  [ "polysynth/kernel_extraction_t143"; "polysynth/integrated_t143" ]

let () =
  match arg_value "--validate" with
  | None -> ()
  | Some path ->
    (match Bench_json.validate ~required:required_results (read_file path) with
     | Ok () ->
       Printf.printf "%s: valid %s document\n" path Bench_json.schema;
       exit 0
     | Error msg ->
       Printf.eprintf "%s: %s\n" path msg;
       exit 1)

(* ---- part 1: regenerate the paper's tables -------------------------------- *)

let () =
  if json_mode then ()
  else begin
    print_endline "=== Reproduction of the paper's tables ===";
    print_newline ();
    print_string
      (T.render_counts ~title:"Table 14.1 — decompositions of the motivating system"
         (T.table_14_1_rows ()));
    print_newline ();
    print_string
      (T.render_counts ~title:"Table 14.2 — Algorithm 7 walk-through"
         (T.table_14_2_rows ()));
    print_newline ();
    print_string (T.render_table_14_3 (T.table_14_3_rows ?names:table_names ()));
    print_newline ();
    print_string (T.render_ablation (T.ablation_rows ~names:quick_names ()));
    print_newline ();
    print_endline "Fig. 14.1 — representation lists (Table 14.2 system):";
    print_string (T.fig_14_1_dump ());
    print_newline ();
    print_string
      (T.render_named_ablation
         ~title:"Extraction strategy — greedy vs KCM prime rectangles"
         (T.strategy_rows ~names:quick_names ()));
    print_newline ();
    print_string
      (T.render_named_ablation ~title:"Search objective — area/delay/power/ops"
         (T.objective_rows ()));
    print_newline ();
    print_string (T.render_schedule (T.schedule_rows ()));
    print_newline ();
    print_endline "Extended workload suite:";
    print_string (T.render_table_14_3 (T.extended_rows ()));
    print_newline ();
    print_string (T.render_implementation (T.implementation_rows ()));
    print_newline ()
  end

(* ---- part 1b: certificate-guarded simplify pass --------------------------- *)

(* One row per benchmark: synthesize the proposed decomposition, lower it,
   run the guarded simplify pass and record how many cells it removed plus
   its wall time.  The counts also land in the JSON document as the
   optional [cells_eliminated] field. *)

let bench_slug name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | '0' .. '9' -> c | _ -> '_')
    (String.lowercase_ascii name)

(* operator cells that cost hardware: everything except inputs, constants
   and shifts (free wiring) — the count strength reduction lowers *)
let costed_ops (n : Netlist.t) =
  Array.fold_left
    (fun acc (c : Netlist.cell) ->
      match c.Netlist.op with
      | Netlist.Input _ | Netlist.Constant _ | Netlist.Shl _ -> acc
      | _ -> acc + 1)
    0 n.Netlist.cells

let simplify_rows () =
  let names =
    if quick then quick_names else List.map (fun b -> b.B.name) (B.all ())
  in
  List.map
    (fun n ->
      let b = Option.get (B.by_name n) in
      let config =
        {
          (Engine.Config.default ~width:b.B.width) with
          Engine.Config.parallelism = 1;
          certify = false;
        }
      in
      let r, _ = Engine.synthesize config b.B.polys in
      let net = Netlist.of_prog ~width:b.B.width r.Engine.prog in
      let named =
        List.mapi (fun i p -> (Printf.sprintf "P%d" (i + 1), p)) b.B.polys
      in
      let t0 = Unix.gettimeofday () in
      let o = Simplify.run ~system:named net in
      let t1 = Unix.gettimeofday () in
      (b.B.name, net, o, Float.max 1.0 ((t1 -. t0) *. 1e9)))
    names

let simplify_results = simplify_rows ()

let () =
  if json_mode then ()
  else begin
    print_endline
      "=== Certificate-guarded simplify pass (proposed netlists) ===";
    List.iter
      (fun (name, net, (o : Simplify.outcome), _ns) ->
        Printf.printf
          "  %-10s cells %3d -> %3d, costed ops %3d -> %3d  (%d \
           rewrite(s) applied, %d cell(s) eliminated)\n"
          name o.Simplify.stats.Simplify.cells_before
          o.Simplify.stats.Simplify.cells_after (costed_ops net)
          (costed_ops o.Simplify.netlist)
          o.Simplify.stats.Simplify.applied
          (Simplify.cells_eliminated o))
      simplify_results;
    print_newline ()
  end

(* ---- part 2: Bechamel timings --------------------------------------------- *)

let sg3 = (Option.get (B.by_name "SG 3x2")).B.polys
let mvcs = (Option.get (B.by_name "MVCS")).B.polys

(* the Table 14.3 benchmark set the trajectory numbers are computed over:
   the quick subset in --quick mode, all eight systems otherwise *)
let t143_systems =
  let names =
    if quick then quick_names else List.map (fun b -> b.B.name) (B.all ())
  in
  List.map (fun n -> (Option.get (B.by_name n)).B.polys) names

let stage f = Staged.stage f

(* one Test.make per table of the paper *)
let test_table_14_1 =
  Test.make ~name:"table_14_1" (stage (fun () -> ignore (T.table_14_1_rows ())))

let test_table_14_2 =
  Test.make ~name:"table_14_2" (stage (fun () -> ignore (T.table_14_2_rows ())))

let test_table_14_3_row =
  (* one representative row of Table 14.3 (the full table is printed above;
     timing the 25-polynomial systems per-iteration would take minutes) *)
  Test.make ~name:"table_14_3_row_quad"
    (stage (fun () -> ignore (T.table_14_3_rows ~names:[ "Quad" ] ())))

let test_fig_14_1 =
  Test.make ~name:"fig_14_1" (stage (fun () -> ignore (T.fig_14_1_dump ())))

(* per-stage ablation timings of the pipeline on SG 3x2 *)
let test_stage_cce =
  Test.make ~name:"stage_cce"
    (stage (fun () -> List.iter (fun p -> ignore (Cce.extract p)) sg3))

let test_stage_kernels =
  Test.make ~name:"stage_kernels"
    (stage (fun () -> List.iter (fun p -> ignore (Kernel.kernels p)) sg3))

let test_stage_squarefree =
  Test.make ~name:"stage_squarefree"
    (stage (fun () -> List.iter (fun p -> ignore (Squarefree.squarefree p)) sg3))

let test_stage_canonical =
  let ctx = Ring.make_ctx ~out_width:16 () in
  Test.make ~name:"stage_canonical"
    (stage (fun () -> List.iter (fun p -> ignore (Ring.canonicalize ctx p)) sg3))

let test_stage_extraction =
  Test.make ~name:"stage_extraction"
    (stage (fun () -> ignore (Extract.run ~mode:Extract.Vars_only sg3)))

(* the acceptance-gate pair: kernel/co-kernel extraction and end-to-end
   integrated synthesis over the Table 14.3 set *)
let test_kernel_t143 =
  Test.make ~name:"kernel_extraction_t143"
    (stage (fun () ->
         List.iter
           (fun polys -> List.iter (fun p -> ignore (Kernel.kernels p)) polys)
           t143_systems))

let test_kernel_t143_cold =
  (* same work with the kernel memo table dropped first, so this measures
     the raw representation rather than cache hits *)
  Test.make ~name:"kernel_extraction_t143_cold"
    (stage (fun () ->
         Kernel.clear_cache ();
         List.iter
           (fun polys -> List.iter (fun p -> ignore (Kernel.kernels p)) polys)
           t143_systems))

let test_integrated_t143 =
  Test.make ~name:"integrated_t143"
    (stage (fun () ->
         List.iter (fun polys -> ignore (Integrated.decompose polys)) t143_systems))

(* engine configurations: the cache is disabled so every iteration measures a
   full representation build rather than a memo lookup *)
let engine_config ~parallelism =
  { (Engine.Config.default ~width:16) with
    Engine.Config.parallelism;
    cache = false }

let test_pipeline_mvcs =
  Test.make ~name:"engine_proposed_mvcs"
    (stage (fun () ->
         ignore (Engine.run (engine_config ~parallelism:1) Engine.Proposed mvcs)))

let test_pipeline_table_14_1 =
  Test.make ~name:"engine_proposed_14_1"
    (stage (fun () ->
         ignore
           (Engine.run (engine_config ~parallelism:1) Engine.Proposed
              Ex.table_14_1)))

(* sequential vs parallel fan-out over the 9-polynomial SG 3x2 system; on a
   single-core host the two coincide (the engine falls back to List.map) *)
let test_engine_sequential =
  Test.make ~name:"engine_sg3_sequential"
    (stage (fun () ->
         ignore (Engine.run (engine_config ~parallelism:1) Engine.Proposed sg3)))

let test_engine_parallel =
  Test.make ~name:"engine_sg3_parallel"
    (stage (fun () ->
         ignore (Engine.run (engine_config ~parallelism:0) Engine.Proposed sg3)))

let test_stage_kcm =
  Test.make ~name:"stage_kcm_extraction"
    (stage (fun () ->
         ignore (Extract.run ~mode:Extract.Vars_only ~strategy:Extract.Kcm_rectangles sg3)))

let tests =
  Test.make_grouped ~name:"polysynth" ~fmt:"%s/%s"
    [
      test_table_14_1;
      test_table_14_2;
      test_table_14_3_row;
      test_fig_14_1;
      test_stage_cce;
      test_stage_kernels;
      test_stage_squarefree;
      test_stage_canonical;
      test_stage_extraction;
      test_stage_kcm;
      test_kernel_t143;
      test_kernel_t143_cold;
      test_integrated_t143;
      test_pipeline_mvcs;
      test_pipeline_table_14_1;
      test_engine_sequential;
      test_engine_parallel;
    ]

let () =
  if not json_mode then
    print_endline "=== Bechamel timings (ns per call, OLS fit) ===";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~stabilize:true
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let rows =
    List.map
      (fun (name, est) ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (v :: _) -> v
          | Some [] | None -> nan
        in
        (name, ns))
      rows
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if json_mode then begin
    let baseline =
      match arg_value "--baseline" with
      | None -> None
      | Some path ->
        Some
          (List.map
             (fun e -> (e.Bench_json.name, e.Bench_json.ns_per_run))
             (Bench_json.parse_exn (read_file path)))
    in
    let entries =
      List.map
        (fun (name, ns) ->
          { Bench_json.name; ns_per_run = ns; cells_eliminated = None })
        rows
      @ List.map
          (fun (name, _net, o, ns) ->
            {
              Bench_json.name = "polysynth/simplify_" ^ bench_slug name;
              ns_per_run = ns;
              cells_eliminated = Some (Simplify.cells_eliminated o);
            })
          simplify_results
    in
    print_string
      (Bench_json.render ?baseline
         ~mode:(if quick then "quick" else "full")
         entries)
  end
  else
    List.iter
      (fun (name, ns) -> Printf.printf "  %-36s %12.0f ns/run\n" name ns)
      rows
