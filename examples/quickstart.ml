(* Quickstart: parse a polynomial system, synthesize it, inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

module Parse = Polysynth_poly.Parse
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Engine = Polysynth_engine.Engine

let () =
  (* the motivating system from Table 14.1 of the paper *)
  let system =
    Parse.system_exn
      "x^2 + 6*x*y + 9*y^2;  4*x*y^2 + 12*y^3;  2*x^2*z + 6*x*y*z"
  in

  (* one call runs the whole integrated flow: representation building
     (square-free, CCE, cube extraction, algebraic division), combination
     search, CSE, and hardware cost estimation *)
  let result, trace = Engine.synthesize (Engine.Config.default ~width:16) system in

  Format.printf "chosen decomposition:@.%a@.@." Prog.pp result.Engine.prog;
  Format.printf "operators: %d MULT, %d ADD@." result.Engine.counts.Dag.mults
    result.Engine.counts.Dag.adds;
  Format.printf "estimated hardware: %a@." Cost.pp_report result.Engine.cost;

  (* the decomposition provably computes the same polynomials *)
  assert (Engine.verify system result.Engine.prog);
  Format.printf "verified: the program expands back to the input system@.@.";

  (* where the time went *)
  Format.printf "%a" Engine.Trace.pp trace
