(* Scenario: an 8-bit automotive kernel optimized modulo 2^8.

   Over narrow bit-vectors the finite-ring structure matters: polynomials
   that differ over the integers can be the same 8-bit function, and
   canonical forms both decide that equivalence and expose cheap
   falling-factorial building blocks.

   Run with:  dune exec examples/automotive_mibench.exe *)

module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module Ring = Polysynth_finite_ring.Canonical
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Engine = Polysynth_engine.Engine
module B = Polysynth_workloads.Benchmarks

let () =
  let bench = Option.get (B.by_name "Mibench") in
  let width = bench.B.width in
  let ctx = Ring.make_ctx ~out_width:width () in

  (* 1. ring-aware equivalence checking: 128*x^2 and 128*x compute the same
     8-bit function (x^2 = x mod 2 and 128 kills the rest) *)
  let a = Parse.poly_exn "128*x^2" and b = Parse.poly_exn "128*x" in
  Format.printf "128*x^2 == 128*x over Z_2^8?  %b@.@."
    (Ring.equal_functions ctx a b);

  (* 2. synthesize the benchmark with and without ring knowledge *)
  let config = Engine.Config.default ~width in
  let plain, _ = Engine.synthesize config bench.B.polys in
  let ring, _ =
    Engine.synthesize { config with Engine.Config.ctx = Some ctx } bench.B.polys
  in
  Format.printf "without ring ctx: MULT=%d ADD=%d area=%d@."
    plain.Engine.counts.Dag.mults plain.Engine.counts.Dag.adds
    plain.Engine.cost.Cost.area;
  Format.printf "with    ring ctx: MULT=%d ADD=%d area=%d@.@."
    ring.Engine.counts.Dag.mults ring.Engine.counts.Dag.adds
    ring.Engine.cost.Cost.area;

  Format.printf "decomposition:@.%a@.@." Prog.pp ring.Engine.prog;
  assert (Engine.verify ~ctx bench.B.polys ring.Engine.prog);

  (* 3. exhaustive bit-accurate check on a slice of the input space *)
  let outputs_match xv yv zv =
    let env v =
      match v with
      | "x" -> Z.of_int xv
      | "y" -> Z.of_int yv
      | _ -> Z.of_int zv
    in
    let produced = Prog.eval ring.Engine.prog env in
    List.for_all2
      (fun (i : int) q ->
        Z.equal
          (Z.erem_pow2 (P.eval env q) width)
          (Z.erem_pow2 (List.assoc (Printf.sprintf "P%d" i) produced) width))
      [ 1; 2 ] bench.B.polys
  in
  let ok = ref true in
  for xv = 0 to 255 do
    if not (outputs_match xv ((xv * 7) mod 256) ((xv * 13) mod 256)) then
      ok := false
  done;
  Format.printf "bit-accurate sweep over 256 input triples: %s@."
    (if !ok then "all match" else "MISMATCH")
