(* Scenario: taking a decomposition through the hardware back-end —
   scheduling under resource constraints, power estimation, bit-width
   range analysis, and testbench generation.

   Run with:  dune exec examples/hls_backend.exe *)

module Parse = Polysynth_poly.Parse
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Cost = Polysynth_hw.Cost
module Power = Polysynth_hw.Power
module Range = Polysynth_hw.Range
module Schedule = Polysynth_hw.Schedule
module Bind = Polysynth_hw.Bind
module Testbench = Polysynth_hw.Testbench
module Engine = Polysynth_engine.Engine

let () =
  let width = 16 in
  let system =
    Parse.system_exn
      "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11;
       15*x^2 - 30*x*y + 15*y^2 + 11*x + 11*y + 9"
  in
  let result, _trace = Engine.synthesize (Engine.Config.default ~width) system in
  Format.printf "decomposition:@.%a@.@." Prog.pp result.Engine.prog;

  let netlist = Netlist.of_prog ~width result.Engine.prog in

  (* area/delay, power and wordlength growth of the implementation *)
  Format.printf "cost:  %a@." Cost.pp_report (Cost.of_netlist netlist);
  Format.printf "%a@." Power.pp_report (Power.estimate netlist);
  Format.printf
    "range: widest intermediate needs %d bits (input range 0..2^%d-1)@.@."
    (Range.max_required_width netlist)
    width;

  (* latency under shrinking resource budgets *)
  Format.printf "scheduling (2-cycle multipliers, 1-cycle adders):@.";
  List.iter
    (fun (m, a) ->
      match
        Schedule.list_schedule { Schedule.multipliers = m; adders = a } netlist
      with
      | Ok s ->
        Format.printf "  %d multiplier(s), %d adder(s): %d steps@." m a
          s.Schedule.latency
      | Error (`No_progress d) ->
        Format.printf "  %d multiplier(s), %d adder(s): stuck (%s)@." m a
          d.Schedule.message)
    [ (4, 4); (2, 2); (1, 2); (1, 1) ];

  (* bind the 1-multiplier schedule onto units and registers *)
  let res = { Schedule.multipliers = 1; adders = 1 } in
  let s = Schedule.list_schedule_exn res netlist in
  let b = Bind.bind res netlist s in
  Format.printf
    "@.binding at 1 multiplier / 1 adder: %d multiplier(s), %d adder(s), %d      register(s), %d mux input(s)@."
    b.Bind.num_multipliers b.Bind.num_adders b.Bind.num_registers
    b.Bind.mux_inputs;

  (* a self-checking testbench to hand to a simulator *)
  let tb = Testbench.emit ~module_name:"polysynth" ~vectors:8 netlist in
  Format.printf "@.testbench: %d lines of self-checking Verilog@."
    (List.length (String.split_on_char '\n' tb))
