(* Scenario: a quadratic (Volterra) filter section built with the library
   API rather than the parser, then simulated bit-accurately.

   Polynomial signal processing (Mathews & Sicuranza) implements filters
   y[n] = sum a_i x_i + sum b_ij x_i x_j; with symmetric kernels the
   quadratic part is a perfect square, which the proposed flow detects and
   turns into one multiplier.

   Run with:  dune exec examples/quadratic_filter.exe *)

module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Engine = Polysynth_engine.Engine

let () =
  (* build 4*(x + y)^2 + 5*x + 10*y + 3 from the Poly combinators *)
  let x = P.var "x" and y = P.var "y" in
  let symmetric = P.mul_scalar (Z.of_int 4) (P.pow (P.add x y) 2) in
  let channel1 =
    P.add_list
      [ symmetric; P.mul_scalar (Z.of_int 5) x; P.mul_scalar (Z.of_int 10) y;
        P.of_int 3 ]
  in
  let channel2 =
    P.add_list
      [ P.mul_scalar (Z.of_int 6) (P.pow (P.add x y) 2);
        P.mul_scalar (Z.of_int 7) (P.sub x y); P.of_int 2 ]
  in
  let system = [ channel1; channel2 ] in
  List.iteri
    (fun i q -> Format.printf "channel %d: %s@." (i + 1) (P.to_string q))
    system;

  let result, _trace =
    Engine.synthesize (Engine.Config.default ~width:16) system
  in
  Format.printf "@.decomposition:@.%a@.@." Prog.pp result.Engine.prog;
  assert (Engine.verify system result.Engine.prog);

  (* simulate the synthesized netlist on a short input stream and check it
     against direct polynomial evaluation (both wrap at 16 bits) *)
  let netlist = Netlist.of_prog ~width:16 result.Engine.prog in
  let samples = [ (0, 0); (1, 2); (100, 50); (65535, 1); (1234, 4321) ] in
  List.iter
    (fun (xv, yv) ->
      let env v = if String.equal v "x" then Z.of_int xv else Z.of_int yv in
      let outputs = Netlist.eval netlist env in
      List.iteri
        (fun i q ->
          let expected = Z.erem_pow2 (P.eval env q) 16 in
          let got = List.assoc (Printf.sprintf "P%d" (i + 1)) outputs in
          assert (Z.equal expected got))
        system;
      Format.printf "x=%-6d y=%-6d -> y1=%s y2=%s@." xv yv
        (Z.to_string (List.assoc "P1" outputs))
        (Z.to_string (List.assoc "P2" outputs)))
    samples;
  Format.printf "netlist simulation matches polynomial evaluation@."
