(* Scenario: synthesizing a 2-D Savitzky-Golay smoothing filter bank.

   A 5x5 window, degree-2 SG filter evaluates 25 kernel polynomials — one
   per window position — over the fit coordinates.  This is the "SG 5x2"
   benchmark of the paper's Table 14.3.  The example generates the exact
   least-squares system, compares all four synthesis methods, and emits
   Verilog for the best one.

   Run with:  dune exec examples/savitzky_golay_filter.exe *)

module P = Polysynth_poly.Poly
module Ring = Polysynth_finite_ring.Canonical
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Verilog = Polysynth_hw.Verilog
module Engine = Polysynth_engine.Engine
module SG = Polysynth_workloads.Savitzky_golay

let () =
  let width = 16 in
  let system = SG.system ~window:5 ~degree:2 in
  Format.printf "SG 5x2: %d polynomials, first kernel:@.  %s@.@."
    (List.length system)
    (P.to_string (List.hd system));

  let ctx = Ring.make_ctx ~out_width:width () in
  let config =
    { (Engine.Config.default ~width) with Engine.Config.ctx = Some ctx }
  in
  let reports, trace = Engine.compare_methods config system in
  List.iter
    (fun r ->
      Format.printf "%-12s MULT=%-3d ADD=%-3d area=%-7d delay=%.1f@."
        (Engine.method_label r.Engine.method_name)
        r.Engine.counts.Dag.mults r.Engine.counts.Dag.adds
        r.Engine.cost.Cost.area r.Engine.cost.Cost.delay)
    reports;
  Format.printf
    "(baselines served from the cached representation store: %d cache hits)@."
    trace.Engine.Trace.cache_hits;

  let proposed = List.nth reports 3 in
  assert (Engine.verify ~ctx system proposed.Engine.prog);

  let verilog =
    Verilog.emit_prog ~module_name:"sg5x2_bank" ~width proposed.Engine.prog
  in
  let lines = String.split_on_char '\n' verilog in
  Format.printf "@.Verilog (%d lines), interface:@." (List.length lines);
  List.iteri (fun i l -> if i < 8 then Format.printf "  %s@." l) lines
