(* Differential fuzzer: random polynomial systems through every synthesis
   method, cross-checked at five levels —
   1. certificates: the engine's own equivalence certifier must return
      Verified for every method (a Refuted certificate prints its
      counterexample input; Unknown is also a failure here, since these
      systems are far below the expansion budget);
   2. bit-accurate: the operator netlist and its MCM lowering agree with
      direct polynomial evaluation mod 2^width on random input vectors
      (Equiv.spot_check_netlist);
   3. lint: the proposed decomposition carries no error-severity
      static-analysis finding;
   4. rewrites: the scheduler (typed result interface) and binder
      invariants hold on the synthesized netlist;
   5. simplify: the certificate-guarded simplification pass keeps the
      netlist Verified against the source system, and never proposes a
      rewrite the certificate refutes (a Refuted rejection would mean the
      proposer itself is unsound, not just imprecise).

   Usage:  fuzz [ITERATIONS] [SEED]      (defaults: 200, 1)
   Exit code 0 = all checks passed. *)

module P = Polysynth_poly.Poly
module Netlist = Polysynth_hw.Netlist
module Mcm = Polysynth_hw.Mcm
module Schedule = Polysynth_hw.Schedule
module Bind = Polysynth_hw.Bind
module Engine = Polysynth_engine.Engine
module Rand = Polysynth_workloads.Random_system
module Equiv = Polysynth_analysis.Equiv
module Diag = Polysynth_analysis.Diag
module Suite = Polysynth_analysis.Suite
module Simplify = Polysynth_analysis.Simplify
module Canonical = Polysynth_finite_ring.Canonical

type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed0 = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let rng = make_rng seed0 in
  let failures = ref 0 in
  let improvements = ref [] in
  for i = 1 to iterations do
    let seed = seed0 + (i * 7919) in
    let cfg =
      {
        Rand.default_config with
        Rand.num_polys = 1 + next rng 3;
        num_vars = 2 + next rng 2;
        max_terms = 2 + next rng 5;
        max_degree = 1 + next rng 3;
        sharing = next rng 2 = 0;
      }
    in
    let system = Rand.generate ~seed cfg in
    let width = [| 8; 12; 16 |].(next rng 3) in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr failures;
          Printf.printf "FAIL (seed %d): %s\n%!" seed msg)
        fmt
    in
    let reports, _trace =
      Engine.compare_methods (Engine.Config.default ~width) system
    in
    (* 1. every method's engine certificate is a proof of exactness *)
    List.iter
      (fun r ->
        match r.Engine.cert with
        | Equiv.Verified -> ()
        | Equiv.Refuted ce ->
          fail "%s refuted: %s"
            (Engine.method_label r.Engine.method_name)
            (Equiv.cert_to_string (Equiv.Refuted ce))
        | Equiv.Unknown reason ->
          fail "%s not certified: %s"
            (Engine.method_label r.Engine.method_name)
            reason)
      reports;
    (* 2. bit-accurate netlist checks on random vectors *)
    let proposed = List.nth reports 3 in
    let n = Netlist.of_prog ~width proposed.Engine.prog in
    let opt = Mcm.optimize n in
    let spot label netlist =
      match
        Equiv.spot_check_netlist ~seed:(seed lxor next rng 1024) ~samples:5
          system netlist
      with
      | Ok () -> ()
      | Error ce ->
        fail "%s mismatch: %s" label (Equiv.cert_to_string (Equiv.Refuted ce))
    in
    spot "netlist" n;
    spot "MCM" opt;
    (* 3. no error-severity lint finding on the proposed decomposition *)
    let suite_cfg =
      { (Suite.default ~width) with Suite.system = Some system; check = false }
    in
    let lint = Suite.analyze suite_cfg proposed.Engine.prog in
    List.iter
      (fun (d : Diag.t) ->
        if d.Diag.severity = Diag.Error then
          fail "lint: %s" (Diag.to_string d))
      (Suite.diags lint);
    (* 4. schedule + binding invariants *)
    let res =
      { Schedule.multipliers = 1 + next rng 3; adders = 1 + next rng 3 }
    in
    (match Schedule.list_schedule res n with
     | Error (`No_progress d) -> fail "scheduler stuck: %s" d.Schedule.message
     | Ok s ->
       if not (Schedule.is_valid res n s) then fail "invalid schedule";
       let b = Bind.bind res n s in
       if not (Bind.is_consistent n s b) then fail "inconsistent binding");
    (* 5. the guarded simplify pass preserves semantics *)
    let named =
      List.mapi (fun k p -> (Printf.sprintf "P%d" (k + 1), p)) system
    in
    let o = Simplify.run ~system:named n in
    (match
       Equiv.certify
         ~ctx:(Canonical.make_ctx ~out_width:width ())
         system
         (Netlist.to_prog o.Simplify.netlist)
     with
     | Equiv.Verified -> ()
     | c ->
       fail "simplified netlist not verified: %s" (Equiv.cert_to_string c));
    List.iter
      (fun ((rw : Simplify.rewrite), (c : Equiv.cert)) ->
        match c with
        | Equiv.Refuted _ ->
          fail "simplify proposed an unsound rewrite: %s"
            (Simplify.describe rw)
        | _ -> ())
      o.Simplify.rejected;
    (* stats *)
    let base = List.nth reports 2 in
    if base.Engine.cost.Polysynth_hw.Cost.area > 0 then
      improvements :=
        (100.
        *. (1.
           -. float_of_int proposed.Engine.cost.Polysynth_hw.Cost.area
              /. float_of_int base.Engine.cost.Polysynth_hw.Cost.area))
        :: !improvements
  done;
  let avg =
    match !improvements with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  Printf.printf
    "fuzz: %d iterations, %d failures; avg area improvement over factor+cse: \
     %.1f%%\n"
    iterations !failures avg;
  exit (if !failures = 0 then 0 else 1)
