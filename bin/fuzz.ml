(* Differential fuzzer: random polynomial systems through every synthesis
   method, cross-checked at three levels —
   1. symbolic: every program expands back to the input system;
   2. bit-accurate: the operator netlist agrees with direct polynomial
      evaluation mod 2^width on random input vectors;
   3. rewrites: the MCM shift-add lowering and the scheduler/binder
      invariants hold on the synthesized netlist.

   Usage:  fuzz [ITERATIONS] [SEED]      (defaults: 200, 1)
   Exit code 0 = all checks passed. *)

module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Mcm = Polysynth_hw.Mcm
module Schedule = Polysynth_hw.Schedule
module Bind = Polysynth_hw.Bind
module Pipe = Polysynth_core.Pipeline
module Engine = Polysynth_engine.Engine
module Rand = Polysynth_workloads.Random_system

type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed0 = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let rng = make_rng seed0 in
  let failures = ref 0 in
  let improvements = ref [] in
  for i = 1 to iterations do
    let seed = seed0 + (i * 7919) in
    let cfg =
      {
        Rand.default_config with
        Rand.num_polys = 1 + next rng 3;
        num_vars = 2 + next rng 2;
        max_terms = 2 + next rng 5;
        max_degree = 1 + next rng 3;
        sharing = next rng 2 = 0;
      }
    in
    let system = Rand.generate ~seed cfg in
    let width = [| 8; 12; 16 |].(next rng 3) in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr failures;
          Printf.printf "FAIL (seed %d): %s\n%!" seed msg)
        fmt
    in
    let reports, _trace =
      Engine.compare_methods (Engine.Config.default ~width) system
    in
    (* 1. symbolic exactness of every method *)
    List.iter
      (fun r ->
        if not (Pipe.verify system r.Pipe.prog) then
          fail "%s is not exact" (Pipe.method_label r.Pipe.method_name))
      reports;
    (* 2. bit-accurate netlist checks on random vectors *)
    let proposed = List.nth reports 3 in
    let n = Netlist.of_prog ~width proposed.Pipe.prog in
    let opt = Mcm.optimize n in
    for _ = 1 to 5 do
      let point =
        List.map
          (fun v -> (v, Z.of_int (next rng (1 lsl width))))
          (List.sort_uniq String.compare (List.concat_map P.vars system))
      in
      let env v =
        match List.assoc_opt v point with Some x -> x | None -> Z.zero
      in
      let netlist_out = Netlist.eval n env in
      let mcm_out = Netlist.eval opt env in
      List.iteri
        (fun k q ->
          let name = Printf.sprintf "P%d" (k + 1) in
          let expected = Z.erem_pow2 (P.eval env q) width in
          (match List.assoc_opt name netlist_out with
           | Some got when Z.equal got expected -> ()
           | _ -> fail "netlist mismatch on %s" name);
          match List.assoc_opt name mcm_out with
          | Some got when Z.equal got expected -> ()
          | _ -> fail "MCM mismatch on %s" name)
        system
    done;
    (* 3. schedule + binding invariants *)
    let res =
      { Schedule.multipliers = 1 + next rng 3; adders = 1 + next rng 3 }
    in
    let s = Schedule.list_schedule res n in
    if not (Schedule.is_valid res n s) then fail "invalid schedule";
    let b = Bind.bind res n s in
    if not (Bind.is_consistent n s b) then fail "inconsistent binding";
    (* stats *)
    let base = List.nth reports 2 in
    if base.Pipe.cost.Polysynth_hw.Cost.area > 0 then
      improvements :=
        (100.
        *. (1.
           -. float_of_int proposed.Pipe.cost.Polysynth_hw.Cost.area
              /. float_of_int base.Pipe.cost.Polysynth_hw.Cost.area))
        :: !improvements
  done;
  let avg =
    match !improvements with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  Printf.printf
    "fuzz: %d iterations, %d failures; avg area improvement over factor+cse: \
     %.1f%%\n"
    iterations !failures avg;
  exit (if !failures = 0 then 0 else 1)
