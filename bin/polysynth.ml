(* Command-line front-end: synthesize a polynomial system from a text file.

   Example:
     polysynth system.poly --method proposed --width 16 --ring \
               --verilog out.v --show-program *)

module Parse = Polysynth_poly.Parse
module Ring = Polysynth_finite_ring.Canonical
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Verilog = Polysynth_hw.Verilog
module Netlist = Polysynth_hw.Netlist
module Power = Polysynth_hw.Power
module Range = Polysynth_hw.Range
module Dot = Polysynth_hw.Dot
module Testbench = Polysynth_hw.Testbench
module Cemit = Polysynth_hw.Cemit
module Mcm = Polysynth_hw.Mcm
module Prog_parse = Polysynth_expr.Prog_parse
module Stage = Polysynth_hw.Stage
module Fsmd = Polysynth_hw.Fsmd
module Schedule = Polysynth_hw.Schedule
module Engine = Polysynth_engine.Engine
module Search = Polysynth_core.Search
module Suite = Polysynth_analysis.Suite
module Equiv = Polysynth_analysis.Equiv
module Diag = Polysynth_analysis.Diag
module Absint = Polysynth_analysis.Absint
module Simplify = Polysynth_analysis.Simplify
module Benchmarks = Polysynth_workloads.Benchmarks

open Cmdliner

(* ---- one record instead of seventeen positional parameters ------------ *)

type options = {
  input : string;
  method_name : Engine.method_name;
  width : int;
  use_ring : bool;
  objective : Search.objective;
  jobs : int;
  time_budget : float option;
  candidate_budget : int option;
  no_cache : bool;
  verilog_out : string option;
  dot_out : string option;
  testbench_out : string option;
  fsmd_out : string option;
  c_out : string option;
  use_mcm : bool;
  show_power : bool;
  show_range : bool;
  pipeline_period : float option;
  show_program : bool;
  compare_all : bool;
  evaluate : bool;
  json : bool;
  show_trace : bool;
  check : bool;
  lint : bool;
  analyze : bool;
  simplify : bool;
  benchmark : string option;
}

let config_of options =
  let ctx =
    if options.use_ring then Some (Ring.make_ctx ~out_width:options.width ())
    else None
  in
  {
    (Engine.Config.default ~width:options.width) with
    Engine.Config.ctx;
    objective = options.objective;
    parallelism = options.jobs;
    time_budget = options.time_budget;
    candidate_budget = options.candidate_budget;
    cache = not options.no_cache;
    simplify = options.simplify;
  }

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

(* ---- JSON report ------------------------------------------------------ *)

let json_of_report (r : Engine.report) =
  Printf.sprintf
    {|{"method":"%s","mults":%d,"adds":%d,"area":%d,"delay":%.3f,"labels":[%s],"certificate":%s}|}
    (Engine.method_label r.Engine.method_name)
    r.Engine.counts.Dag.mults r.Engine.counts.Dag.adds r.Engine.cost.Cost.area
    r.Engine.cost.Cost.delay
    (String.concat ","
       (List.map (fun l -> Engine.Trace.json_string l) r.Engine.labels))
    (Equiv.cert_to_json r.Engine.cert)

let print_json ~options ~verified ?lint reports trace =
  Printf.printf
    {|{"width":%d,"ring":%b,"verified":%b,"reports":[%s],"lint":%s,"trace":%s}|}
    options.width options.use_ring verified
    (String.concat "," (List.map json_of_report reports))
    (match lint with Some l -> Suite.to_json l | None -> "null")
    (Engine.Trace.to_json trace);
  print_newline ()

(* ---- static analysis --------------------------------------------------- *)

let is_verified = function Equiv.Verified -> true | _ -> false

(* equivalence certification already ran inside the engine; the suite here
   contributes well-formedness, width and redundancy findings *)
let lint_of options ~ctx ?system prog =
  let cfg =
    {
      (Suite.default ~width:options.width) with
      Suite.ctx;
      system;
      check = false;
    }
  in
  Suite.analyze cfg prog

let print_lint l =
  let ds = Suite.diags l in
  if ds = [] then print_string "lint: no findings\n"
  else List.iter (fun d -> Printf.printf "lint: %s\n" (Diag.to_string d)) ds

(* 0 ok; 2 certificate not Verified; 4 scheduler/binder invariant
   violation; 3 other error-severity lint findings (Suite.exit_code
   encodes the 4-before-3 precedence) *)
let exit_code ~cert ~lint =
  match cert with
  | Some c when not (is_verified c) -> 2
  | _ -> (match lint with Some l -> Suite.exit_code l | None -> 0)

(* ---- evaluate mode ----------------------------------------------------- *)

let evaluate_program options text =
  match Prog_parse.program text with
  | Error (`Parse msg) ->
    Printf.eprintf "program error: %s\n" msg;
    1
  | Ok prog ->
    let width = options.width in
    let cost = Cost.of_prog ~width prog in
    let counts = Prog.counts prog in
    Printf.printf "given decomposition: MULT=%d ADD=%d area=%d delay=%.1f\n"
      counts.Dag.mults counts.Dag.adds cost.Cost.area cost.Cost.delay;
    let config = config_of options in
    let ctx = config.Engine.Config.ctx in
    let lint = if options.lint then Some (lint_of options ~ctx prog) else None in
    Option.iter print_lint lint;
    (* re-synthesize the expanded system for comparison *)
    let system = List.map snd (Prog.to_polys prog) in
    let r, _trace = Engine.run config Engine.Proposed system in
    Printf.printf "proposed flow:       MULT=%d ADD=%d area=%d delay=%.1f\n"
      r.Engine.counts.Dag.mults r.Engine.counts.Dag.adds
      r.Engine.cost.Cost.area r.Engine.cost.Cost.delay;
    if options.check then
      Printf.printf "certificate (proposed vs. given): %s\n"
        (Equiv.cert_to_string r.Engine.cert);
    if r.Engine.cost.Cost.area < cost.Cost.area then
      Format.printf "better decomposition found:@.%a@." Prog.pp r.Engine.prog;
    exit_code ~cert:(if options.check then Some r.Engine.cert else None) ~lint

(* ---- benchmark mode ---------------------------------------------------- *)

(* Run the built-in Table 14.3 systems, each at its published width, and
   certify/lint every result.  This is the CI "lint" target: the exit code
   is the worst per-benchmark {!exit_code}. *)
let run_benchmarks options name =
  let benches =
    match name with
    | "all" -> Ok (Benchmarks.all ())
    | n ->
      (match Benchmarks.by_name n with
       | Some b -> Ok [ b ]
       | None ->
         Error
           (Printf.sprintf
              "unknown benchmark %s (try 'all', or one of: %s)" n
              (String.concat ", "
                 (List.map
                    (fun b -> b.Benchmarks.name)
                    (Benchmarks.all ())))))
  in
  match benches with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | Ok benches ->
    let worst = ref 0 in
    List.iter
      (fun (b : Benchmarks.t) ->
        let options = { options with width = b.Benchmarks.width } in
        let config = config_of options in
        let r, _trace = Engine.run config options.method_name b.Benchmarks.polys in
        let lint =
          if options.lint then
            Some
              (lint_of options ~ctx:config.Engine.Config.ctx
                 ~system:b.Benchmarks.polys r.Engine.prog)
          else None
        in
        let code = exit_code ~cert:(Some r.Engine.cert) ~lint in
        worst := Stdlib.max !worst code;
        let errors, warnings =
          match lint with
          | None -> (0, 0)
          | Some l ->
            List.fold_left
              (fun (e, w) (d : Diag.t) ->
                match d.Diag.severity with
                | Diag.Error -> (e + 1, w)
                | Diag.Warning -> (e, w + 1)
                | Diag.Info -> (e, w))
              (0, 0) (Suite.diags l)
        in
        Printf.printf
          "%-10s width=%-3d MULT=%-3d ADD=%-3d area=%-6d %-9s %d error(s), \
           %d warning(s)\n"
          b.Benchmarks.name b.Benchmarks.width r.Engine.counts.Dag.mults
          r.Engine.counts.Dag.adds r.Engine.cost.Cost.area
          (Equiv.cert_label r.Engine.cert)
          errors warnings;
        (match r.Engine.cert with
         | Equiv.Verified -> ()
         | c -> Printf.printf "  %s\n" (Equiv.cert_to_string c));
        (match r.Engine.simplified with
         | Some o ->
           Printf.printf
             "  simplify: %d -> %d cell(s), %d rewrite(s) applied, %d \
              rejected\n"
             o.Simplify.stats.Simplify.cells_before
             o.Simplify.stats.Simplify.cells_after
             o.Simplify.stats.Simplify.applied
             o.Simplify.stats.Simplify.rejected
         | None -> ());
        match lint with
        | Some l when Diag.has_errors (Suite.diags l) ->
          List.iter
            (fun d ->
              if d.Diag.severity = Diag.Error then
                Printf.printf "  %s\n" (Diag.to_string d))
            (Suite.diags l)
        | _ -> ())
      benches;
    !worst

(* ---- synthesis mode ---------------------------------------------------- *)

let run_synthesis options =
  match options.benchmark with
  | Some name -> run_benchmarks options name
  | None ->
  match read_input options.input with
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | text ->
  if options.evaluate then evaluate_program options text
  else
    match Parse.system text with
    | Error (`Parse msg) ->
      Printf.eprintf "parse error %s\n" msg;
      1
    | Ok [] ->
      Printf.eprintf "no polynomials in input\n";
      1
    | Ok polys ->
      let config = config_of options in
      let reports, trace =
        if options.compare_all then Engine.compare_methods config polys
        else
          let r, t = Engine.run config options.method_name polys in
          ([ r ], t)
      in
      let main_report = List.nth reports (List.length reports - 1) in
      let verified = is_verified main_report.Engine.cert in
      let lint =
        if options.lint then
          Some
            (lint_of options ~ctx:config.Engine.Config.ctx ~system:polys
               main_report.Engine.prog)
        else None
      in
      let print_report r =
        Printf.printf "%-12s MULT=%d ADD=%d area=%d delay=%.1f%s\n"
          (Engine.method_label r.Engine.method_name)
          r.Engine.counts.Dag.mults r.Engine.counts.Dag.adds
          r.Engine.cost.Cost.area r.Engine.cost.Cost.delay
          (match r.Engine.labels with
           | [] -> ""
           | labels -> "  [" ^ String.concat "," labels ^ "]")
      in
      if options.json then print_json ~options ~verified ?lint reports trace
      else begin
        List.iter print_report reports;
        Printf.printf "verified: %b%s\n" verified
          (if options.use_ring then " (as bit-vector functions)" else " (exact)");
        if options.check then
          List.iter
            (fun r ->
              Printf.printf "certificate (%s): %s\n"
                (Engine.method_label r.Engine.method_name)
                (Equiv.cert_to_string r.Engine.cert))
            reports;
        Option.iter print_lint lint;
        (match main_report.Engine.simplified with
         | Some o ->
           Printf.printf
             "simplify: %d -> %d cell(s), %d rewrite(s) applied, %d \
              rejected, %d certificate(s)%s\n"
             o.Simplify.stats.Simplify.cells_before
             o.Simplify.stats.Simplify.cells_after
             o.Simplify.stats.Simplify.applied
             o.Simplify.stats.Simplify.rejected
             o.Simplify.stats.Simplify.certificates
             (match o.Simplify.skipped with
              | Some why -> " (skipped: " ^ why ^ ")"
              | None -> "");
           List.iter
             (fun rw ->
               Printf.printf "  c%d: %s\n" rw.Simplify.cell
                 (Simplify.describe rw))
             o.Simplify.applied
         | None -> ());
        if options.show_trace then print_string (Engine.Trace.to_text trace)
      end;
      let width = options.width in
      if options.show_program then
        Format.printf "@.program:@.%a@." Prog.pp main_report.Engine.prog;
      let netlist =
        lazy
          (let n =
             (* the simplified netlist is certified equivalent, so every
                downstream consumer (emission, power, pipelining) works
                from it when --simplify ran *)
             match main_report.Engine.simplified with
             | Some o -> o.Simplify.netlist
             | None -> Netlist.of_prog ~width main_report.Engine.prog
           in
           if options.use_mcm then Mcm.optimize n else n)
      in
      if options.analyze then begin
        let n = Lazy.force netlist in
        print_string
          "analysis (wrap interval | known bits msb-first | congruence):\n";
        List.iter
          (fun line -> Printf.printf "  %s\n" line)
          (Absint.Product_analysis.to_strings n (Absint.analyze_product n))
      end;
      if options.use_mcm && not options.json then begin
        let r = Cost.of_netlist (Lazy.force netlist) in
        Printf.printf "after MCM: area=%d delay=%.1f\n" r.Cost.area r.Cost.delay
      end;
      if options.show_power then begin
        let p = Power.estimate (Lazy.force netlist) in
        Format.printf "%a@." Power.pp_report p
      end;
      (match options.pipeline_period with
       | None -> ()
       | Some period ->
         let st = Stage.cut ~target_period:period (Lazy.force netlist) in
         Printf.printf
           "pipelining at period %.1f: %d stage(s), %d pipeline register(s), \
            achieved period %.1f\n"
           period st.Stage.num_stages st.Stage.pipeline_registers
           st.Stage.achieved_period);
      if options.show_range then begin
        let n = Lazy.force netlist in
        Printf.printf
          "range analysis: widest intermediate needs %d bits (growth %d over \
           the %d-bit datapath)\n"
          (Range.max_required_width n) (Range.growth n) width
      end;
      let write path contents =
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc contents);
        Printf.printf "wrote %s\n" path
      in
      (match options.verilog_out with
       | None -> ()
       | Some path ->
         write path
           (Verilog.emit ~module_name:"polysynth_dut" (Lazy.force netlist)));
      (match options.dot_out with
       | None -> ()
       | Some path -> write path (Dot.of_netlist (Lazy.force netlist)));
      (match options.fsmd_out with
       | None -> ()
       | Some path ->
         let fsmd =
           Fsmd.build
             { Schedule.multipliers = 1; adders = 1 }
             (Lazy.force netlist)
         in
         Printf.printf
           "fsmd: %d states, %d registers, %d micro-ops (1 multiplier, 1 adder)\n"
           fsmd.Fsmd.num_states fsmd.Fsmd.num_registers
           (List.length fsmd.Fsmd.micro_ops);
         write path (Fsmd.to_verilog ~module_name:"polysynth_fsmd" fsmd));
      (match options.testbench_out with
       | None -> ()
       | Some path ->
         write path
           (Testbench.emit ~module_name:"polysynth_dut" (Lazy.force netlist)));
      (match options.c_out with
       | None -> ()
       | Some path ->
         write path
           (Cemit.emit ~func_name:"polysynth_dut" ~self_check:16
              (Lazy.force netlist)));
      exit_code ~cert:(Some main_report.Engine.cert) ~lint

(* ---- command line ------------------------------------------------------ *)

let input_arg =
  let doc =
    "Input file with one polynomial per line or ';'-separated (use '-' for \
     stdin).  Syntax: 4*x^2*y - 3*x + 7; '#' starts a comment."
  in
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)

let method_arg =
  let methods =
    [
      ("direct", Engine.Direct);
      ("horner", Engine.Horner);
      ("factor-cse", Engine.Factor_cse);
      ("proposed", Engine.Proposed);
    ]
  in
  let doc =
    "Synthesis method: direct, horner, factor-cse (the [13] baseline) or \
     proposed (the paper's integrated flow)."
  in
  Arg.(
    value
    & opt (enum methods) Engine.Proposed
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let width_arg =
  let doc = "Datapath bit-width (the m of Z_2^m)." in
  Arg.(value & opt int 16 & info [ "w"; "width" ] ~docv:"BITS" ~doc)

let ring_arg =
  let doc =
    "Optimize modulo 2^width: enables the canonical-form representations \
     (the result equals the input as a bit-vector function, not as an \
     integer polynomial)."
  in
  Arg.(value & flag & info [ "ring" ] ~doc)

let objective_arg =
  let objectives =
    [
      ("area", Search.Min_area);
      ("delay", Search.Min_delay);
      ("power", Search.Min_power);
      ("ops", Search.Min_ops);
    ]
  in
  let doc = "Optimization objective: area (default, as in the paper), delay, \
             power (switching-activity estimate) or ops." in
  Arg.(
    value
    & opt (enum objectives) Search.Min_area
    & info [ "objective" ] ~docv:"OBJ" ~doc)

let jobs_arg =
  let doc =
    "Degree of parallelism for the engine's domain pool (0 = one domain \
     per recommended core, 1 = sequential)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let time_budget_arg =
  let doc = "Wall-clock budget in seconds for the candidate search." in
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECS" ~doc)

let candidate_budget_arg =
  let doc =
    "Extra candidate evaluations allowed after the mandatory first of each \
     stage."
  in
  Arg.(
    value & opt (some int) None & info [ "candidate-budget" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc = "Disable the engine's representation/variant memo." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let verilog_arg =
  let doc = "Emit synthesizable Verilog for the chosen decomposition." in
  Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Emit a Graphviz DOT graph of the operator netlist." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let testbench_arg =
  let doc = "Emit a self-checking Verilog testbench for the decomposition." in
  Arg.(value & opt (some string) None & info [ "testbench" ] ~docv:"FILE" ~doc)

let c_arg =
  let doc =
    "Emit self-checking C code for the decomposition (compile and run it \
     to validate the implementation)."
  in
  Arg.(value & opt (some string) None & info [ "emit-c" ] ~docv:"FILE" ~doc)

let mcm_arg =
  let doc =
    "Lower constant multiplications to shared shift-add networks (multiple \
     constant multiplication) before reporting/emitting."
  in
  Arg.(value & flag & info [ "mcm" ] ~doc)

let power_arg =
  let doc = "Report the switching-activity power estimate." in
  Arg.(value & flag & info [ "power" ] ~doc)

let range_arg =
  let doc = "Report the bit-width range analysis of the intermediates." in
  Arg.(value & flag & info [ "range" ] ~doc)

let fsmd_arg =
  let doc =
    "Emit a sequential FSM-with-datapath Verilog implementation \
     (time-multiplexed onto one multiplier and one adder)."
  in
  Arg.(value & opt (some string) None & info [ "fsmd" ] ~docv:"FILE" ~doc)

let pipeline_arg =
  let doc = "Cut the netlist into pipeline stages for the given clock \
             period and report depth and register cost." in
  Arg.(value & opt (some float) None & info [ "pipeline" ] ~docv:"PERIOD" ~doc)

let show_program_arg =
  let doc = "Print the chosen decomposition as a straight-line program." in
  Arg.(value & flag & info [ "show-program" ] ~doc)

let compare_arg =
  let doc = "Run all four methods and print one report line each." in
  Arg.(value & flag & info [ "compare" ] ~doc)

let evaluate_arg =
  let doc =
    "Treat the input as a decomposition program (one 'name = polynomial' \
     definition per line; unreferenced names are outputs): report its cost \
     and compare it with what the proposed flow finds."
  in
  Arg.(value & flag & info [ "evaluate" ] ~doc)

let json_arg =
  let doc =
    "Print one JSON object (reports plus the engine trace: per-stage wall \
     time, candidate counts, cache statistics, budget state) instead of \
     the text report."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc = "Print the engine trace after the text report." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let check_arg =
  let doc =
    "Print the equivalence certificate of every report: 'verified' is a \
     proof (canonical forms over Z_2^m under --ring, exact identity \
     otherwise), 'refuted' comes with a concrete counterexample input.  \
     The exit code is 2 unless every requested certificate is 'verified'."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let lint_arg =
  let doc =
    "Run the static-analysis passes (well-formedness, width soundness, \
     redundancy) on the resulting decomposition and print their findings.  \
     Error-severity findings set exit code 3."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let analyze_arg =
  let doc =
    "Print the per-cell facts of the reduced-product abstract \
     interpretation (wrap-aware interval, known bits, congruence mod 2^k) \
     over the emitted netlist."
  in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let simplify_arg =
  let doc =
    "Run the certificate-guarded simplification pass on the synthesized \
     netlist (constant folding, identity removal, strength reduction, \
     dead-cell elimination; every rewrite is accepted only with a \
     'verified' equivalence certificate) and emit/report the simplified \
     netlist."
  in
  Arg.(value & flag & info [ "simplify" ] ~doc)

let benchmark_arg =
  let doc =
    "Run a built-in Table 14.3 benchmark ('all' for the whole suite) at \
     its published width instead of reading FILE; combines with --check \
     and --lint."
  in
  Arg.(
    value & opt (some string) None & info [ "benchmark" ] ~docv:"NAME" ~doc)

(* all flags fold into the one options record *)
let options_term =
  let make input method_name width use_ring objective jobs time_budget
      candidate_budget no_cache verilog_out dot_out testbench_out fsmd_out
      c_out use_mcm show_power show_range pipeline_period show_program
      compare_all evaluate json show_trace check lint analyze simplify
      benchmark =
    {
      input;
      method_name;
      width;
      use_ring;
      objective;
      jobs;
      time_budget;
      candidate_budget;
      no_cache;
      verilog_out;
      dot_out;
      testbench_out;
      fsmd_out;
      c_out;
      use_mcm;
      show_power;
      show_range;
      pipeline_period;
      show_program;
      compare_all;
      evaluate;
      json;
      show_trace;
      check;
      lint;
      analyze;
      simplify;
      benchmark;
    }
  in
  Term.(
    const make $ input_arg $ method_arg $ width_arg $ ring_arg $ objective_arg
    $ jobs_arg $ time_budget_arg $ candidate_budget_arg $ no_cache_arg
    $ verilog_arg $ dot_arg $ testbench_arg $ fsmd_arg $ c_arg $ mcm_arg
    $ power_arg $ range_arg $ pipeline_arg $ show_program_arg $ compare_arg
    $ evaluate_arg $ json_arg $ trace_arg $ check_arg $ lint_arg
    $ analyze_arg $ simplify_arg $ benchmark_arg)

let cmd =
  let doc = "area-driven synthesis of polynomial datapath systems" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a system of multivariate polynomials over bit-vectors and \
         decomposes it for hardware implementation using the algebraic \
         techniques of Gopalakrishnan & Kalla (DATE 2009): canonical forms \
         over Z_2^m, square-free factorization, common coefficient \
         extraction, kernel/co-kernel cube extraction and algebraic \
         division, integrated with common sub-expression extraction.";
    ]
  in
  let term = Term.(const run_synthesis $ options_term) in
  Cmd.v (Cmd.info "polysynth" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval' cmd)
