# Development / CI entry points.
#
#   make ci      build + full test suite + format check + lint + benchmark smoke
#   make build   compile everything
#   make test    run the alcotest/qcheck suites
#   make fmt     check formatting (skipped when ocamlformat is absent)
#   make lint    verify + lint + certificate-guarded simplify over every
#                benchmark and example system (exit 2 on a refuted/unknown
#                certificate, 4 on a scheduler/binder invariant violation,
#                3 on other error-severity findings)
#   make bench   quick benchmark smoke run (tables + short timings)
#   make bench-json
#                regenerate BENCH_PR3.json (quick mode, speedups vs the
#                committed baseline) and validate it against the schema

.PHONY: ci build test fmt lint bench bench-json

ci: build test fmt lint bench bench-json

lint:
	dune exec bin/polysynth.exe -- --benchmark all --check --lint --simplify
	@for f in examples/data/*.poly; do \
	  echo "== $$f"; \
	  dune exec bin/polysynth.exe -- "$$f" --check --lint --simplify || exit $$?; \
	done

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe -- --quick

bench-json:
	dune exec bench/main.exe -- --quick --json \
	  --baseline BENCH_PR3_BASELINE.json > BENCH_PR3.json
	dune exec bench/main.exe -- --validate BENCH_PR3.json
