# Development / CI entry points.
#
#   make ci      build + full test suite + format check + benchmark smoke
#   make build   compile everything
#   make test    run the alcotest/qcheck suites
#   make fmt     check formatting (skipped when ocamlformat is absent)
#   make bench   quick benchmark smoke run (tables + short timings)

.PHONY: ci build test fmt bench

ci: build test fmt bench

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe -- --quick
