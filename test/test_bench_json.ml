module BJ = Polysynth_report.Bench_json

let entries =
  [
    {
      BJ.name = "polysynth/kernel_extraction_t143";
      ns_per_run = 49846.2;
      cells_eliminated = None;
    };
    {
      BJ.name = "polysynth/integrated_t143";
      ns_per_run = 10669763.1;
      cells_eliminated = Some 3;
    };
  ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_roundtrip () =
  let doc = BJ.render ~mode:"quick" entries in
  Alcotest.(check bool) "schema tag present" true
    (contains ~needle:BJ.schema doc);
  let parsed = BJ.parse_exn doc in
  Alcotest.(check int) "entry count" (List.length entries) (List.length parsed);
  List.iter2
    (fun e p ->
      Alcotest.(check string) "name" e.BJ.name p.BJ.name;
      Alcotest.(check (float 1e-9)) "ns" e.BJ.ns_per_run p.BJ.ns_per_run;
      Alcotest.(check (option int))
        "cells_eliminated roundtrips" e.BJ.cells_eliminated
        p.BJ.cells_eliminated)
    entries parsed

let test_roundtrip_with_baseline () =
  let baseline =
    [ ("polysynth/kernel_extraction_t143", 99692.4) ]
    (* 2x the current ns => speedup 2.0 in the annotated entry *)
  in
  let doc = BJ.render ~baseline ~mode:"quick" entries in
  let parsed = BJ.parse_exn doc in
  Alcotest.(check int) "baseline fields ignored by parse" 2
    (List.length parsed);
  match BJ.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("annotated doc should validate: " ^ e)

let test_validate_required () =
  let doc = BJ.render ~mode:"quick" entries in
  (match
     BJ.validate ~required:[ "polysynth/integrated_t143" ] doc
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("required name present: " ^ e));
  match BJ.validate ~required:[ "polysynth/missing" ] doc with
  | Ok () -> Alcotest.fail "missing required name must be rejected"
  | Error _ -> ()

let test_validate_rejects_garbage () =
  let reject label text =
    match BJ.validate text with
    | Ok () -> Alcotest.fail (label ^ " must be rejected")
    | Error _ -> ()
  in
  reject "empty" "";
  reject "wrong schema" {|{"schema": "other/9", "mode": "quick", "results": []}|};
  reject "no results"
    {|{"schema": "polysynth-bench/1", "mode": "quick", "results": []}|};
  reject "non-positive ns"
    {|{"schema": "polysynth-bench/1", "mode": "quick",
       "results": [{"name": "a", "ns_per_run": 0.0}]}|};
  reject "negative cells_eliminated"
    {|{"schema": "polysynth-bench/1", "mode": "quick",
       "results": [{"name": "a", "ns_per_run": 1.0, "cells_eliminated": -2}]}|};
  reject "fractional cells_eliminated"
    {|{"schema": "polysynth-bench/1", "mode": "quick",
       "results": [{"name": "a", "ns_per_run": 1.0, "cells_eliminated": 1.5}]}|};
  match BJ.parse_exn "not json" with
  | exception BJ.Malformed _ -> ()
  | _ -> Alcotest.fail "parse_exn must raise Malformed on junk"

let test_committed_files () =
  (* the committed trajectory files must stay valid against the library *)
  let check_file path required =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match BJ.validate ~required text with
      | Ok () -> ()
      | Error e -> Alcotest.fail (path ^ ": " ^ e)
    end
  in
  let required =
    [ "polysynth/kernel_extraction_t143"; "polysynth/integrated_t143" ]
  in
  (* tests run from _build/default/test; walk up to the source tree copies *)
  List.iter
    (fun dir ->
      check_file (Filename.concat dir "BENCH_PR3.json") required;
      check_file (Filename.concat dir "BENCH_PR3_BASELINE.json") required)
    [ "."; ".."; "../.."; "../../.." ]

let () =
  Alcotest.run "bench_json"
    [
      ( "schema",
        [
          Alcotest.test_case "render/parse roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "baseline annotations" `Quick
            test_roundtrip_with_baseline;
          Alcotest.test_case "required names" `Quick test_validate_required;
          Alcotest.test_case "rejects malformed" `Quick
            test_validate_rejects_garbage;
          Alcotest.test_case "committed files validate" `Quick
            test_committed_files;
        ] );
    ]
