(* The unified engine: parallel/sequential equivalence, memoization, and
   budget degradation. *)

module Z = Polysynth_zint.Zint
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Engine = Polysynth_engine.Engine
module Trace = Polysynth_engine.Engine.Trace
module B = Polysynth_workloads.Benchmarks
module Ex = Polysynth_workloads.Examples

(* caching off by default so every run really computes *)
let config ?(parallelism = 1) ?(cache = false) ~width () =
  { (Engine.Config.default ~width) with Engine.Config.parallelism; cache }

(* ---- parallel map ---------------------------------------------------- *)

let test_parallel_map_order () =
  let xs = List.init 23 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map (fun x -> (3 * x) + 1) xs)
    (Engine.parallel_map ~domains:4 (fun x -> (3 * x) + 1) xs);
  Alcotest.(check (list int))
    "sequential fallback" [ 9 ]
    (Engine.parallel_map ~domains:1 (fun x -> x * x) [ 3 ]);
  Alcotest.(check (list int)) "empty" [] (Engine.parallel_map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "more domains than items" [ 2; 4 ]
    (Engine.parallel_map ~domains:8 (fun x -> 2 * x) [ 1; 2 ])

let test_parallel_map_exception () =
  Alcotest.check_raises "worker exception propagates" (Failure "boom")
    (fun () ->
      ignore
        (Engine.parallel_map ~domains:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 Fun.id)))

(* ---- determinism: parallel = sequential ------------------------------ *)

let test_parallel_matches_sequential () =
  List.iter
    (fun (b : B.t) ->
      let run parallelism =
        fst
          (Engine.synthesize
             (config ~parallelism ~width:b.B.width ())
             b.B.polys)
      in
      let seq = run 1 in
      let par = run 2 in
      Alcotest.(check int)
        (b.B.name ^ ": MULT count") seq.Engine.counts.Dag.mults
        par.Engine.counts.Dag.mults;
      Alcotest.(check int)
        (b.B.name ^ ": ADD count") seq.Engine.counts.Dag.adds
        par.Engine.counts.Dag.adds;
      Alcotest.(check int)
        (b.B.name ^ ": area") seq.Engine.cost.Cost.area
        par.Engine.cost.Cost.area;
      Alcotest.(check (float 1e-9))
        (b.B.name ^ ": delay") seq.Engine.cost.Cost.delay
        par.Engine.cost.Cost.delay;
      Alcotest.(check bool)
        (b.B.name ^ ": parallel result is exact") true
        (Engine.verify b.B.polys par.Engine.prog))
    (B.all ())

(* ---- memoization ----------------------------------------------------- *)

let test_memo_hits_on_compare () =
  Engine.clear_cache ();
  let cfg =
    { (Engine.Config.default ~width:16) with Engine.Config.parallelism = 1 }
  in
  let mvcs = (Option.get (B.by_name "MVCS")).B.polys in
  let reports1, trace1 = Engine.compare_methods cfg mvcs in
  let reports2, trace2 = Engine.compare_methods cfg mvcs in
  (* within one compare, Proposed caches the representation store and the
     Direct/Horner baselines are served from it *)
  Alcotest.(check bool)
    "baselines hit the store on the first compare" true
    (trace1.Trace.cache_hits > 0);
  (* the second compare re-builds nothing at all: everything is served
     from the representation store (the kernelling memo keeps the bulk of
     the first compare's hits, so absolute hit counts are not comparable
     across the two runs) *)
  Alcotest.(check int) "no misses on the second compare" 0
    trace2.Trace.cache_misses;
  Alcotest.(check bool)
    "second compare served from cache" true
    (trace2.Trace.cache_hits > 0);
  List.iter2
    (fun (a : Engine.report) (b : Engine.report) ->
      Alcotest.(check int) "same area across cached runs" a.Engine.cost.Cost.area
        b.Engine.cost.Cost.area;
      Alcotest.(check int) "same MULT across cached runs"
        a.Engine.counts.Dag.mults b.Engine.counts.Dag.mults)
    reports1 reports2;
  Engine.clear_cache ()

let test_cache_off_never_counts () =
  Engine.clear_cache ();
  let cfg = config ~width:16 () in
  let _, trace = Engine.compare_methods cfg Ex.table_14_1 in
  Alcotest.(check int) "no hits with caching off" 0 trace.Trace.cache_hits;
  Alcotest.(check int) "no misses with caching off" 0 trace.Trace.cache_misses

(* ---- budgets --------------------------------------------------------- *)

let test_budget_exhaustion_graceful () =
  let polys = Ex.table_14_1 in
  let full, full_trace = Engine.synthesize (config ~width:16 ()) polys in
  Alcotest.(check bool) "unbudgeted run has no exhaustion" false
    full_trace.Trace.budget_exhausted;
  let tight =
    { (config ~width:16 ()) with Engine.Config.candidate_budget = Some 0 }
  in
  let r, trace = Engine.synthesize tight polys in
  Alcotest.(check bool) "zero candidate budget reported" true
    trace.Trace.budget_exhausted;
  Alcotest.(check bool) "budgeted result is still exact" true
    (Engine.verify polys r.Engine.prog);
  Alcotest.(check bool) "budgeted result can only be worse or equal" true
    (full.Engine.cost.Cost.area <= r.Engine.cost.Cost.area);
  let timed =
    { (config ~width:16 ()) with Engine.Config.time_budget = Some 0.0 }
  in
  let r', trace' = Engine.synthesize timed polys in
  Alcotest.(check bool) "zero time budget reported" true
    trace'.Trace.budget_exhausted;
  Alcotest.(check bool) "time-budgeted result is still exact" true
    (Engine.verify polys r'.Engine.prog)

(* ---- trace ------------------------------------------------------------ *)

let test_trace_shape () =
  let _, trace = Engine.synthesize (config ~width:16 ()) Ex.table_14_1 in
  let names = List.map (fun (s : Trace.stage) -> s.Trace.name) trace.Trace.stages in
  Alcotest.(check (list string))
    "stages in flow order"
    [
      "proposed/represent";
      "proposed/search";
      "proposed/integrated";
      "proposed/certify";
    ]
    names;
  Alcotest.(check (list (pair string string)))
    "certificate summary" [ ("proposed", "verified") ]
    trace.Trace.certificates;
  List.iter
    (fun (s : Trace.stage) ->
      Alcotest.(check bool) (s.Trace.name ^ " wall >= 0") true (s.Trace.wall >= 0.0);
      Alcotest.(check bool)
        (s.Trace.name ^ " evaluated candidates") true (s.Trace.candidates > 0))
    trace.Trace.stages;
  let json = Trace.to_json trace in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains needle))
    [ "\"stages\""; "\"cache\""; "\"budget_exhausted\""; "\"certificates\"" ]

let () =
  Alcotest.run "engine"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "order and fallbacks" `Quick test_parallel_map_order;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_map_exception;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel = sequential on all benchmarks" `Quick
            test_parallel_matches_sequential;
        ] );
      ( "memo",
        [
          Alcotest.test_case "compare_methods hits the store" `Quick
            test_memo_hits_on_compare;
          Alcotest.test_case "cache off counts nothing" `Quick
            test_cache_off_never_counts;
        ] );
      ( "budget",
        [
          Alcotest.test_case "exhaustion degrades gracefully" `Quick
            test_budget_exhaustion_graceful;
        ] );
      ( "trace",
        [ Alcotest.test_case "stages and json" `Quick test_trace_shape ] );
    ]
