module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Mono = Polysynth_poly.Monomial
module Parse = Polysynth_poly.Parse
module E = Polysynth_expr.Expr
module Ted = Polysynth_ted.Ted

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let gen_poly =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 3) (pair (oneofl [ "x"; "y"; "z" ]) (int_range 1 3))
    >|= Mono.of_list
  in
  list_size (int_range 0 6) (pair (int_range (-9) 9) gen_mono)
  >|= fun terms ->
  P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) terms)

let arb_poly = QCheck.make gen_poly ~print:P.to_string

let arb_pair =
  QCheck.make
    QCheck.Gen.(pair gen_poly gen_poly)
    ~print:(fun (a, b) -> P.to_string a ^ " || " ^ P.to_string b)

(* unit ------------------------------------------------------------------------- *)

let test_leaves () =
  let m = Ted.create () in
  Alcotest.(check bool) "zero shared" true (Ted.equal (Ted.zero m) (Ted.zero m));
  Alcotest.(check bool) "one <> zero" false (Ted.equal (Ted.one m) (Ted.zero m));
  check_p "leaf value" (p "7") (Ted.to_poly m (Ted.leaf m (Z.of_int 7)))

let test_of_poly_roundtrip () =
  let m = Ted.create () in
  List.iter
    (fun s -> check_p s (p s) (Ted.to_poly m (Ted.of_poly m (p s))))
    [ "x^2 + 6*x*y + 9*y^2"; "0"; "42"; "x*y*z - 3"; "x^5 - x" ]

let test_canonicity_example () =
  (* (x + y)^2 built two ways lands on the same node *)
  let m = Ted.create () in
  let a = Ted.of_poly m (p "x^2 + 2*x*y + y^2") in
  let s = Ted.of_poly m (p "x + y") in
  let b = Ted.mul m s s in
  Alcotest.(check bool) "same node" true (Ted.equal a b)

let test_sharing_across_system () =
  (* two polynomials sharing the sub-function (y^2 + 3) under x *)
  let m = Ted.create () in
  let _ = Ted.of_poly m (p "x*y^2 + 3*x + 1") in
  let n1 = Ted.num_nodes m in
  (* same x-cofactor appears again: few new nodes *)
  let _ = Ted.of_poly m (p "x*y^2 + 3*x + 9") in
  let n2 = Ted.num_nodes m in
  Alcotest.(check bool)
    (Printf.sprintf "second poly adds few nodes (%d -> %d)" n1 n2)
    true
    (n2 - n1 <= 2)

let test_decompose_horner_shape () =
  let m = Ted.create () in
  let t = Ted.of_poly m (p "x^2 + x + 1") in
  let e = Ted.decompose m t in
  check_p "expands back" (p "x^2 + x + 1") (E.to_poly e);
  (* Horner shape: 2 mults (x*(x+1)... ) at most *)
  let c = Polysynth_expr.Dag.tree_counts e in
  Alcotest.(check bool) "horner-like cost" true (c.Polysynth_expr.Dag.mults <= 2)

let test_custom_order () =
  let m = Ted.create ~order:[ "y"; "x" ] () in
  let t = Ted.of_poly m (p "x*y + x + y + 1") in
  check_p "order-independent value" (p "x*y + x + y + 1") (Ted.to_poly m t)

(* properties -------------------------------------------------------------------- *)

let prop_roundtrip =
  prop "of_poly/to_poly roundtrip" arb_poly (fun q ->
      let m = Ted.create () in
      P.equal q (Ted.to_poly m (Ted.of_poly m q)))

let prop_canonical =
  prop "node equality = polynomial equality" arb_pair (fun (a, b) ->
      let m = Ted.create () in
      let ta = Ted.of_poly m a and tb = Ted.of_poly m b in
      Ted.equal ta tb = P.equal a b)

let prop_add_homomorphism =
  prop "add mirrors polynomial addition" arb_pair (fun (a, b) ->
      let m = Ted.create () in
      Ted.equal
        (Ted.add m (Ted.of_poly m a) (Ted.of_poly m b))
        (Ted.of_poly m (P.add a b)))

let prop_mul_homomorphism =
  prop "mul mirrors polynomial multiplication" ~count:150 arb_pair
    (fun (a, b) ->
      let m = Ted.create () in
      Ted.equal
        (Ted.mul m (Ted.of_poly m a) (Ted.of_poly m b))
        (Ted.of_poly m (P.mul a b)))

let prop_neg =
  prop "neg mirrors negation" arb_poly (fun a ->
      let m = Ted.create () in
      Ted.equal (Ted.neg m (Ted.of_poly m a)) (Ted.of_poly m (P.neg a)))

let prop_decompose_exact =
  prop "decompose expands back" arb_poly (fun a ->
      let m = Ted.create () in
      P.equal a (E.to_poly (Ted.decompose m (Ted.of_poly m a))))

let prop_order_independent_value =
  prop "any variable order represents the same polynomial" arb_poly (fun a ->
      let m1 = Ted.create ~order:[ "z"; "y"; "x" ] () in
      let m2 = Ted.create ~order:[ "x"; "z"; "y" ] () in
      P.equal
        (Ted.to_poly m1 (Ted.of_poly m1 a))
        (Ted.to_poly m2 (Ted.of_poly m2 a)))

let () =
  Alcotest.run "ted"
    [
      ( "unit",
        [
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "roundtrip" `Quick test_of_poly_roundtrip;
          Alcotest.test_case "canonicity example" `Quick test_canonicity_example;
          Alcotest.test_case "sharing across system" `Quick
            test_sharing_across_system;
          Alcotest.test_case "decompose horner shape" `Quick
            test_decompose_horner_shape;
          Alcotest.test_case "custom order" `Quick test_custom_order;
        ] );
      ( "properties",
        [
          prop_roundtrip;
          prop_canonical;
          prop_add_homomorphism;
          prop_mul_homomorphism;
          prop_neg;
          prop_decompose_exact;
          prop_order_independent_value;
        ] );
    ]
