module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Q = Polysynth_rat.Qint
module SG = Polysynth_workloads.Savitzky_golay
module B = Polysynth_workloads.Benchmarks
module Ex = Polysynth_workloads.Examples
module Rand = Polysynth_workloads.Random_system

let poly = Alcotest.testable P.pp P.equal

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* savitzky-golay ------------------------------------------------------------ *)

let test_offsets () =
  Alcotest.(check (list int)) "3" [ -1; 0; 1 ] (SG.offsets 3);
  Alcotest.(check (list int)) "5" [ -2; -1; 0; 1; 2 ] (SG.offsets 5);
  Alcotest.(check (list int)) "4" [ -3; -1; 1; 3 ] (SG.offsets 4);
  Alcotest.check_raises "too small"
    (Invalid_argument "Savitzky_golay.offsets: window too small") (fun () ->
      ignore (SG.offsets 1))

let test_sg_shape () =
  List.iter
    (fun (w, d) ->
      let polys = SG.system ~window:w ~degree:d in
      Alcotest.(check int)
        (Printf.sprintf "%dx%d count" w d)
        (w * w) (List.length polys);
      List.iter
        (fun q ->
          Alcotest.(check bool) "degree bound" true (P.degree q <= d);
          Alcotest.(check bool) "two variables" true
            (List.for_all (fun v -> v = "x" || v = "y") (P.vars q)))
        polys)
    [ (3, 2); (4, 2); (4, 3); (5, 2); (5, 3) ]

let test_sg_partition_of_unity () =
  (* sum_k q_k(0, 0) recovers the (scaled) interpolation property: the sum
     of all kernel polynomials is the constant "scale" (fitting the all-
     ones window reproduces the constant 1 surface) *)
  let polys = SG.system ~window:3 ~degree:2 in
  let total = P.add_list polys in
  Alcotest.(check bool) "sum is a constant" true (P.is_const total);
  Alcotest.(check bool) "positive scale" true
    (Z.sign (P.constant_term total) > 0)

let test_sg_reproduces_polynomials () =
  (* least-squares fit of samples of a degree-<=d polynomial is exact:
     sum_k q_k(x,y) * s(u_k, v_k) = scale * s(x, y) for s of fit degree *)
  let w = 3 and d = 2 in
  let polys = SG.system ~window:w ~degree:d in
  let scale = P.constant_term (P.add_list polys) in
  let off = SG.offsets w in
  let points =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) off) off
  in
  let s = Polysynth_poly.Parse.poly_exn "3*x^2 - 2*x*y + y - 5" in
  let combination =
    P.add_list
      (List.map2
         (fun q (u, v) ->
           let sval =
             P.eval
               (fun var -> if var = "x" then Z.of_int u else Z.of_int v)
               s
           in
           P.mul_scalar sval q)
         polys points)
  in
  Alcotest.check poly "exact reproduction" (P.mul_scalar scale s) combination

let test_sg_symmetry () =
  (* kernel for window point (u,v) mirrored in u equals the x-mirrored
     kernel: q_{(-u,v)}(x,y) = q_{(u,v)}(-x,y) *)
  let w = 3 and d = 2 in
  let polys = Array.of_list (SG.system ~window:w ~degree:d) in
  (* window order: (u,v) with u, v over [-1;0;1], u-major *)
  let idx u v = ((u + 1) * 3) + (v + 1) in
  let mirror_x q = P.subst "x" (P.neg (P.var "x")) q in
  Alcotest.check poly "mirror" polys.(idx (-1) 0) (mirror_x polys.(idx 1 0))

let test_sg_degree_too_large () =
  Alcotest.check_raises "degree too large"
    (Invalid_argument "Savitzky_golay.system: degree too large for window")
    (fun () -> ignore (SG.system ~window:3 ~degree:5))

(* benchmark suite -------------------------------------------------------------- *)

let test_benchmark_table () =
  let all = B.all () in
  Alcotest.(check int) "eight benchmarks" 8 (List.length all);
  Alcotest.(check (list string)) "names"
    [ "SG 3x2"; "SG 4x2"; "SG 4x3"; "SG 5x2"; "SG 5x3"; "Quad"; "Mibench"; "MVCS" ]
    (List.map (fun b -> b.B.name) all);
  List.iter
    (fun b ->
      Alcotest.(check bool) (b.B.name ^ " characteristics") true
        (B.characteristics_ok b))
    all

let test_benchmark_paper_characteristics () =
  let check name vars deg width polys =
    match B.by_name name with
    | None -> Alcotest.fail ("missing " ^ name)
    | Some b ->
      Alcotest.(check int) (name ^ " vars") vars b.B.num_vars;
      Alcotest.(check int) (name ^ " degree") deg b.B.degree;
      Alcotest.(check int) (name ^ " width") width b.B.width;
      Alcotest.(check int) (name ^ " polys") polys (List.length b.B.polys)
  in
  (* the Var/Deg/m and #polys columns of Table 14.3 *)
  check "SG 3x2" 2 2 16 9;
  check "SG 4x2" 2 2 16 16;
  check "SG 4x3" 2 3 16 16;
  check "SG 5x2" 2 2 16 25;
  check "SG 5x3" 2 3 16 25;
  check "Quad" 2 2 16 2;
  check "Mibench" 3 2 8 2;
  check "MVCS" 2 3 16 1

let test_by_name_missing () =
  Alcotest.(check bool) "unknown" true (B.by_name "nope" = None)

(* examples ----------------------------------------------------------------------- *)

let test_examples_consistent () =
  Alcotest.(check int) "table 14.1 size" 3 (List.length Ex.table_14_1);
  Alcotest.(check int) "table 14.2 size" 4 (List.length Ex.table_14_2);
  Alcotest.(check int) "section 14.4.2 size" 3 (List.length Ex.section_14_4_2);
  (* P3 of table 14.2 is 5 Y3(x) Y2(y) + 3z^2 *)
  let y3x = Polysynth_poly.Parse.poly_exn "x^3 - 3*x^2 + 2*x" in
  let y2y = Polysynth_poly.Parse.poly_exn "y^2 - y" in
  let expected =
    P.add
      (P.mul_scalar (Z.of_int 5) (P.mul y3x y2y))
      (Polysynth_poly.Parse.poly_exn "3*z^2")
  in
  Alcotest.check poly "P3 falling structure" expected (List.nth Ex.table_14_2 2)

(* extended workloads ------------------------------------------------------------- *)

module Ext = Polysynth_workloads.Extended

let test_fir () =
  let f = Ext.fir_direct ~taps:8 in
  Alcotest.(check int) "degree 8" 8 (P.degree f);
  Alcotest.(check (list string)) "one var" [ "x" ] (P.vars f);
  Alcotest.check_raises "taps < 1"
    (Invalid_argument "Extended.fir_direct: taps < 1") (fun () ->
      ignore (Ext.fir_direct ~taps:0))

let test_chebyshev () =
  let t = Alcotest.testable P.pp P.equal in
  let pp = Polysynth_poly.Parse.poly_exn in
  Alcotest.check t "T0" P.one (Ext.chebyshev ~degree:0);
  Alcotest.check t "T1" (pp "x") (Ext.chebyshev ~degree:1);
  Alcotest.check t "T2" (pp "2*x^2 - 1") (Ext.chebyshev ~degree:2);
  Alcotest.check t "T3" (pp "4*x^3 - 3*x") (Ext.chebyshev ~degree:3);
  Alcotest.check t "T5" (pp "16*x^5 - 20*x^3 + 5*x") (Ext.chebyshev ~degree:5);
  (* T_n(1) = 1 for all n *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "T%d(1)" n)
        1
        (Z.to_int_exn (P.eval (fun _ -> Z.one) (Ext.chebyshev ~degree:n))))
    [ 0; 1; 4; 7; 9 ]

let test_extended_suite () =
  let suite = Ext.extended_suite () in
  Alcotest.(check int) "four systems" 4 (List.length suite);
  List.iter
    (fun b ->
      Alcotest.(check bool) (b.B.name ^ " characteristics") true
        (B.characteristics_ok b))
    suite

(* data corpus ------------------------------------------------------------------------ *)

let corpus_dir =
  (* the test binary runs from _build/default/test; the corpus is source *)
  let rec find dir depth =
    let candidate = Filename.concat dir "examples/data" in
    if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
    else if depth = 0 then None
    else find (Filename.concat dir "..") (depth - 1)
  in
  find "." 6

let test_corpus_parses_and_synthesizes () =
  match corpus_dir with
  | None -> Alcotest.fail "examples/data not found"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".poly")
      |> List.sort String.compare
    in
    Alcotest.(check bool) "several corpus files" true (List.length files >= 4);
    List.iter
      (fun file ->
        let text =
          In_channel.with_open_text (Filename.concat dir file)
            In_channel.input_all
        in
        let system = Polysynth_poly.Parse.system_exn text in
        Alcotest.(check bool) (file ^ " non-empty") true (List.length system > 0);
        let r, _ =
          Polysynth_engine.Engine.run
            (Polysynth_engine.Engine.Config.default ~width:16)
            Polysynth_engine.Engine.Proposed system
        in
        Alcotest.(check bool) (file ^ " synthesizes exactly") true
          (Polysynth_engine.Engine.verify system
             r.Polysynth_engine.Engine.prog))
      files

(* random systems -------------------------------------------------------------------- *)

let test_random_deterministic () =
  let a = Rand.generate ~seed:42 Rand.default_config in
  let b = Rand.generate ~seed:42 Rand.default_config in
  Alcotest.(check bool) "same seed same system" true (List.for_all2 P.equal a b);
  let c = Rand.generate ~seed:43 Rand.default_config in
  Alcotest.(check bool) "different seed differs" false
    (List.for_all2 P.equal a c)

let prop_random_shape =
  prop "random systems respect config" ~count:100
    (QCheck.make QCheck.Gen.(int_range 1 100000) ~print:string_of_int)
    (fun seed ->
      let cfg = { Rand.default_config with Rand.num_polys = 4 } in
      let polys = Rand.generate ~seed cfg in
      List.length polys = 4)

let () =
  Alcotest.run "workloads"
    [
      ( "savitzky_golay",
        [
          Alcotest.test_case "offsets" `Quick test_offsets;
          Alcotest.test_case "shape" `Quick test_sg_shape;
          Alcotest.test_case "partition of unity" `Quick test_sg_partition_of_unity;
          Alcotest.test_case "reproduces polynomials" `Quick
            test_sg_reproduces_polynomials;
          Alcotest.test_case "symmetry" `Quick test_sg_symmetry;
          Alcotest.test_case "degree too large" `Quick test_sg_degree_too_large;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "table" `Quick test_benchmark_table;
          Alcotest.test_case "paper characteristics" `Quick
            test_benchmark_paper_characteristics;
          Alcotest.test_case "by_name missing" `Quick test_by_name_missing;
        ] );
      ( "examples", [ Alcotest.test_case "consistent" `Quick test_examples_consistent ] );
      ( "corpus",
        [
          Alcotest.test_case "parses and synthesizes" `Quick
            test_corpus_parses_and_synthesizes;
        ] );
      ( "extended",
        [
          Alcotest.test_case "fir" `Quick test_fir;
          Alcotest.test_case "chebyshev" `Quick test_chebyshev;
          Alcotest.test_case "suite" `Quick test_extended_suite;
        ] );
      ( "random",
        [
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          prop_random_shape;
        ] );
    ]
