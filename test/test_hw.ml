module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module E = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog
module N = Polysynth_hw.Netlist
module Cost = Polysynth_hw.Cost
module V = Polysynth_hw.Verilog

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let prog_of_strings specs =
  Prog.of_exprs (List.map (fun s -> E.of_poly (Parse.poly_exn s)) specs)

(* netlist ---------------------------------------------------------------------- *)

let test_netlist_shape () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "3*x*y + 5" ]) in
  Alcotest.(check (list string)) "inputs" [ "x"; "y" ] (N.inputs n);
  Alcotest.(check int) "one output" 1 (List.length n.N.outputs);
  (* cells: x, y, x*y, cmult 3, const 5, add *)
  Alcotest.(check bool) "has a general mult" true
    (Array.exists (fun c -> c.N.op = N.Mult2) n.N.cells);
  Alcotest.(check bool) "has a cmult 3" true
    (Array.exists
       (fun c -> match c.N.op with N.Cmult k -> Z.to_int_exn k = 3 | _ -> false)
       n.N.cells)

let test_netlist_cmult_classification () =
  (* 6*x is a constant multiplier, x*y a general one *)
  let n = N.of_prog ~width:8 (prog_of_strings [ "6*x + x*y" ]) in
  let r = Cost.of_netlist n in
  Alcotest.(check int) "one general mult" 1 r.Cost.num_mults;
  Alcotest.(check int) "one cmult" 1 r.Cost.num_cmults;
  Alcotest.(check int) "one add" 1 r.Cost.num_adds

let test_netlist_eval_wraps () =
  (* 8-bit wrap-around: 200 + 100 = 44 mod 256 *)
  let n = N.of_prog ~width:8 (prog_of_strings [ "x + y" ]) in
  let env v = if String.equal v "x" then Z.of_int 200 else Z.of_int 100 in
  Alcotest.(check int) "wraps" 44 (Z.to_int_exn (List.assoc "P1" (N.eval n env)))

let test_netlist_eval_negative () =
  (* x - y with x < y wraps to 2^width - (y - x) *)
  let n = N.of_prog ~width:8 (prog_of_strings [ "x - y" ]) in
  let env v = if String.equal v "x" then Z.of_int 3 else Z.of_int 5 in
  Alcotest.(check int) "two's complement" 254
    (Z.to_int_exn (List.assoc "P1" (N.eval n env)))

let test_netlist_shares_bindings () =
  let prog =
    Prog.
      {
        bindings = [ ("d", E.add [ E.var "x"; E.var "y" ]) ];
        outputs =
          [ ("A", E.pow (E.var "d") 2); ("B", E.mul [ E.var "d"; E.var "z" ]) ];
      }
  in
  let n = N.of_prog ~width:16 prog in
  let adds =
    Array.to_list n.N.cells
    |> List.filter (fun c -> match c.N.op with N.Add2 -> true | _ -> false)
  in
  Alcotest.(check int) "d built once" 1 (List.length adds)

(* cost ------------------------------------------------------------------------- *)

let test_csd_digits () =
  let check name n expect =
    Alcotest.(check int) name expect (Cost.csd_digits (Z.of_int n))
  in
  check "0" 0 0;
  check "1" 1 1;
  check "8" 8 1;
  check "3" 3 2;
  check "5" 5 2;
  check "7 = 8-1" 7 2;
  check "11" 11 3;
  check "-7" (-7) 2;
  check "255 = 256-1" 255 2

let test_cost_monotone_width () =
  let report w = Cost.of_prog ~width:w (prog_of_strings [ "x*y + 3*z" ]) in
  let r8 = report 8 and r16 = report 16 in
  Alcotest.(check bool) "area grows with width" true (r16.Cost.area > r8.Cost.area);
  Alcotest.(check bool) "delay grows with width" true
    (r16.Cost.delay > r8.Cost.delay)

let test_cost_mult_dominates () =
  let mult = Cost.of_prog ~width:16 (prog_of_strings [ "x*y" ]) in
  let add = Cost.of_prog ~width:16 (prog_of_strings [ "x + y" ]) in
  Alcotest.(check bool) "multiplier much larger" true
    (mult.Cost.area > 10 * add.Cost.area)

let test_cost_pow2_cmult_free () =
  let r = Cost.of_prog ~width:16 (prog_of_strings [ "8*x" ]) in
  Alcotest.(check int) "shift-only cmult has no area" 0 r.Cost.area

let test_sharing_reduces_area () =
  let unshared = Cost.of_prog ~width:16 (prog_of_strings [ "x*y + z"; "x*y + w" ]) in
  let single = Cost.of_prog ~width:16 (prog_of_strings [ "x*y + z" ]) in
  (* the second output reuses the x*y node: only one multiplier in total *)
  Alcotest.(check int) "one multiplier" 1 unshared.Cost.num_mults;
  Alcotest.(check bool) "cheaper than two copies" true
    (unshared.Cost.area < 2 * single.Cost.area)

let test_fanout_penalty () =
  (* y^2 feeding two consumers is slower than feeding one *)
  let narrow = Cost.of_prog ~width:16 (prog_of_strings [ "x*y^2" ]) in
  let wide = Cost.of_prog ~width:16 (prog_of_strings [ "x*y^2 + z*y^2 + w*y^2" ]) in
  Alcotest.(check bool) "fanout costs delay" true
    (wide.Cost.delay > narrow.Cost.delay)

(* verilog ---------------------------------------------------------------------- *)

let test_verilog_structure () =
  let src =
    V.emit_prog ~module_name:"dut" ~width:16 (prog_of_strings [ "3*x*y + 5" ])
  in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length src
      && (String.sub src i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module dut (");
  Alcotest.(check bool) "input x" true (contains "input  signed [15:0] x");
  Alcotest.(check bool) "output P1" true (contains "output signed [15:0] P1");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "constant mult" true (contains "16'd3 *")

let test_verilog_legalize () =
  Alcotest.(check string) "tilde" "_5" (V.legalize "~5");
  Alcotest.(check string) "leading digit" "_5x" (V.legalize "5x");
  Alcotest.(check string) "pass through" "cse_t1" (V.legalize "cse_t1");
  Alcotest.(check string) "empty" "_" (V.legalize "")

let test_verilog_no_negative_literal () =
  (* constants are emitted reduced into [0, 2^w): no "16'd-5" artifacts *)
  let src = V.emit_prog ~width:8 (prog_of_strings [ "x*y - 5*z" ]) in
  Alcotest.(check bool) "no 'd-" true
    (not
       (List.exists
          (fun chunk ->
            String.length chunk > 0 && chunk.[0] = '-')
          (List.tl (String.split_on_char 'd' src))))

(* power ------------------------------------------------------------------------ *)

module Power = Polysynth_hw.Power
module Range = Polysynth_hw.Range
module Dot = Polysynth_hw.Dot
module TB = Polysynth_hw.Testbench

let test_power_deterministic () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x*y + 3*z" ]) in
  let a = Power.estimate ~seed:7 n and b = Power.estimate ~seed:7 n in
  Alcotest.(check (float 0.0)) "same seed same power" a.Power.total b.Power.total;
  Alcotest.(check bool) "positive" true (a.Power.total > 0.0)

let test_power_scales_with_circuit () =
  let small = Power.estimate (N.of_prog ~width:8 (prog_of_strings [ "x + y" ])) in
  let big =
    Power.estimate
      (N.of_prog ~width:8 (prog_of_strings [ "x*y*x + y*x*y + 7*x*y" ]))
  in
  Alcotest.(check bool) "more logic, more power" true
    (big.Power.total > small.Power.total)

let test_power_leakage_tracks_area () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y" ]) in
  let r = Power.estimate n in
  let cost = Cost.of_netlist n in
  Alcotest.(check (float 1e-9)) "leakage = 1% of area"
    (0.01 *. float_of_int cost.Cost.area)
    r.Power.leakage

let test_power_invalid_samples () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x" ]) in
  Alcotest.check_raises "samples < 1"
    (Invalid_argument "Power.estimate: samples < 1") (fun () ->
      ignore (Power.estimate ~samples:0 n))

(* range ------------------------------------------------------------------------- *)

let test_range_simple () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x + y" ]) in
  let ranges = Range.analyze n in
  let out = List.assoc "P1" n.N.outputs in
  let iv = ranges.(out) in
  Alcotest.(check int) "max 255+255" 510 (Z.to_int_exn iv.Range.hi);
  Alcotest.(check int) "min 0" 0 (Z.to_int_exn iv.Range.lo);
  (* 510 needs 10 bits in two's complement *)
  Alcotest.(check int) "required width" 10 (Range.required_width iv)

let test_range_mult_growth () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x*y" ]) in
  (* 255*255 = 65025 needs 17 signed bits *)
  Alcotest.(check int) "max width" 17 (Range.max_required_width n);
  Alcotest.(check int) "growth" 9 (Range.growth n)

let test_range_negative () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x - y" ]) in
  let ranges = Range.analyze n in
  let out = List.assoc "P1" n.N.outputs in
  Alcotest.(check int) "min -255" (-255) (Z.to_int_exn ranges.(out).Range.lo)

let test_range_custom_inputs () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y" ]) in
  let unit_range _ = { Range.lo = Z.zero; hi = Z.of_int 3 } in
  Alcotest.(check int) "narrow inputs stay narrow" 5
    (Range.max_required_width ~input_range:unit_range n)

(* dot / testbench ----------------------------------------------------------------- *)

let contains hay needle =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_dot_structure () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x*y + 3" ]) in
  let dot = Dot.of_netlist ~graph_name:"g" n in
  Alcotest.(check bool) "digraph" true (contains dot "digraph g {");
  Alcotest.(check bool) "mult node" true (contains dot "shape=box");
  Alcotest.(check bool) "edges" true (contains dot "->");
  Alcotest.(check bool) "output label" true (contains dot "[P1]");
  Alcotest.(check bool) "closes" true (contains dot "}")

let test_testbench_structure () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x*y + 3*z" ]) in
  let tb = TB.emit ~module_name:"dut" ~vectors:4 n in
  Alcotest.(check bool) "tb module" true (contains tb "module dut_tb;");
  Alcotest.(check bool) "instantiates" true (contains tb "dut dut (");
  Alcotest.(check bool) "pass message" true (contains tb "PASS: all 4 vectors");
  Alcotest.(check bool) "finish" true (contains tb "$finish;");
  (* deterministic *)
  Alcotest.(check string) "deterministic" tb (TB.emit ~module_name:"dut" ~vectors:4 n)

let test_testbench_expected_values_correct () =
  (* every expected value embedded in the TB must match Netlist.eval; spot
     check by re-parsing one assignment block *)
  let n = N.of_prog ~width:8 (prog_of_strings [ "x + 1" ]) in
  let tb = TB.emit ~vectors:1 n in
  (* x = <v>; followed by expected <v>+1 mod 256 *)
  let lines = String.split_on_char '\n' tb in
  let x_line = List.find (fun l -> contains l "    x = 8'd") lines in
  let exp_line = List.find (fun l -> contains l "expected") lines in
  let int_after marker line =
    let rec find i =
      if i + String.length marker > String.length line then None
      else if String.sub line i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      let start = i + String.length marker in
      let rec stop j =
        if j < String.length line && line.[j] >= '0' && line.[j] <= '9' then
          stop (j + 1)
        else j
      in
      let j = stop start in
      if j > start then Some (int_of_string (String.sub line start (j - start)))
      else None
  in
  match int_after "8'd" x_line, int_after "expected " exp_line with
  | Some xv, Some expected ->
    Alcotest.(check int) "expected = x+1 mod 256" ((xv + 1) mod 256) expected
  | _, _ -> Alcotest.fail "could not parse testbench"

(* c emission --------------------------------------------------------------------- *)

module Cemit = Polysynth_hw.Cemit

let test_cemit_structure () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "3*x*y + 5*z" ]) in
  let src = Cemit.emit ~func_name:"dut" n in
  Alcotest.(check bool) "function" true (contains src "void dut(word x, word y, word z, word *P1)");
  Alcotest.(check bool) "mask" true (contains src "& POLYSYNTH_MASK");
  Alcotest.(check bool) "no main without self_check" false (contains src "int main")

let test_cemit_width_limit () =
  let n = N.of_prog ~width:65 (prog_of_strings [ "x" ]) in
  Alcotest.check_raises "width > 64"
    (Invalid_argument "Cemit.emit: width exceeds 64 bits") (fun () ->
      ignore (Cemit.emit n))

let test_cemit_compiles_and_passes () =
  (* the strongest end-to-end check in the suite: generate C with baked-in
     expected values, compile it with the system compiler, run it *)
  match Sys.command "which gcc > /dev/null 2>&1" with
  | 0 ->
    let prog =
      prog_of_strings
        [ "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11"; "4*x*y^2 + 12*y^3" ]
    in
    List.iter
      (fun width ->
        let n = N.of_prog ~width prog in
        let src = Cemit.emit ~self_check:16 n in
        let dir = Filename.temp_file "polysynth" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let c_file = Filename.concat dir "t.c" in
        let exe = Filename.concat dir "t" in
        Out_channel.with_open_text c_file (fun oc ->
            Out_channel.output_string oc src);
        let compile =
          Sys.command
            (Printf.sprintf "gcc -O1 -Wall -Werror -o %s %s" exe c_file)
        in
        Alcotest.(check int)
          (Printf.sprintf "gcc accepts the %d-bit output" width)
          0 compile;
        let run = Sys.command (exe ^ " > /dev/null") in
        Alcotest.(check int)
          (Printf.sprintf "%d-bit self-check passes" width)
          0 run)
      [ 8; 16; 31; 64 ]
  | _ -> () (* no compiler available: skip silently *)

(* mcm --------------------------------------------------------------------------- *)

module Mcm = Polysynth_hw.Mcm

let test_mcm_csd_digits () =
  let digits n =
    List.map (fun (s, k) -> s * (1 lsl k)) (Mcm.csd_digits (Z.of_int n))
  in
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "digits of %d sum back" n)
        n
        (List.fold_left ( + ) 0 (digits n)))
    [ 1; 2; 3; 7; 12; 36; 45; 255; 1024; 12345 ];
  Alcotest.(check int) "7 = 8 - 1 uses 2 digits" 2
    (List.length (Mcm.csd_digits (Z.of_int 7)));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Mcm.csd_digits: non-positive constant") (fun () ->
      ignore (Mcm.csd_digits Z.zero))

let test_mcm_preserves_semantics () =
  let prog =
    prog_of_strings
      [ "36*x*y + 5*z"; "12*x*y - 20*z"; "4*x*y + 45*z + 7*w" ]
  in
  let n = N.of_prog ~width:16 prog in
  let opt = Mcm.optimize n in
  List.iter
    (fun (xv, yv, zv, wv) ->
      let env v =
        match v with
        | "x" -> Z.of_int xv
        | "y" -> Z.of_int yv
        | "z" -> Z.of_int zv
        | _ -> Z.of_int wv
      in
      let before = N.eval n env and after = N.eval opt env in
      List.iter
        (fun (name, _) ->
          Alcotest.(check bool)
            (name ^ " unchanged")
            true
            (Z.equal (List.assoc name before) (List.assoc name after)))
        n.N.outputs)
    [ (0, 0, 0, 0); (1, 2, 3, 4); (100, 200, 300, 400); (65535, 1, 7, 9) ]

let test_mcm_removes_cmults () =
  let prog = prog_of_strings [ "36*x*y + 12*x*y*z + 4*x*y*w" ] in
  let n = N.of_prog ~width:16 prog in
  let opt = Mcm.optimize n in
  let cmults net =
    Array.to_list net.N.cells
    |> List.filter (fun c -> match c.N.op with N.Cmult _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "had cmults" true (cmults n > 0);
  Alcotest.(check int) "all lowered" 0 (cmults opt);
  Alcotest.(check bool) "has shifts" true
    (Array.exists (fun c -> match c.N.op with N.Shl _ -> true | _ -> false)
       opt.N.cells)

let test_mcm_shares_partials () =
  (* x multiplied by 3, 6, 12, 24: all share the partial (x + 2x);
     4 CSD networks of 1 adder each collapse to 1 adder + shifts *)
  let prog = prog_of_strings [ "3*x + 100*y"; "6*x + 101*y"; "12*x"; "24*x" ] in
  let n = N.of_prog ~width:16 prog in
  let opt = Mcm.optimize n in
  let adders net =
    Array.to_list net.N.cells
    |> List.filter (fun c ->
           match c.N.op with N.Add2 | N.Sub2 -> true | _ -> false)
    |> List.length
  in
  let before = Cost.of_netlist n and after = Cost.of_netlist opt in
  Alcotest.(check bool)
    (Printf.sprintf "area %d <= %d" after.Cost.area before.Cost.area)
    true
    (after.Cost.area <= before.Cost.area);
  (* the four x-multiples need one adder total (plus the output adds) *)
  Alcotest.(check bool)
    (Printf.sprintf "adders %d" (adders opt))
    true
    (adders opt <= adders n + 4)

let prop_mcm_equivalent =
  let gen_specs =
    QCheck.Gen.(
      map
        (fun (a, b, c) ->
          [ Printf.sprintf "%d*x^2 + %d*x*y + %d" a b c;
            Printf.sprintf "%d*y^2 - %d*x + %d" b c a ])
        (triple (int_range 0 500) (int_range 0 500) (int_range 0 500)))
  in
  prop "MCM rewrite is evaluation-equivalent" ~count:100
    (QCheck.make
       QCheck.Gen.(pair gen_specs (pair (int_range 0 255) (int_range 0 255)))
       ~print:(fun (specs, _) -> String.concat "; " specs))
    (fun (specs, (xv, yv)) ->
      let prog = prog_of_strings specs in
      let n = N.of_prog ~width:12 prog in
      let opt = Mcm.optimize n in
      let env v = if String.equal v "x" then Z.of_int xv else Z.of_int yv in
      let before = N.eval n env and after = N.eval opt env in
      List.for_all
        (fun (name, _) ->
          Z.equal (List.assoc name before) (List.assoc name after))
        n.N.outputs)

(* schedule ---------------------------------------------------------------------- *)

module Schedule = Polysynth_hw.Schedule

let test_schedule_unlimited_matches_critical_path () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y + z*w + 3*q" ]) in
  let s = Schedule.list_schedule_exn Schedule.unlimited n in
  Alcotest.(check int) "latency = critical path"
    (Schedule.critical_path_latency n) s.Schedule.latency;
  Alcotest.(check bool) "valid" true (Schedule.is_valid Schedule.unlimited n s)

let test_schedule_resource_constrained () =
  (* three independent multiplications on one multiplier serialize *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y"; "z*w"; "q*r" ]) in
  let one = { Schedule.multipliers = 1; adders = 1 } in
  let s1 = Schedule.list_schedule_exn one n in
  let s3 = Schedule.list_schedule_exn { one with Schedule.multipliers = 3 } n in
  Alcotest.(check bool) "valid constrained" true (Schedule.is_valid one n s1);
  Alcotest.(check int) "serialized: 3 mults x 2 cycles" 6 s1.Schedule.latency;
  Alcotest.(check int) "parallel: 2 cycles" 2 s3.Schedule.latency

let test_schedule_dependences () =
  (* x*y*z: second multiply waits for the first *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y*z" ]) in
  let s = Schedule.list_schedule_exn Schedule.unlimited n in
  Alcotest.(check int) "two dependent mults" 4 s.Schedule.latency

let test_schedule_result_ok () =
  (* the typed interface returns [Ok] on every well-formed netlist and
     agrees with the [_exn] shim *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y + z" ]) in
  let res = { Schedule.multipliers = 1; adders = 1 } in
  match Schedule.list_schedule res n with
  | Error (`No_progress d) -> Alcotest.failf "unexpected: %s" d.Schedule.message
  | Ok s ->
    let s' = Schedule.list_schedule_exn res n in
    Alcotest.(check int) "same latency" s'.Schedule.latency s.Schedule.latency;
    Alcotest.(check bool) "valid" true (Schedule.is_valid res n s)

let test_schedule_invalid_resources () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x" ]) in
  Alcotest.check_raises "zero multipliers"
    (Invalid_argument "Schedule.list_schedule: need at least one unit per class")
    (fun () ->
      ignore (Schedule.list_schedule_exn { Schedule.multipliers = 0; adders = 1 } n))

let test_schedule_monotone_in_resources () =
  let n =
    N.of_prog ~width:16
      (prog_of_strings [ "x*y + y*z + z*w + w*q"; "x*z*w + 5*q*y" ])
  in
  let lat m =
    (Schedule.list_schedule_exn { Schedule.multipliers = m; adders = 2 } n)
      .Schedule.latency
  in
  Alcotest.(check bool) "more units never slower" true
    (lat 1 >= lat 2 && lat 2 >= lat 4)

(* stage ------------------------------------------------------------------------- *)

module Stage = Polysynth_hw.Stage

let test_stage_single_when_loose () =
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y + z*w" ]) in
  let s = Stage.cut ~target_period:1000.0 n in
  Alcotest.(check int) "one stage" 1 s.Stage.num_stages;
  Alcotest.(check int) "no registers" 0 s.Stage.pipeline_registers;
  Alcotest.(check bool) "valid" true (Stage.is_valid n s)

let test_stage_splits_when_tight () =
  (* the balanced product tree (x*y)*(z*w) has two multiplier levels of
     ~25.6 units each at 16 bits; a 30-unit budget splits them *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y*z*w" ]) in
  let s = Stage.cut ~target_period:30.0 n in
  Alcotest.(check bool)
    (Printf.sprintf "multiple stages (%d)" s.Stage.num_stages)
    true (s.Stage.num_stages >= 2);
  Alcotest.(check bool) "registers inserted" true (s.Stage.pipeline_registers > 0);
  Alcotest.(check bool) "valid" true (Stage.is_valid n s);
  Alcotest.(check bool) "meets period" true (s.Stage.achieved_period <= 30.0)

let test_stage_monotone_in_target () =
  let n =
    N.of_prog ~width:16 (prog_of_strings [ "13*x^2*y + 7*x*y^2 - 5*x*y + 3" ])
  in
  let stages t = (Stage.cut ~target_period:t n).Stage.num_stages in
  Alcotest.(check bool) "tighter target, more stages" true
    (stages 28.0 >= stages 60.0 && stages 60.0 >= stages 500.0)

let test_stage_slow_single_operator () =
  (* a single 16-bit multiplier is slower than a 10-unit period: it stays
     unsplit and the achieved period reports the violation *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y" ]) in
  let s = Stage.cut ~target_period:10.0 n in
  Alcotest.(check bool) "achieved > target" true (s.Stage.achieved_period > 10.0);
  Alcotest.(check bool) "valid" true (Stage.is_valid n s)

let test_stage_invalid_target () =
  let n = N.of_prog ~width:8 (prog_of_strings [ "x" ]) in
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stage.cut: non-positive period") (fun () ->
      ignore (Stage.cut ~target_period:0.0 n))

(* bind -------------------------------------------------------------------------- *)

module Bind = Polysynth_hw.Bind

let test_bind_unit_counts () =
  (* 3 independent multiplies scheduled on 2 multipliers need exactly 2 *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y"; "z*w"; "q*r" ]) in
  let res = { Schedule.multipliers = 2; adders = 2 } in
  let s = Schedule.list_schedule_exn res n in
  let b = Bind.bind res n s in
  Alcotest.(check bool) "at most 2 multipliers" true (b.Bind.num_multipliers <= 2);
  Alcotest.(check bool) "consistent" true (Bind.is_consistent n s b)

let test_bind_registers_on_serialization () =
  (* with one multiplier, early results wait for the final adder chain:
     registers are needed *)
  let n = N.of_prog ~width:16 (prog_of_strings [ "x*y + z*w + q*r" ]) in
  let res = { Schedule.multipliers = 1; adders = 1 } in
  let s = Schedule.list_schedule_exn res n in
  let b = Bind.bind res n s in
  Alcotest.(check bool) "some registers" true (b.Bind.num_registers >= 1);
  Alcotest.(check bool) "consistent" true (Bind.is_consistent n s b)

let test_bind_mux_inputs_grow_with_sharing () =
  let narrow = N.of_prog ~width:16 (prog_of_strings [ "x*y" ]) in
  let wide =
    N.of_prog ~width:16 (prog_of_strings [ "x*y + z*w + q*r + a*b" ])
  in
  let res = { Schedule.multipliers = 1; adders = 1 } in
  let sb netlist =
    let s = Schedule.list_schedule_exn res netlist in
    Bind.bind res netlist s
  in
  Alcotest.(check bool) "more ops on one unit, more mux inputs" true
    ((sb wide).Bind.mux_inputs > (sb narrow).Bind.mux_inputs)

let prop_bind_consistent =
  prop "binding is always consistent" ~count:80
    (QCheck.make
       QCheck.Gen.(
         triple
           (map
              (fun (a, b, c) ->
                [ Printf.sprintf "%d*x^2 + %d*x*y + %d" a b c;
                  Printf.sprintf "%d*y^2 - %d*x + %d" b c a ])
              (triple (int_range 0 20) (int_range 0 20) (int_range 0 20)))
           (int_range 1 3) (int_range 1 3))
       ~print:(fun (specs, m, a) ->
         Printf.sprintf "%s | %d %d" (String.concat ";" specs) m a))
    (fun (specs, m, a) ->
      let n = N.of_prog ~width:16 (prog_of_strings specs) in
      let res = { Schedule.multipliers = m; adders = a } in
      let s = Schedule.list_schedule_exn res n in
      let b = Bind.bind res n s in
      Bind.is_consistent n s b
      && b.Bind.num_multipliers <= m
      && b.Bind.num_adders <= a)

(* fsmd -------------------------------------------------------------------------- *)

module Fsmd = Polysynth_hw.Fsmd

let fsmd_matches netlist res =
  let fsmd = Fsmd.build res netlist in
  let checks =
    [ (0, 0); (1, 2); (17, 200); (255, 255); (123, 45) ]
  in
  List.for_all
    (fun (xv, yv) ->
      let env v = if String.equal v "x" then Z.of_int xv else Z.of_int yv in
      let reference = N.eval netlist env in
      let sequential = Fsmd.simulate fsmd env in
      List.for_all
        (fun (name, _) ->
          Z.equal (List.assoc name reference) (List.assoc name sequential))
        netlist.N.outputs)
    checks

let test_fsmd_matches_reference () =
  let netlist =
    N.of_prog ~width:16
      (prog_of_strings
         [ "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11"; "4*x*y^2 + 12*y^3" ])
  in
  List.iter
    (fun (m, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "matches at %d mult / %d add" m a)
        true
        (fsmd_matches netlist { Schedule.multipliers = m; adders = a }))
    [ (1, 1); (1, 2); (2, 2); (4, 4) ]

let test_fsmd_register_sharing () =
  let netlist = N.of_prog ~width:16 (prog_of_strings [ "x*y + x + y" ]) in
  let fsmd = Fsmd.build { Schedule.multipliers = 1; adders = 1 } netlist in
  Alcotest.(check bool) "registers allocated" true (fsmd.Fsmd.num_registers >= 1);
  Alcotest.(check bool) "fewer registers than ops" true
    (fsmd.Fsmd.num_registers <= List.length fsmd.Fsmd.micro_ops)

let test_fsmd_verilog_structure () =
  let netlist = N.of_prog ~width:8 (prog_of_strings [ "3*x*y + 5" ]) in
  let fsmd = Fsmd.build { Schedule.multipliers = 1; adders = 1 } netlist in
  let v = Fsmd.to_verilog ~module_name:"seq" fsmd in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains v needle))
    [ "module seq ("; "input  wire clk"; "case (state)"; "done_o";
      "regs"; "endmodule" ]

let prop_fsmd_equivalent =
  prop "FSMD simulation = combinational reference" ~count:60
    (QCheck.make
       QCheck.Gen.(
         triple
           (map
              (fun (a, b, c) ->
                [ Printf.sprintf "%d*x^2 + %d*x*y + %d*y" a b c;
                  Printf.sprintf "%d*y^2 - %d*x + %d" b c a ])
              (triple (int_range 0 30) (int_range 0 30) (int_range 0 30)))
           (pair (int_range 1 3) (int_range 1 3))
           (pair (int_range 0 4095) (int_range 0 4095)))
       ~print:(fun (specs, _, _) -> String.concat ";" specs))
    (fun (specs, (m, a), (xv, yv)) ->
      let netlist = N.of_prog ~width:12 (prog_of_strings specs) in
      let fsmd = Fsmd.build { Schedule.multipliers = m; adders = a } netlist in
      let env v = if String.equal v "x" then Z.of_int xv else Z.of_int yv in
      let reference = N.eval netlist env in
      let sequential = Fsmd.simulate fsmd env in
      List.for_all
        (fun (name, _) ->
          Z.equal (List.assoc name reference) (List.assoc name sequential))
        netlist.N.outputs)

(* properties -------------------------------------------------------------------- *)

let gen_poly_strings =
  QCheck.Gen.(
    map
      (fun (a, b, c) ->
        [ Printf.sprintf "%d*x^2 + %d*x*y + %d" a b c;
          Printf.sprintf "%d*y^2 - %d*x + %d" b c a ])
      (triple (int_range 0 20) (int_range 0 20) (int_range 0 20)))

let arb_system_env =
  QCheck.make
    QCheck.Gen.(pair gen_poly_strings (pair (int_range 0 255) (int_range 0 255)))
    ~print:(fun (polys, _) -> String.concat "; " polys)

let prop_netlist_eval_matches_poly =
  prop "netlist eval = polynomial eval mod 2^w" arb_system_env
    (fun (specs, (xv, yv)) ->
      let polys = List.map Parse.poly_exn specs in
      let prog = Prog.of_exprs (List.map E.of_poly polys) in
      let n = N.of_prog ~width:8 prog in
      let env v = if String.equal v "x" then Z.of_int xv else Z.of_int yv in
      let results = N.eval n env in
      List.for_all2
        (fun (i : int) q ->
          let expected = Z.erem_pow2 (P.eval env q) 8 in
          Z.equal expected
            (List.assoc (Printf.sprintf "P%d" i) results))
        [ 1; 2 ] polys)

let prop_schedule_valid =
  prop "list schedule is always valid" ~count:100
    (QCheck.make
       QCheck.Gen.(triple gen_poly_strings (int_range 1 3) (int_range 1 3))
       ~print:(fun (specs, m, a) ->
         Printf.sprintf "%s | m=%d a=%d" (String.concat "; " specs) m a))
    (fun (specs, m, a) ->
      let prog = Prog.of_exprs (List.map (fun s -> E.of_poly (Parse.poly_exn s)) specs) in
      let n = N.of_prog ~width:16 prog in
      let res = { Schedule.multipliers = m; adders = a } in
      let s = Schedule.list_schedule_exn res n in
      Schedule.is_valid res n s
      && s.Schedule.latency >= Schedule.critical_path_latency n)

let prop_cost_nonnegative =
  prop "cost report is sane" arb_system_env (fun (specs, _) ->
      let prog = Prog.of_exprs (List.map (fun s -> E.of_poly (Parse.poly_exn s)) specs) in
      let r = Cost.of_prog ~width:16 prog in
      r.Cost.area >= 0 && r.Cost.delay >= 0.0
      && Cost.total_operators r
         >= r.Cost.num_mults)

let () =
  Alcotest.run "hw"
    [
      ( "netlist",
        [
          Alcotest.test_case "shape" `Quick test_netlist_shape;
          Alcotest.test_case "cmult classification" `Quick
            test_netlist_cmult_classification;
          Alcotest.test_case "eval wraps" `Quick test_netlist_eval_wraps;
          Alcotest.test_case "eval negative" `Quick test_netlist_eval_negative;
          Alcotest.test_case "shares bindings" `Quick test_netlist_shares_bindings;
        ] );
      ( "cost",
        [
          Alcotest.test_case "csd digits" `Quick test_csd_digits;
          Alcotest.test_case "monotone in width" `Quick test_cost_monotone_width;
          Alcotest.test_case "mult dominates add" `Quick test_cost_mult_dominates;
          Alcotest.test_case "pow2 cmult free" `Quick test_cost_pow2_cmult_free;
          Alcotest.test_case "sharing reduces area" `Quick test_sharing_reduces_area;
          Alcotest.test_case "fanout penalty" `Quick test_fanout_penalty;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "legalize" `Quick test_verilog_legalize;
          Alcotest.test_case "negative constant" `Quick
            test_verilog_no_negative_literal;
        ] );
      ( "power",
        [
          Alcotest.test_case "deterministic" `Quick test_power_deterministic;
          Alcotest.test_case "scales with circuit" `Quick
            test_power_scales_with_circuit;
          Alcotest.test_case "leakage tracks area" `Quick
            test_power_leakage_tracks_area;
          Alcotest.test_case "invalid samples" `Quick test_power_invalid_samples;
        ] );
      ( "range",
        [
          Alcotest.test_case "addition" `Quick test_range_simple;
          Alcotest.test_case "multiplication growth" `Quick test_range_mult_growth;
          Alcotest.test_case "negative" `Quick test_range_negative;
          Alcotest.test_case "custom inputs" `Quick test_range_custom_inputs;
        ] );
      ( "dot/testbench",
        [
          Alcotest.test_case "dot structure" `Quick test_dot_structure;
          Alcotest.test_case "testbench structure" `Quick test_testbench_structure;
          Alcotest.test_case "testbench expected values" `Quick
            test_testbench_expected_values_correct;
        ] );
      ( "mcm",
        [
          Alcotest.test_case "csd digits" `Quick test_mcm_csd_digits;
          Alcotest.test_case "preserves semantics" `Quick
            test_mcm_preserves_semantics;
          Alcotest.test_case "removes cmults" `Quick test_mcm_removes_cmults;
          Alcotest.test_case "shares partials" `Quick test_mcm_shares_partials;
          prop_mcm_equivalent;
        ] );
      ( "cemit",
        [
          Alcotest.test_case "structure" `Quick test_cemit_structure;
          Alcotest.test_case "width limit" `Quick test_cemit_width_limit;
          Alcotest.test_case "compiles and passes" `Quick
            test_cemit_compiles_and_passes;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "unlimited = critical path" `Quick
            test_schedule_unlimited_matches_critical_path;
          Alcotest.test_case "resource constrained" `Quick
            test_schedule_resource_constrained;
          Alcotest.test_case "dependences" `Quick test_schedule_dependences;
          Alcotest.test_case "result interface" `Quick test_schedule_result_ok;
          Alcotest.test_case "invalid resources" `Quick
            test_schedule_invalid_resources;
          Alcotest.test_case "monotone in resources" `Quick
            test_schedule_monotone_in_resources;
        ] );
      ( "stage",
        [
          Alcotest.test_case "single stage when loose" `Quick
            test_stage_single_when_loose;
          Alcotest.test_case "splits when tight" `Quick
            test_stage_splits_when_tight;
          Alcotest.test_case "monotone in target" `Quick
            test_stage_monotone_in_target;
          Alcotest.test_case "slow single operator" `Quick
            test_stage_slow_single_operator;
          Alcotest.test_case "invalid target" `Quick test_stage_invalid_target;
        ] );
      ( "fsmd",
        [
          Alcotest.test_case "matches reference" `Quick
            test_fsmd_matches_reference;
          Alcotest.test_case "register sharing" `Quick test_fsmd_register_sharing;
          Alcotest.test_case "verilog structure" `Quick
            test_fsmd_verilog_structure;
          prop_fsmd_equivalent;
        ] );
      ( "bind",
        [
          Alcotest.test_case "unit counts" `Quick test_bind_unit_counts;
          Alcotest.test_case "registers on serialization" `Quick
            test_bind_registers_on_serialization;
          Alcotest.test_case "mux inputs" `Quick
            test_bind_mux_inputs_grow_with_sharing;
          prop_bind_consistent;
        ] );
      ( "properties",
        [
          prop_netlist_eval_matches_poly;
          prop_schedule_valid;
          prop_cost_nonnegative;
        ] );
    ]
