(* this suite deliberately exercises the deprecated [Pipeline] shims to
   pin their behaviour to the engine's; silence the migration alert here *)
[@@@alert "-deprecated"]

module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module E = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog
module Ring = Polysynth_finite_ring.Canonical
module Cost = Polysynth_hw.Cost
module Cce = Polysynth_core.Cce
module Blocks = Polysynth_core.Blocks
module Blocktab = Polysynth_core.Blocktab
module Horner = Polysynth_core.Horner
module Algdiv = Polysynth_core.Algdiv
module Canon_rep = Polysynth_core.Canonical_rep
module Represent = Polysynth_core.Represent
module Search = Polysynth_core.Search
module Integrated = Polysynth_core.Integrated
module Baselines = Polysynth_core.Baselines
module Pipe = Polysynth_core.Pipeline
module Ex = Polysynth_workloads.Examples
module Rand = Polysynth_workloads.Random_system

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let ops prog = Dag.total_ops (Prog.counts prog)

let tree_ops polys =
  List.fold_left
    (fun acc q -> acc + Dag.total_ops (Dag.tree_counts (E.of_poly q)))
    0 polys

(* cce ---------------------------------------------------------------------------- *)

let test_cce_candidate_gcds () =
  let gcds coeffs = List.map Z.to_int_exn (Cce.candidate_gcds (List.map Z.of_int coeffs)) in
  Alcotest.(check (list int)) "paper example 14.12" [ 15; 8 ] (gcds [ 8; 16; 24; 15; 30 ]);
  Alcotest.(check (list int)) "gcd 6 dropped" [] (gcds [ 24; 30 ]);
  Alcotest.(check (list int)) "ones dropped" [] (gcds [ 3; 7; 11 ]);
  Alcotest.(check (list int)) "signs ignored" [ 5 ] (gcds [ -5; 10 ])

let test_cce_paper_example () =
  (* P1 = 8x + 16y + 24z + 15a + 30b + 11 -> 8(x+2y+3z) + 15(a+2b) + 11 *)
  let r = Cce.extract Ex.section_14_4_1 in
  Alcotest.(check int) "two groups" 2 (List.length r.Cce.groups);
  (match r.Cce.groups with
   | [ (g1, b1); (g2, b2) ] ->
     Alcotest.(check int) "g1 = 15" 15 (Z.to_int_exn g1);
     check_p "b1 = a + 2b" (p "a + 2*b") b1;
     Alcotest.(check int) "g2 = 8" 8 (Z.to_int_exn g2);
     check_p "b2 = x + 2y + 3z" (p "x + 2*y + 3*z") b2
   | _ -> Alcotest.fail "unexpected group shape");
  check_p "residual 11" (p "11") r.Cce.residual;
  check_p "recomposes" Ex.section_14_4_1 (Cce.recompose r)

let test_cce_table_14_2 () =
  (* 13x^2+26xy+13y^2+7x-7y+11 -> 13(x^2+2xy+y^2) + 7(x-y) + 11 *)
  let r = Cce.extract (List.hd Ex.table_14_2) in
  Alcotest.(check bool) "has 13-group" true
    (List.exists
       (fun (g, b) -> Z.to_int_exn g = 13 && P.equal b (p "x^2 + 2*x*y + y^2"))
       r.Cce.groups);
  Alcotest.(check bool) "has 7-group (x - y)" true
    (List.exists
       (fun (g, b) -> Z.to_int_exn g = 7 && P.equal b (p "x - y"))
       r.Cce.groups);
  check_p "residual" (p "11") r.Cce.residual

let test_cce_nothing_to_do () =
  let r = Cce.extract (p "3*x + 7*y + 11") in
  Alcotest.(check int) "no groups" 0 (List.length r.Cce.groups);
  check_p "residual is whole" (p "3*x + 7*y + 11") r.Cce.residual

let test_cce_motivating () =
  (* 5x^2 + 10y^3 + 15qw = 5(x^2 + 2y^3 + 3qw) *)
  let r = Cce.extract Ex.coefficient_factoring_motivation in
  (match r.Cce.groups with
   | [ (g, b) ] ->
     Alcotest.(check int) "g = 5" 5 (Z.to_int_exn g);
     check_p "block" (p "x^2 + 2*y^3 + 3*q*w") b
   | _ -> Alcotest.fail "expected one group")

(* blocks --------------------------------------------------------------------------- *)

let test_blocks_table_14_1 () =
  let divisors = Blocks.discover Ex.table_14_1 in
  Alcotest.(check bool) "finds x + 3y" true
    (List.exists (P.equal (p "x + 3*y")) divisors)

let test_blocks_table_14_2 () =
  let divisors = Blocks.discover Ex.table_14_2 in
  Alcotest.(check bool) "finds x + y" true
    (List.exists (P.equal (p "x + y")) divisors);
  Alcotest.(check bool) "finds x - y" true
    (List.exists (P.equal (p "x - y")) divisors)

let test_blocks_all_linear () =
  let divisors = Blocks.discover (Ex.table_14_2 @ Ex.table_14_1) in
  List.iter
    (fun d ->
      Alcotest.(check bool) (P.to_string d ^ " linear") true (Blocks.is_linear d);
      Alcotest.(check bool) "primitive" true
        (Z.is_one (P.content d)))
    divisors

let test_blocks_normalize () =
  check_p "sign" (p "x + y") (Blocks.normalize (p "-x - y"));
  check_p "content" (p "x + 2*y") (Blocks.normalize (p "3*x + 6*y"))

(* horner ---------------------------------------------------------------------------- *)

let test_horner_correct () =
  List.iter
    (fun q ->
      check_p ("horner " ^ P.to_string q) q (E.to_poly (Horner.rep q)))
    (Ex.table_14_1 @ Ex.table_14_2 @ [ p "0"; p "7"; p "x" ])

let test_horner_reduces () =
  (* x^2 + 6xy: x(x + 6y) uses 2 mults + 1 cmult vs 3 ops... compare ops *)
  let direct = Dag.total_ops (Dag.tree_counts (E.of_poly (p "x^3 + x^2 + x"))) in
  let horner = Dag.total_ops (Dag.tree_counts (Horner.rep (p "x^3 + x^2 + x"))) in
  Alcotest.(check bool) "horner cheaper" true (horner < direct)

let test_horner_best_variable () =
  Alcotest.(check (option string)) "x most frequent" (Some "x")
    (Horner.best_variable (p "x^2 + x*y + x*z + y"));
  Alcotest.(check (option string)) "no repeated var" None
    (Horner.best_variable (p "x + y + z"))

(* algdiv ----------------------------------------------------------------------------- *)

let decompose_with divisors q =
  let table = Blocktab.create () in
  let session = Algdiv.make_session table ~divisors:(List.map p divisors) in
  let e = Algdiv.decompose session q in
  (e, table)

let expand_with table e =
  (* substitute block definitions (they only mention input vars) *)
  let defs = Blocktab.defs table in
  let lookup v = Option.map E.of_poly (List.assoc_opt v defs) in
  E.to_poly (E.subst lookup e)

let test_algdiv_perfect_square () =
  let q = p "x^2 + 6*x*y + 9*y^2" in
  let e, table = decompose_with [ "x + 3*y" ] q in
  check_p "expands back" q (expand_with table e);
  (* the decomposition must be d^2: one multiplication after the block *)
  Alcotest.(check int) "uses a power of the divisor" 1
    (Dag.total_ops (Dag.tree_counts e))

let test_algdiv_table_14_2_p1 () =
  let q = List.hd Ex.table_14_2 in
  let e, table = decompose_with [ "x + y"; "x - y" ] q in
  check_p "expands back" q (expand_with table e);
  (* 13*d1^2 + 7*d2 + 11: 3 mults + 2 adds = 5 ops *)
  Alcotest.(check bool) "cost <= 5" true (Dag.total_ops (Dag.tree_counts e) <= 5)

let test_algdiv_no_divisors () =
  let q = p "x^2 + y^2 + 3" in
  let e, table = decompose_with [] q in
  check_p "still correct" q (expand_with table e)

let test_algdiv_zero_and_const () =
  let e0, t0 = decompose_with [ "x + y" ] P.zero in
  check_p "zero" P.zero (expand_with t0 e0);
  let e1, t1 = decompose_with [ "x + y" ] (p "42") in
  check_p "const" (p "42") (expand_with t1 e1)

(* canonical rep -------------------------------------------------------------------------- *)

let test_canonical_rep_shares_y_blocks () =
  let ctx = Ring.make_ctx ~out_width:16 () in
  let table = Blocktab.create () in
  let e3 = Canon_rep.rep ctx table (List.nth Ex.table_14_2 2) in
  let e4 = Canon_rep.rep ctx table (List.nth Ex.table_14_2 3) in
  let prog =
    { Prog.bindings = Blocktab.bindings table;
      outputs = [ ("P3", e3); ("P4", e4) ] }
  in
  let c = Prog.counts prog in
  (* the paper's d3 sharing: P3+P4 together need <= 9 mults *)
  Alcotest.(check bool)
    (Printf.sprintf "shared falling blocks (%d mults)" c.Dag.mults)
    true (c.Dag.mults <= 9)

let test_canonical_rep_function_equal () =
  let ctx = Ring.make_ctx ~out_width:8 () in
  let table = Blocktab.create () in
  let q = p "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y" in
  let e = Canon_rep.rep ctx table q in
  let defs = Blocktab.defs table in
  let lookup v = Option.map E.of_poly (List.assoc_opt v defs) in
  let expanded = E.to_poly (E.subst lookup e) in
  Alcotest.(check bool) "same bit-vector function" true
    (Ring.equal_functions ctx q expanded)

(* represent / search ------------------------------------------------------------------------ *)

let test_represent_has_reps () =
  let r = Represent.build ~ctx:(Ring.make_ctx ~out_width:16 ()) Ex.table_14_2 in
  Array.iter
    (fun reps ->
      Alcotest.(check bool) "non-empty" true (List.length reps >= 2);
      Alcotest.(check bool) "has direct" true
        (List.exists (fun rep -> rep.Represent.label = "direct") reps))
    r.Represent.reps;
  Alcotest.(check bool) "combinations > 1" true (Represent.num_combinations r > 1)

let test_represent_exact_reps_expand () =
  let r = Represent.build Ex.table_14_1 in
  Array.iteri
    (fun i reps ->
      let original = r.Represent.polys.(i) in
      List.iter
        (fun rep ->
          if rep.Represent.semantics = Represent.Exact then begin
            let defs = Blocktab.defs r.Represent.table in
            let lookup v = Option.map E.of_poly (List.assoc_opt v defs) in
            check_p
              (Printf.sprintf "rep %s of P%d" rep.Represent.label (i + 1))
              original
              (E.to_poly (E.subst lookup rep.Represent.expr))
          end)
        reps)
    r.Represent.reps

let test_search_table_14_1 () =
  let r = Represent.build Ex.table_14_1 in
  let sel = Search.select (Search.default_options ~width:16) r in
  Alcotest.(check bool) "exhaustive" true sel.Search.exhaustive;
  Alcotest.(check int) "8 mults" 8 sel.Search.counts.Dag.mults;
  Alcotest.(check int) "1 add" 1 sel.Search.counts.Dag.adds;
  Alcotest.(check bool) "verifies" true (Pipe.verify Ex.table_14_1 sel.Search.prog)

let test_search_beam_on_large () =
  (* force coordinate descent with a tiny exhaustive limit *)
  let r = Represent.build Ex.table_14_2 in
  let options =
    { (Search.default_options ~width:16) with Search.exhaustive_limit = 1 }
  in
  let sel = Search.select options r in
  Alcotest.(check bool) "not exhaustive" false sel.Search.exhaustive;
  Alcotest.(check bool) "verifies" true (Pipe.verify Ex.table_14_2 sel.Search.prog);
  (* descent still reaches a good decomposition *)
  Alcotest.(check bool) "better than direct" true
    (Dag.total_ops sel.Search.counts < tree_ops Ex.table_14_2)

(* integrated ----------------------------------------------------------------------------------- *)

let test_integrated_variants_exact () =
  List.iter
    (fun (label, prog) ->
      Alcotest.(check bool) (label ^ " verifies") true
        (Pipe.verify Ex.table_14_2 prog))
    (Integrated.variants Ex.table_14_2)

let test_integrated_never_terrible () =
  List.iter
    (fun (label, prog) ->
      Alcotest.(check bool) (label ^ " no worse than direct") true
        (ops prog <= tree_ops Ex.table_14_2))
    (Integrated.variants Ex.table_14_2)

(* pipeline --------------------------------------------------------------------------------------- *)

let test_pipeline_table_14_1 () =
  let reports = Pipe.compare_methods ~width:16 Ex.table_14_1 in
  let by name =
    List.find (fun r -> Pipe.method_label r.Pipe.method_name = name) reports
  in
  let proposed = by "proposed" and baseline = by "factor+cse" in
  Alcotest.(check int) "proposed 8 mults" 8 proposed.Pipe.counts.Dag.mults;
  Alcotest.(check int) "proposed 1 add" 1 proposed.Pipe.counts.Dag.adds;
  Alcotest.(check int) "baseline 12 mults" 12 baseline.Pipe.counts.Dag.mults;
  Alcotest.(check int) "baseline 4 adds" 4 baseline.Pipe.counts.Dag.adds;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Pipe.method_label r.Pipe.method_name ^ " verifies")
        true
        (Pipe.verify Ex.table_14_1 r.Pipe.prog))
    reports

let test_pipeline_table_14_2 () =
  let ctx = Ring.make_ctx ~out_width:16 () in
  let proposed = Pipe.synthesize ~ctx ~width:16 Ex.table_14_2 in
  Alcotest.(check int) "14 mults" 14 proposed.Pipe.counts.Dag.mults;
  Alcotest.(check int) "12 adds" 12 proposed.Pipe.counts.Dag.adds;
  Alcotest.(check bool) "verifies mod ring" true
    (Pipe.verify ~ctx Ex.table_14_2 proposed.Pipe.prog)

let test_pipeline_direct_tree_counts () =
  (* initial cost of the Table 14.2 system: 51 MULT / 21 ADD *)
  let direct = Baselines.direct Ex.table_14_2 in
  let c = Prog.tree_counts direct in
  Alcotest.(check int) "51 mults" 51 c.Dag.mults;
  Alcotest.(check int) "21 adds" 21 c.Dag.adds;
  let c1 = Prog.tree_counts (Baselines.direct Ex.table_14_1) in
  Alcotest.(check int) "17 mults" 17 c1.Dag.mults;
  Alcotest.(check int) "4 adds" 4 c1.Dag.adds

let test_pipeline_proposed_beats_baseline_on_paper_tables () =
  List.iter
    (fun system ->
      let base = Pipe.run ~width:16 Pipe.Factor_cse system in
      let prop = Pipe.run ~width:16 Pipe.Proposed system in
      Alcotest.(check bool) "area no worse" true
        (prop.Pipe.cost.Cost.area <= base.Pipe.cost.Cost.area))
    [ Ex.table_14_1; Ex.table_14_2 ]

(* coefficient folding ------------------------------------------------------------------------------- *)

let test_coeff_fold_helps () =
  (* 65535*x = -x mod 2^16: one negation instead of a fat CSD multiplier *)
  let system = [ p "65535*x + 255*y" ] in
  let ctx = Ring.make_ctx ~out_width:16 () in
  let plain = Pipe.run ~width:16 Pipe.Proposed system in
  let ring = Pipe.run ~ctx ~width:16 Pipe.Proposed system in
  Alcotest.(check bool)
    (Printf.sprintf "folded area %d < plain %d" ring.Pipe.cost.Cost.area
       plain.Pipe.cost.Cost.area)
    true
    (ring.Pipe.cost.Cost.area < plain.Pipe.cost.Cost.area);
  Alcotest.(check bool) "function-equal" true
    (Pipe.verify ~ctx system ring.Pipe.prog)

let prop_coeff_fold_sound =
  prop "ring-aware synthesis is function-equal" ~count:30
    (QCheck.make QCheck.Gen.(int_range 1 100000) ~print:string_of_int)
    (fun seed ->
      let system =
        Rand.generate ~seed
          { Rand.default_config with
            Rand.num_polys = 2; max_terms = 3; max_coeff = 300 }
      in
      let ctx = Ring.make_ctx ~out_width:8 () in
      let r = Pipe.run ~ctx ~width:8 Pipe.Proposed system in
      Pipe.verify ~ctx system r.Pipe.prog)

(* objectives -------------------------------------------------------------------------------------- *)

let test_objectives () =
  let system = (Option.get (Polysynth_workloads.Benchmarks.by_name "Mibench")).Polysynth_workloads.Benchmarks.polys in
  let run objective =
    let options =
      { (Search.default_options ~width:8) with Search.objective }
    in
    Pipe.run ~options ~width:8 Pipe.Proposed system
  in
  let area_r = run Search.Min_area in
  let delay_r = run Search.Min_delay in
  let ops_r = run Search.Min_ops in
  (* each objective is at least as good as the others on its own metric *)
  Alcotest.(check bool) "min-area has min area" true
    (area_r.Pipe.cost.Cost.area <= delay_r.Pipe.cost.Cost.area
    && area_r.Pipe.cost.Cost.area <= ops_r.Pipe.cost.Cost.area);
  Alcotest.(check bool) "min-delay has min delay" true
    (delay_r.Pipe.cost.Cost.delay <= area_r.Pipe.cost.Cost.delay +. 1e-9);
  Alcotest.(check bool) "min-ops has min ops" true
    (Dag.total_ops ops_r.Pipe.counts <= Dag.total_ops area_r.Pipe.counts);
  (* all of them remain exact *)
  List.iter
    (fun r -> Alcotest.(check bool) "exact" true (Pipe.verify system r.Pipe.prog))
    [ area_r; delay_r; ops_r ]

let test_objective_power_runs () =
  let system = Ex.table_14_1 in
  let options =
    { (Search.default_options ~width:16) with Search.objective = Search.Min_power }
  in
  let r = Pipe.run ~options ~width:16 Pipe.Proposed system in
  Alcotest.(check bool) "exact under power objective" true
    (Pipe.verify system r.Pipe.prog)

(* pretty-printed programs round-trip through the program parser ------------------ *)

let test_prog_pp_parse_roundtrip () =
  let ctx = Ring.make_ctx ~out_width:16 () in
  List.iter
    (fun (system, use_ctx) ->
      let r =
        if use_ctx then Pipe.synthesize ~ctx ~width:16 system
        else Pipe.synthesize ~width:16 system
      in
      let text = Format.asprintf "%a" Prog.pp r.Pipe.prog in
      let reparsed = Polysynth_expr.Prog_parse.program_exn text in
      let before = Prog.to_polys r.Pipe.prog in
      let after = Prog.to_polys reparsed in
      List.iter
        (fun (name, q) ->
          match List.assoc_opt name after with
          | Some q' -> check_p ("roundtrip " ^ name) q q'
          | None -> Alcotest.fail ("missing output " ^ name))
        before)
    [ (Ex.table_14_1, false); (Ex.table_14_2, true) ]

(* degenerate inputs ---------------------------------------------------------------------------------- *)

let test_degenerate_systems () =
  let check name system =
    let r = Pipe.run ~width:16 Pipe.Proposed system in
    Alcotest.(check bool) (name ^ " exact") true (Pipe.verify system r.Pipe.prog)
  in
  check "empty" [];
  check "constant" [ p "7" ];
  check "zero" [ P.zero ];
  check "single variable" [ p "x" ];
  check "negative constant" [ P.of_int (-3) ];
  check "mixed degenerate" [ P.zero; p "1"; p "x" ];
  (* 1-bit ring: x^2 + x is the zero function *)
  let ctx1 = Ring.make_ctx ~out_width:1 () in
  let r = Pipe.run ~ctx:ctx1 ~width:1 Pipe.Proposed [ p "x^2 + x" ] in
  Alcotest.(check bool) "1-bit ring" true
    (Pipe.verify ~ctx:ctx1 [ p "x^2 + x" ] r.Pipe.prog)

(* properties -------------------------------------------------------------------------------------- *)

let arb_seed = QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int

let random_system seed =
  Rand.generate ~seed
    { Rand.default_config with Rand.num_polys = 2; max_terms = 4 }

let prop_cce_recompose =
  prop "CCE recomposes" ~count:200 arb_seed (fun seed ->
      List.for_all
        (fun q -> P.equal q (Cce.recompose (Cce.extract q)))
        (random_system seed))

let prop_proposed_verifies =
  prop "proposed synthesis is exact" ~count:40 arb_seed (fun seed ->
      let system = random_system seed in
      let r = Pipe.run ~width:16 Pipe.Proposed system in
      Pipe.verify system r.Pipe.prog)

let prop_all_methods_verify =
  prop "all methods are exact" ~count:30 arb_seed (fun seed ->
      let system = random_system seed in
      List.for_all
        (fun r -> Pipe.verify system r.Pipe.prog)
        (Pipe.compare_methods ~width:16 system))

let prop_proposed_never_worse_than_direct =
  (* the search minimizes estimated area and always evaluates the all-direct
     combination, so the proposed result can never cost more area than the
     direct program (operator count MAY grow: cheap constant multipliers can
     be traded for an extra operation) *)
  prop "proposed area <= direct area" ~count:40 arb_seed (fun seed ->
      let system = random_system seed in
      let r = Pipe.run ~width:16 Pipe.Proposed system in
      let direct =
        Cost.of_prog ~width:16 (Baselines.direct system)
      in
      r.Pipe.cost.Cost.area <= direct.Cost.area)

let prop_proposed_mod_ring_verifies =
  prop "proposed with ring ctx is function-equal" ~count:30 arb_seed
    (fun seed ->
      let system = random_system seed in
      let ctx = Ring.make_ctx ~out_width:8 () in
      let r = Pipe.run ~ctx ~width:8 Pipe.Proposed system in
      Pipe.verify ~ctx system r.Pipe.prog)

let () =
  Alcotest.run "core"
    [
      ( "cce",
        [
          Alcotest.test_case "candidate gcds" `Quick test_cce_candidate_gcds;
          Alcotest.test_case "paper 14.4.1 example" `Quick test_cce_paper_example;
          Alcotest.test_case "table 14.2 P1" `Quick test_cce_table_14_2;
          Alcotest.test_case "nothing to extract" `Quick test_cce_nothing_to_do;
          Alcotest.test_case "coefficient motivation" `Quick test_cce_motivating;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "table 14.1 divisor" `Quick test_blocks_table_14_1;
          Alcotest.test_case "table 14.2 divisors" `Quick test_blocks_table_14_2;
          Alcotest.test_case "all linear and primitive" `Quick test_blocks_all_linear;
          Alcotest.test_case "normalize" `Quick test_blocks_normalize;
        ] );
      ( "horner",
        [
          Alcotest.test_case "correct" `Quick test_horner_correct;
          Alcotest.test_case "reduces univariate" `Quick test_horner_reduces;
          Alcotest.test_case "best variable" `Quick test_horner_best_variable;
        ] );
      ( "algdiv",
        [
          Alcotest.test_case "perfect square" `Quick test_algdiv_perfect_square;
          Alcotest.test_case "table 14.2 P1" `Quick test_algdiv_table_14_2_p1;
          Alcotest.test_case "no divisors" `Quick test_algdiv_no_divisors;
          Alcotest.test_case "zero and const" `Quick test_algdiv_zero_and_const;
        ] );
      ( "canonical_rep",
        [
          Alcotest.test_case "shares Y blocks" `Quick
            test_canonical_rep_shares_y_blocks;
          Alcotest.test_case "function equal" `Quick
            test_canonical_rep_function_equal;
        ] );
      ( "represent/search",
        [
          Alcotest.test_case "rep lists" `Quick test_represent_has_reps;
          Alcotest.test_case "exact reps expand" `Quick
            test_represent_exact_reps_expand;
          Alcotest.test_case "search table 14.1" `Quick test_search_table_14_1;
          Alcotest.test_case "coordinate descent" `Quick test_search_beam_on_large;
        ] );
      ( "integrated",
        [
          Alcotest.test_case "variants exact" `Quick test_integrated_variants_exact;
          Alcotest.test_case "never terrible" `Quick test_integrated_never_terrible;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "table 14.1 counts" `Quick test_pipeline_table_14_1;
          Alcotest.test_case "table 14.2 counts" `Quick test_pipeline_table_14_2;
          Alcotest.test_case "direct tree counts" `Quick
            test_pipeline_direct_tree_counts;
          Alcotest.test_case "beats baseline on paper tables" `Quick
            test_pipeline_proposed_beats_baseline_on_paper_tables;
        ] );
      ( "degenerate",
        [ Alcotest.test_case "degenerate systems" `Quick test_degenerate_systems ] );
      ( "roundtrip",
        [
          Alcotest.test_case "Prog.pp parses back" `Quick
            test_prog_pp_parse_roundtrip;
        ] );
      ( "coeff_fold",
        [
          Alcotest.test_case "folding helps" `Quick test_coeff_fold_helps;
          prop_coeff_fold_sound;
        ] );
      ( "objectives",
        [
          Alcotest.test_case "objective dominance" `Quick test_objectives;
          Alcotest.test_case "power objective" `Quick test_objective_power_runs;
        ] );
      ( "properties",
        [
          prop_cce_recompose;
          prop_proposed_verifies;
          prop_all_methods_verify;
          prop_proposed_never_worse_than_direct;
          prop_proposed_mod_ring_verifies;
        ] );
    ]
