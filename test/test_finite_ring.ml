module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Mono = Polysynth_poly.Monomial
module Parse = Polysynth_poly.Parse
module Sm = Polysynth_finite_ring.Smarandache
module St = Polysynth_finite_ring.Stirling
module C = Polysynth_finite_ring.Canonical

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* smarandache ---------------------------------------------------------------- *)

let test_lambda () =
  let cases = [ (1, 2); (2, 4); (3, 4); (4, 6); (8, 10); (16, 18); (32, 34) ] in
  List.iter
    (fun (m, expect) ->
      Alcotest.(check int) (Printf.sprintf "lambda %d" m) expect (Sm.lambda m))
    cases;
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Smarandache.lambda: non-positive width") (fun () ->
      ignore (Sm.lambda 0))

let test_lambda_minimality () =
  (* lambda m is the least k with 2^m | k! *)
  for m = 1 to 40 do
    let l = Sm.lambda m in
    Alcotest.(check bool) "divides" true (Z.divides (Z.pow2 m) (Z.factorial l));
    Alcotest.(check bool) "minimal" false
      (Z.divides (Z.pow2 m) (Z.factorial (l - 1)))
  done

let test_val2_factorial () =
  Alcotest.(check int) "v2(0!)" 0 (Sm.val2_factorial 0);
  Alcotest.(check int) "v2(4!)" 3 (Sm.val2_factorial 4);
  Alcotest.(check int) "v2(18!)" 16 (Sm.val2_factorial 18);
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "matches Zint for %d!" k)
        (Z.val2 (Z.factorial k))
        (Sm.val2_factorial k))
    [ 1; 2; 3; 5; 10; 20; 25 ]

(* stirling --------------------------------------------------------------------- *)

let test_stirling_second () =
  let check n k expect =
    Alcotest.(check int)
      (Printf.sprintf "S(%d,%d)" n k)
      expect
      (Z.to_int_exn (St.second n k))
  in
  check 0 0 1; check 1 1 1; check 2 1 1; check 2 2 1;
  check 3 1 1; check 3 2 3; check 3 3 1;
  check 4 2 7; check 4 3 6; check 5 2 15; check 5 3 25;
  check 3 0 0; check 2 3 0

let test_stirling_first () =
  let check n k expect =
    Alcotest.(check int)
      (Printf.sprintf "s(%d,%d)" n k)
      expect
      (Z.to_int_exn (St.first_signed n k))
  in
  check 0 0 1; check 1 1 1; check 2 1 (-1); check 2 2 1;
  check 3 1 2; check 3 2 (-3); check 3 3 1;
  check 4 1 (-6); check 4 2 11; check 4 3 (-6); check 4 4 1

let test_stirling_inverse () =
  (* the two triangular matrices are mutually inverse:
     sum_j S(n,j) s(j,k) = delta(n,k) *)
  for n = 0 to 8 do
    for k = 0 to 8 do
      let sum = ref Z.zero in
      for j = 0 to n do
        sum := Z.add !sum (Z.mul (St.second n j) (St.first_signed j k))
      done;
      Alcotest.(check bool)
        (Printf.sprintf "delta %d %d" n k)
        true
        (Z.equal !sum (if n = k then Z.one else Z.zero))
    done
  done

(* canonical --------------------------------------------------------------------- *)

let ctx16 = C.make_ctx ~out_width:16 ()

let y_mono l = Mono.of_list l

let test_falling_roundtrip_example () =
  let f = p "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y + 5*z^2*x - 5*z*x" in
  let falling = C.to_falling f in
  (* expected: 4*Y2(x)*Y2(y) + 5*Y1(x)*Y2(z) *)
  let expected =
    C.falling_of_terms
      [ (Z.of_int 4, y_mono [ ("x", 2); ("y", 2) ]);
        (Z.of_int 5, y_mono [ ("x", 1); ("z", 2) ]) ]
  in
  Alcotest.(check bool) "paper example F" true
    (C.falling_terms falling = C.falling_terms expected);
  check_p "roundtrip" f (C.of_falling falling)

let test_falling_g_example () =
  let g = p "7*x^2*z^2 - 7*x^2*z - 7*x*z^2 + 7*z*x + 3*y^2*x - 3*y*x" in
  let expected =
    C.falling_of_terms
      [ (Z.of_int 7, y_mono [ ("x", 2); ("z", 2) ]);
        (Z.of_int 3, y_mono [ ("x", 1); ("y", 2) ]) ]
  in
  Alcotest.(check bool) "paper example G" true
    (C.falling_terms (C.to_falling g) = C.falling_terms expected)

let test_chen_example () =
  (* f : Z_2 x Z_4 -> Z_8 from Section 14.3.1, F = 1 + 2y + x*y^2 *)
  let ctx = C.make_ctx ~out_width:3 ~var_widths:[ ("x", 1); ("y", 2) ] () in
  let f = p "1 + 2*y + x*y^2" in
  let table =
    [ (0, 0, 1); (0, 1, 3); (0, 2, 5); (0, 3, 7);
      (1, 0, 1); (1, 1, 4); (1, 2, 1); (1, 3, 0) ]
  in
  List.iter
    (fun (x, y, expect) ->
      let env v = if String.equal v "x" then Z.of_int x else Z.of_int y in
      Alcotest.(check int)
        (Printf.sprintf "f(%d,%d)" x y)
        expect
        (Z.to_int_exn (C.eval_mod ctx f env)))
    table

let test_mu_lambda () =
  let ctx = C.make_ctx ~out_width:3 ~var_widths:[ ("x", 1); ("y", 2) ] () in
  Alcotest.(check int) "lambda(3)" 4 (C.lambda ctx);
  Alcotest.(check int) "mu x = min(2,4)" 2 (C.mu ctx "x");
  Alcotest.(check int) "mu y = min(4,4)" 4 (C.mu ctx "y");
  Alcotest.(check int) "default width" 3 (C.var_width ctx "unseen");
  Alcotest.(check int) "mu 16-bit" 18 (C.mu ctx16 "x")

let test_vanishing () =
  (* x^2 + x = Y_2(x) + 2 Y_1(x); over Z_2 -> Z_1, Y_2 vanishes and the
     coefficient 2 reduces to 0: the function is identically 0. *)
  let ctx = C.make_ctx ~out_width:1 ~var_widths:[ ("x", 1) ] () in
  let f = p "x^2 + x" in
  Alcotest.(check bool) "x^2+x vanishes mod 2" true
    (C.falling_terms (C.canonicalize ctx f) = []);
  Alcotest.(check bool) "equal to zero function" true
    (C.equal_functions ctx f P.zero)

let test_vanishing_16bit () =
  (* Y_18(x) * 2^0 vanishes over 16-bit arithmetic since 2^16 | 18! *)
  let m18 = y_mono [ ("x", 18) ] in
  Alcotest.(check bool) "term vanishes" true (C.vanishing_term ctx16 m18);
  Alcotest.(check bool) "Y17 does not vanish" false
    (C.vanishing_term ctx16 (y_mono [ ("x", 17) ]))

let test_term_modulus () =
  (* modulus of Y_2(x): 2^16 / gcd(2^16, 2) = 2^15 *)
  Alcotest.(check bool) "Y2 modulus" true
    (Z.equal (Z.pow2 15) (C.term_modulus ctx16 (y_mono [ ("x", 2) ])));
  Alcotest.(check bool) "constant modulus" true
    (Z.equal (Z.pow2 16) (C.term_modulus ctx16 Mono.one));
  (* Y_2(x) Y_2(y): gcd(2^16, 4) = 4 *)
  Alcotest.(check bool) "Y2Y2 modulus" true
    (Z.equal (Z.pow2 14) (C.term_modulus ctx16 (y_mono [ ("x", 2); ("y", 2) ])))

let test_coefficient_reduction () =
  (* 2^15 * Y_2(x) is the zero function over 16 bits:
     Y_2(x) is always even, so 2^15*Y_2(x) = 0 mod 2^16 *)
  let ctx = ctx16 in
  let f = P.mul_scalar (Z.pow2 15) (p "x^2 - x") in
  Alcotest.(check bool) "2^15*Y2 is zero" true (C.equal_functions ctx f P.zero)

(* property: the canonical form computes the same function ------------------- *)

let gen_poly =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 2) (pair (oneofl [ "x"; "y" ]) (int_range 1 4))
    >|= Mono.of_list
  in
  list_size (int_range 0 5) (pair (int_range (-50) 50) gen_mono)
  >|= fun terms ->
  P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) terms)

let arb_poly_points =
  QCheck.make
    QCheck.Gen.(triple gen_poly (int_range 0 255) (int_range 0 255))
    ~print:(fun (p0, a, b) -> Printf.sprintf "%s @ (%d,%d)" (P.to_string p0) a b)

let prop_canonical_preserves_function =
  let ctx = C.make_ctx ~out_width:8 ~var_widths:[ ("x", 8); ("y", 8) ] () in
  prop "canonical form preserves the function" ~count:300 arb_poly_points
    (fun (p0, a, b) ->
      let env v = if String.equal v "x" then Z.of_int a else Z.of_int b in
      let before = C.eval_mod ctx p0 env in
      let after = C.eval_mod ctx (C.canonical_poly ctx p0) env in
      Z.equal before after)

let prop_falling_roundtrip =
  prop "of_falling (to_falling p) = p" ~count:300
    (QCheck.make gen_poly ~print:P.to_string)
    (fun p0 -> P.equal p0 (C.of_falling (C.to_falling p0)))

let prop_canonical_idempotent =
  let ctx = C.make_ctx ~out_width:6 ~var_widths:[ ("x", 4); ("y", 4) ] () in
  prop "canonicalize is idempotent" ~count:300
    (QCheck.make gen_poly ~print:P.to_string)
    (fun p0 ->
      let c1 = C.canonical_poly ctx p0 in
      P.equal c1 (C.canonical_poly ctx c1))

let prop_equal_functions_exhaustive =
  (* over tiny rings, check the decision procedure against brute force *)
  let ctx = C.make_ctx ~out_width:3 ~var_widths:[ ("x", 2); ("y", 2) ] () in
  prop "equal_functions agrees with brute force" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_poly gen_poly)
       ~print:(fun (a, b) -> P.to_string a ^ " vs " ^ P.to_string b))
    (fun (a, b) ->
      let brute =
        List.for_all
          (fun x ->
            List.for_all
              (fun y ->
                let env v = if String.equal v "x" then Z.of_int x else Z.of_int y in
                Z.equal (C.eval_mod ctx a env) (C.eval_mod ctx b env))
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]
      in
      C.equal_functions ctx a b = brute)

let prop_to_falling_linear =
  prop "to_falling is linear" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_poly gen_poly)
       ~print:(fun (a, b) -> P.to_string a ^ " + " ^ P.to_string b))
    (fun (a, b) ->
      let fa = C.falling_terms (C.to_falling a) in
      let fb = C.falling_terms (C.to_falling b) in
      let fsum = C.falling_terms (C.to_falling (P.add a b)) in
      let add_falling =
        P.terms (P.add (P.of_terms fa) (P.of_terms fb))
      in
      fsum = add_falling)

let prop_mixed_widths_function_preserved =
  (* 4-bit x, 2-bit y, 6-bit output: exhaustive equivalence check *)
  let ctx = C.make_ctx ~out_width:6 ~var_widths:[ ("x", 4); ("y", 2) ] () in
  prop "mixed-width canonical preserves the function" ~count:100
    (QCheck.make gen_poly ~print:P.to_string)
    (fun p0 ->
      let c = C.canonical_poly ctx p0 in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              let env v = if String.equal v "x" then Z.of_int x else Z.of_int y in
              Z.equal (C.eval_mod ctx p0 env) (C.eval_mod ctx c env))
            [ 0; 1; 2; 3 ])
        (List.init 16 Fun.id))

let prop_canonical_coefficients_in_range =
  let ctx = C.make_ctx ~out_width:8 () in
  prop "canonical coefficients respect the term modulus" ~count:200
    (QCheck.make gen_poly ~print:P.to_string)
    (fun p0 ->
      List.for_all
        (fun (c, m) ->
          Z.sign c >= 0
          && Z.compare c (C.term_modulus ctx m) < 0
          && not (C.vanishing_term ctx m))
        (C.falling_terms (C.canonicalize ctx p0)))

let () =
  Alcotest.run "finite_ring"
    [
      ( "smarandache",
        [
          Alcotest.test_case "lambda table" `Quick test_lambda;
          Alcotest.test_case "lambda minimality" `Quick test_lambda_minimality;
          Alcotest.test_case "val2_factorial" `Quick test_val2_factorial;
        ] );
      ( "stirling",
        [
          Alcotest.test_case "second kind" `Quick test_stirling_second;
          Alcotest.test_case "first kind" `Quick test_stirling_first;
          Alcotest.test_case "mutually inverse" `Quick test_stirling_inverse;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "paper example F" `Quick test_falling_roundtrip_example;
          Alcotest.test_case "paper example G" `Quick test_falling_g_example;
          Alcotest.test_case "Chen function table" `Quick test_chen_example;
          Alcotest.test_case "mu and lambda" `Quick test_mu_lambda;
          Alcotest.test_case "vanishing polynomials" `Quick test_vanishing;
          Alcotest.test_case "vanishing at 16 bits" `Quick test_vanishing_16bit;
          Alcotest.test_case "term modulus" `Quick test_term_modulus;
          Alcotest.test_case "coefficient reduction" `Quick test_coefficient_reduction;
        ] );
      ( "properties",
        [
          prop_canonical_preserves_function;
          prop_falling_roundtrip;
          prop_canonical_idempotent;
          prop_equal_functions_exhaustive;
          prop_to_falling_linear;
          prop_mixed_widths_function_preserved;
          prop_canonical_coefficients_in_range;
        ] );
    ]
