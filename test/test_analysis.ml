(* Tests for the static-analysis layer: well-formedness, width soundness,
   equivalence certification (including the constructive counterexample
   over Z_2^m), redundancy lint, and the suite facade. *)

module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Canonical = Polysynth_finite_ring.Canonical
module Diag = Polysynth_analysis.Diag
module Wellformed = Polysynth_analysis.Wellformed
module Widths = Polysynth_analysis.Widths
module Equiv = Polysynth_analysis.Equiv
module Redundancy = Polysynth_analysis.Redundancy
module Suite = Polysynth_analysis.Suite
module Engine = Polysynth_engine.Engine
module B = Polysynth_workloads.Benchmarks

let poly s = List.hd (Parse.system_exn s)
let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diag.code) ds)
let has_code c ds = List.mem c (codes ds)

let env_of point v =
  match List.assoc_opt v point with Some x -> x | None -> Z.zero

(* ---- well-formedness --------------------------------------------------- *)

let test_wf_clean () =
  let prog =
    {
      Prog.bindings = [ ("d1", Expr.add [ Expr.var "x"; Expr.var "y" ]) ];
      outputs = [ ("P1", Expr.mul [ Expr.var "d1"; Expr.var "d1" ]) ];
    }
  in
  Alcotest.(check (list string)) "no findings" [] (codes (Wellformed.check_prog prog))

let test_wf_bad_prog () =
  let prog =
    {
      Prog.bindings =
        [
          ("a", Expr.var "b");  (* use before def *)
          ("b", Expr.var "x");
          ("b", Expr.var "y");  (* duplicate *)
          ("dead", Expr.var "x");  (* never used *)
        ];
      outputs = [ ("P1", Expr.var "a"); ("P1", Expr.var "b") ];
    }
  in
  let ds = Wellformed.check_prog prog in
  Alcotest.(check bool) "has errors" true (Diag.has_errors ds);
  List.iter
    (fun c -> Alcotest.(check bool) c true (has_code c ds))
    [
      "wf.use-before-def";
      "wf.duplicate-binding";
      "wf.duplicate-output";
      "wf.dead-binding";
    ]

let test_wf_bad_netlist () =
  let n =
    {
      Netlist.cells =
        [|
          { Netlist.id = 0; op = Netlist.Add2; fanin = [ 0; 5 ] };
        |];
      outputs = [ ("P1", 0); ("P1", 0) ];
      width = 8;
    }
  in
  let ds = Wellformed.check_netlist n in
  Alcotest.(check bool) "has errors" true (Diag.has_errors ds);
  List.iter
    (fun c -> Alcotest.(check bool) c true (has_code c ds))
    [ "wf.fanin-order"; "wf.fanin-range"; "wf.duplicate-output" ]

(* ---- width soundness --------------------------------------------------- *)

let test_widths_modes () =
  let n = Netlist.of_prog ~width:8 (Prog.of_exprs
    [ Expr.mul [ Expr.var "x"; Expr.var "y" ] ]) in
  let exact = Widths.check_netlist ~mode:Widths.Exact n in
  let ring = Widths.check_netlist ~mode:Widths.Ring n in
  Alcotest.(check bool) "overflow flagged" true (has_code "width.overflow" exact);
  Alcotest.(check bool) "exact mode warns" true
    (List.exists (fun d -> d.Diag.severity = Diag.Warning) exact);
  Alcotest.(check bool) "ring mode wraps" true (has_code "width.wrap" ring);
  Alcotest.(check bool) "ring mode stays info" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Info) ring);
  (* neither mode reaches Error severity: benchmarks must pass CI lint *)
  Alcotest.(check bool) "no errors" true
    (not (Diag.has_errors exact) && not (Diag.has_errors ring))

let test_widths_no_input_findings () =
  (* a bare input cannot overflow its own datapath *)
  let n = Netlist.of_prog ~width:8 (Prog.of_exprs [ Expr.var "x" ]) in
  Alcotest.(check (list string)) "no findings" []
    (codes (Widths.check_netlist ~mode:Widths.Exact n))

(* ---- equivalence certification ----------------------------------------- *)

let test_certify_verified () =
  let p = poly "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11" in
  let prog = Prog.of_exprs [ Expr.of_poly p ] in
  Alcotest.(check string) "verified" "verified"
    (Equiv.cert_label (Equiv.certify [ p ] prog))

let check_counterexample ?ctx p prog ce =
  (* the counterexample must actually witness the disagreement *)
  let env = env_of ce.Equiv.point in
  let expected =
    match ctx with
    | Some ctx -> Canonical.eval_mod ctx p env
    | None -> P.eval env p
  in
  Alcotest.(check string) "expected value recorded" (Z.to_string expected)
    (Z.to_string ce.Equiv.expected);
  let got =
    match List.assoc_opt ce.Equiv.output (Prog.eval prog env) with
    | None -> None
    | Some g ->
      Some
        (match ctx with
         | Some ctx -> Z.erem_pow2 g (Canonical.out_width ctx)
         | None -> g)
  in
  Alcotest.(check (option string)) "got value recorded"
    (Option.map Z.to_string got)
    (Option.map Z.to_string ce.Equiv.got);
  Alcotest.(check bool) "values actually disagree" true
    (match got with
     | None -> true
     | Some g -> not (Z.equal g expected))

let test_certify_refuted_exact () =
  (* hand-mutated decomposition: the constant term is off by one *)
  let p = poly "13*x^2 + 7*x + 11" in
  let bad = Prog.of_exprs [ Expr.of_poly (poly "13*x^2 + 7*x + 12") ] in
  match Equiv.certify [ p ] bad with
  | Equiv.Refuted ce -> check_counterexample p bad ce
  | c -> Alcotest.failf "expected Refuted, got %s" (Equiv.cert_to_string c)

let test_certify_constructive_ring_witness () =
  (* fault 4*x^2 - 4*x = 4*Y_2(x): zero at x in {0, 1} but 8 at x = 2
     modulo 2^4.  With samples:0 the random pre-filter is skipped, so the
     counterexample must come from the minimal-degree falling term of the
     canonical difference — the constructive witness x = 2. *)
  let ctx = Canonical.make_ctx ~out_width:4 () in
  let p = poly "x^3" in
  let bad = Prog.of_exprs [ Expr.of_poly (poly "x^3 + 4*x^2 - 4*x") ] in
  match Equiv.certify ~ctx ~samples:0 [ p ] bad with
  | Equiv.Refuted ce ->
    Alcotest.(check (list (pair string string)))
      "constructed point x=2"
      [ ("x", "2") ]
      (List.map (fun (v, x) -> (v, Z.to_string x)) ce.Equiv.point);
    check_counterexample ~ctx p bad ce
  | c -> Alcotest.failf "expected Refuted, got %s" (Equiv.cert_to_string c)

let test_certify_ring_vs_exact () =
  (* 8*x^2 - 8*x = 8*x*(x-1) is divisible by 16 for every integer x: a
     vanishing polynomial of Z_2^4, so the two sides are the same
     bit-vector function but different integer polynomials *)
  let ctx = Canonical.make_ctx ~out_width:4 () in
  let p = poly "x^3" in
  let prog = Prog.of_exprs [ Expr.of_poly (poly "x^3 + 8*x^2 - 8*x") ] in
  Alcotest.(check string) "ring: same function" "verified"
    (Equiv.cert_label (Equiv.certify ~ctx [ p ] prog));
  Alcotest.(check string) "exact: different polynomial" "refuted"
    (Equiv.cert_label (Equiv.certify [ p ] prog))

let test_certify_missing_output () =
  let p = poly "x + 1" in
  let prog =
    { Prog.bindings = []; outputs = [ ("Q1", Expr.var "x") ] }
  in
  match Equiv.certify [ p ] prog with
  | Equiv.Refuted ce ->
    Alcotest.(check string) "names the missing output" "P1" ce.Equiv.output;
    Alcotest.(check bool) "no value" true (ce.Equiv.got = None)
  | c -> Alcotest.failf "expected Refuted, got %s" (Equiv.cert_to_string c)

let test_certify_budget_unknown () =
  (* (x + y)^40 cubed via bindings: far beyond a tiny term budget *)
  let base = Expr.pow (Expr.add [ Expr.var "x"; Expr.var "y" ]) 40 in
  let prog =
    {
      Prog.bindings = [ ("d1", base) ];
      outputs = [ ("P1", Expr.pow (Expr.var "d1") 3) ];
    }
  in
  let p = List.assoc "P1" (Prog.to_polys prog) in
  match Equiv.certify ~size_budget:100 [ p ] prog with
  | Equiv.Unknown _ -> ()
  | c -> Alcotest.failf "expected Unknown, got %s" (Equiv.cert_to_string c)

let test_spot_check_netlist () =
  let p = poly "3*x*y + 5*x + 1" in
  let good = Netlist.of_prog ~width:8 (Prog.of_exprs [ Expr.of_poly p ]) in
  (match Equiv.spot_check_netlist [ p ] good with
   | Ok () -> ()
   | Error ce ->
     Alcotest.failf "good netlist refuted: %s"
       (Equiv.cert_to_string (Equiv.Refuted ce)));
  (* rewire the output to an input cell: a gross fault the sampler hits *)
  let bad = { good with Netlist.outputs = [ ("P1", 0) ] } in
  match Equiv.spot_check_netlist [ p ] bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted netlist passed the spot check"

(* ---- redundancy lint ---------------------------------------------------- *)

let test_lint_prog () =
  let xy = Expr.add [ Expr.var "x"; Expr.var "y" ] in
  let prog =
    {
      Prog.bindings =
        [ ("d1", xy); ("d2", xy); ("d3", Expr.var "d2") ];
      outputs = [ ("P1", Expr.mul [ Expr.var "d1"; Expr.var "d3" ]) ];
    }
  in
  let ds = Redundancy.lint_prog prog in
  Alcotest.(check bool) "duplicate found" true
    (has_code "lint.duplicate-binding" ds);
  Alcotest.(check bool) "trivial binding found" true
    (has_code "lint.trivial-binding" ds);
  Alcotest.(check bool) "single use found" true (has_code "lint.single-use" ds);
  Alcotest.(check bool) "nothing above warning" true (not (Diag.has_errors ds))

let test_lint_netlist () =
  let cell id op fanin = { Netlist.id; op; fanin } in
  let n =
    {
      Netlist.cells =
        [|
          cell 0 (Netlist.Input "x") [];
          cell 1 (Netlist.Input "y") [];
          cell 2 Netlist.Add2 [ 0; 1 ];
          cell 3 Netlist.Add2 [ 0; 1 ];  (* duplicate of 2 *)
          cell 4 (Netlist.Cmult Z.one) [ 2 ];  (* trivial, dead *)
        |];
      outputs = [ ("P1", 3) ];
      width = 8;
    }
  in
  let ds = Redundancy.lint_netlist n in
  List.iter
    (fun c -> Alcotest.(check bool) c true (has_code c ds))
    [ "lint.duplicate-cell"; "lint.dead-cell"; "lint.trivial-cell" ]

(* ---- suite -------------------------------------------------------------- *)

let test_suite_clean_exit () =
  let p = poly "7*x^2 + 3*x + 2" in
  let prog = Prog.of_exprs [ Expr.of_poly p ] in
  let cfg = { (Suite.default ~width:16) with Suite.system = Some [ p ] } in
  let r = Suite.analyze cfg prog in
  Alcotest.(check int) "exit 0" 0 (Suite.exit_code r);
  Alcotest.(check (option string)) "verified" (Some "verified")
    (Option.map Equiv.cert_label r.Suite.cert)

let test_suite_refuted_exit () =
  let p = poly "7*x^2 + 3*x + 2" in
  let bad = Prog.of_exprs [ Expr.of_poly (poly "7*x^2 + 3*x + 3") ] in
  let cfg = { (Suite.default ~width:16) with Suite.system = Some [ p ] } in
  Alcotest.(check int) "exit 2" 2 (Suite.exit_code (Suite.analyze cfg bad))

let test_suite_error_exit () =
  (* structurally broken program, lint only: exit 3, downstream skipped *)
  let prog =
    {
      Prog.bindings = [ ("a", Expr.var "a") ];
      outputs = [ ("P1", Expr.var "a") ];
    }
  in
  let cfg = { (Suite.default ~width:16) with Suite.check = false } in
  let r = Suite.analyze cfg prog in
  Alcotest.(check int) "exit 3" 3 (Suite.exit_code r);
  Alcotest.(check bool) "self-reference reported" true
    (has_code "wf.self-reference" r.Suite.wellformed);
  Alcotest.(check (list string)) "widths skipped" [] (codes r.Suite.widths)

(* ---- engine integration ------------------------------------------------- *)

let test_engine_reports_carry_certificates () =
  let polys = Parse.system_exn "5*x^2 + 3*x*y; x*y + 2*y" in
  let config =
    { (Engine.Config.default ~width:12) with Engine.Config.parallelism = 1 }
  in
  let reports, trace = Engine.compare_methods config polys in
  Alcotest.(check int) "four reports" 4 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Engine.method_label r.Engine.method_name ^ " verified")
        "verified"
        (Equiv.cert_label r.Engine.cert))
    reports;
  Alcotest.(check int) "four certificates in trace" 4
    (List.length trace.Engine.Trace.certificates)

let test_benchmarks_verify () =
  (* every shipped benchmark's synthesized decomposition must be Verified *)
  List.iter
    (fun (b : B.t) ->
      let config =
        {
          (Engine.Config.default ~width:b.B.width) with
          Engine.Config.parallelism = 1;
        }
      in
      let r, _ = Engine.synthesize config b.B.polys in
      Alcotest.(check string) (b.B.name ^ " verified") "verified"
        (Equiv.cert_label r.Engine.cert))
    (B.all ())

(* ---- abstract interpretation: soundness and precision ------------------ *)

module Domains = Polysynth_analysis.Domains
module Absint = Polysynth_analysis.Absint
module Simplify = Polysynth_analysis.Simplify
module Schedule = Polysynth_hw.Schedule
module Bind = Polysynth_hw.Bind
module Ex = Polysynth_workloads.Examples

let qprop name ?(count = 1000) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* Random well-formed netlists: three input cells followed by operator
   cells whose fanin only points backwards, the last cell the sole
   output.  Inputs are drawn inside [0, 2^width) so the pre-wrap
   Int_interval domain sees in-range inputs too. *)
let build_netlist width specs =
  let base =
    [
      { Netlist.id = 0; op = Netlist.Input "x"; fanin = [] };
      { Netlist.id = 1; op = Netlist.Input "y"; fanin = [] };
      { Netlist.id = 2; op = Netlist.Input "z"; fanin = [] };
    ]
  in
  let ops =
    List.mapi
      (fun i ((k, f1), (f2, c)) ->
        let id = 3 + i in
        let a = f1 mod id and b = f2 mod id in
        let op, fanin =
          match k with
          | 0 -> (Netlist.Constant (Z.of_int c), [])
          | 1 -> (Netlist.Negate, [ a ])
          | 2 -> (Netlist.Add2, [ a; b ])
          | 3 -> (Netlist.Sub2, [ a; b ])
          | 4 -> (Netlist.Mult2, [ a; b ])
          | 5 -> (Netlist.Cmult (Z.of_int c), [ a ])
          | _ -> (Netlist.Shl (abs c mod width), [ a ])
        in
        { Netlist.id; op; fanin })
      specs
  in
  let cells = Array.of_list (base @ ops) in
  { Netlist.cells; outputs = [ ("P1", Array.length cells - 1) ]; width }

let gen_rand_netlist =
  let open QCheck.Gen in
  let spec =
    pair
      (pair (int_range 0 6) (int_range 0 997))
      (pair (int_range 0 991) (int_range (-9) 9))
  in
  oneofl [ 4; 8 ] >>= fun width ->
  list_size (int_range 1 10) spec >>= fun specs ->
  triple (int_range 0 255) (int_range 0 255) (int_range 0 255)
  >>= fun env -> return (build_netlist width specs, env)

let arb_rand_netlist =
  QCheck.make gen_rand_netlist ~print:(fun ((n : Netlist.t), (x, y, z)) ->
      Printf.sprintf "width=%d env=(%d,%d,%d)\n%s" n.Netlist.width x y z
        (String.concat "\n"
           (Array.to_list
              (Array.map
                 (fun (c : Netlist.cell) ->
                   Printf.sprintf "  c%d %s <- [%s]" c.Netlist.id
                     (Netlist.op_to_string c.Netlist.op)
                     (String.concat ","
                        (List.map string_of_int c.Netlist.fanin)))
                 n.Netlist.cells))))

let env_fn ~width (x, y, z) v =
  let w n = Z.erem_pow2 (Z.of_int n) width in
  match v with "x" -> w x | "y" -> w y | _ -> w z

(* per-cell concrete values; [clamp = false] is the exact pre-wrap
   evaluation Int_interval abstracts *)
let eval_cells ~clamp (n : Netlist.t) envf =
  let vals = Array.make (Array.length n.Netlist.cells) Z.zero in
  Array.iter
    (fun (c : Netlist.cell) ->
      let arg k = vals.(List.nth c.Netlist.fanin k) in
      let v =
        match c.Netlist.op with
        | Netlist.Input v -> envf v
        | Netlist.Constant k -> k
        | Netlist.Negate -> Z.neg (arg 0)
        | Netlist.Add2 -> Z.add (arg 0) (arg 1)
        | Netlist.Sub2 -> Z.sub (arg 0) (arg 1)
        | Netlist.Mult2 -> Z.mul (arg 0) (arg 1)
        | Netlist.Cmult k -> Z.mul k (arg 0)
        | Netlist.Shl s -> Z.mul (Z.pow2 s) (arg 0)
      in
      vals.(c.Netlist.id) <-
        (if clamp then Z.erem_pow2 v n.Netlist.width else v))
    n.Netlist.cells;
  vals

(* soundness: whatever a cell concretely evaluates to is inside the fact
   the analysis infers for it *)
let prop_domain_sound name dom ~clamp =
  qprop ("soundness: " ^ name) arb_rand_netlist (fun (n, env) ->
      let module D = (val dom : Domains.DOMAIN) in
      let module A = Absint.Make (D) in
      let width = n.Netlist.width in
      let facts = A.analyze n in
      let vals = eval_cells ~clamp n (env_fn ~width env) in
      let ok = ref true in
      Array.iteri
        (fun i v -> if not (D.contains ~width facts.(i) v) then ok := false)
        vals;
      !ok)

(* the reduced product is at least as precise as each factor analysis *)
let prop_product_precision =
  qprop "product at least as precise as factors" arb_rand_netlist
    (fun (n, _env) ->
      let pf = Absint.analyze_product n in
      let module AI = Absint.Make (Domains.Interval) in
      let module AK = Absint.Make (Domains.Known_bits) in
      let module AC = Absint.Make (Domains.Congruence) in
      let fi = AI.analyze n
      and fk = AK.analyze n
      and fc = AC.analyze n in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          if
            not
              (Domains.Interval.leq (Domains.Product.interval p) fi.(i)
              && Domains.Known_bits.leq (Domains.Product.known_bits p) fk.(i)
              && Domains.Congruence.leq (Domains.Product.congruence p) fc.(i))
          then ok := false)
        pf;
      !ok)

(* ---- certificate-guarded simplification -------------------------------- *)

(* the guarded pass must preserve the bit-accurate semantics of every
   output, whatever it decides to do *)
let prop_simplify_preserves =
  qprop "simplify preserves netlist semantics" ~count:60 arb_rand_netlist
    (fun (n, env) ->
      let width = n.Netlist.width in
      let o = Simplify.run n in
      let envf = env_fn ~width env in
      let before = Netlist.eval n envf in
      let after = Netlist.eval o.Simplify.netlist envf in
      List.for_all2
        (fun (nm, v) (nm', v') -> nm = nm' && Z.equal v v')
        before after)

let test_simplify_identity_and_prune () =
  (* x + 0 with two dead inputs: the add is forwarded to x, everything
     unreachable is pruned *)
  let n =
    build_netlist 8 [ ((0, 0), (0, 0)) (* c3 = const 0 *) ] |> fun n ->
    {
      n with
      Netlist.cells =
        Array.append n.Netlist.cells
          [| { Netlist.id = 4; op = Netlist.Add2; fanin = [ 0; 3 ] } |];
      outputs = [ ("P1", 4) ];
    }
  in
  let o = Simplify.run n in
  Alcotest.(check int) "one rewrite applied" 1
    o.Simplify.stats.Simplify.applied;
  Alcotest.(check bool) "cells eliminated" true
    (Simplify.cells_eliminated o > 0);
  let envf = env_fn ~width:8 (57, 0, 0) in
  Alcotest.(check bool) "still computes x" true
    (List.for_all2
       (fun (nm, v) (nm', v') -> nm = nm' && Z.equal v v')
       (Netlist.eval n envf)
       (Netlist.eval o.Simplify.netlist envf))

let test_simplify_strength_reduction () =
  (* 4*x becomes a shift; the rewrite carries a certificate *)
  let prog =
    {
      Prog.bindings = [];
      outputs =
        [ ("P1", Expr.mul [ Expr.int 4; Expr.var "x"; Expr.var "y" ]) ];
    }
  in
  let n = Netlist.of_prog ~width:8 prog in
  let o = Simplify.run ~system:[ ("P1", poly "4*x*y") ] n in
  Alcotest.(check bool) "applied a rewrite" true
    (o.Simplify.stats.Simplify.applied > 0);
  Alcotest.(check bool) "spent a certificate" true
    (o.Simplify.stats.Simplify.certificates > 0);
  Alcotest.(check bool) "a shift appears" true
    (Array.exists
       (fun (c : Netlist.cell) ->
         match c.Netlist.op with Netlist.Shl _ -> true | _ -> false)
       o.Simplify.netlist.Netlist.cells)

let test_simplify_unsound_rewrite_refuted () =
  (* lie to the pass: hand-crafted facts claim x + y is the constant 0,
     so it proposes folding the output; the certificate must refute the
     proposal and nothing may be applied *)
  let prog =
    {
      Prog.bindings = [];
      outputs = [ ("P1", Expr.add [ Expr.var "x"; Expr.var "y" ]) ];
    }
  in
  let width = 8 in
  let n = Netlist.of_prog ~width prog in
  let facts =
    Array.map (fun _ -> Domains.Product.top ~width) n.Netlist.cells
  in
  let out_id = List.assoc "P1" n.Netlist.outputs in
  facts.(out_id) <- Domains.Product.const ~width Z.zero;
  let o = Simplify.run ~system:[ ("P1", poly "x + y") ] ~facts n in
  Alcotest.(check int) "nothing applied" 0 o.Simplify.stats.Simplify.applied;
  Alcotest.(check bool) "the lie was refuted" true
    (List.exists
       (fun (_, c) -> match c with Equiv.Refuted _ -> true | _ -> false)
       o.Simplify.rejected);
  Alcotest.(check bool) "surfaced as simplify.unsound error" true
    (has_code "simplify.unsound" (Simplify.diags_of_outcome o));
  Alcotest.(check bool) "which is error severity" true
    (Diag.has_errors (Simplify.diags_of_outcome o))

(* ---- scheduler/binder cross-check --------------------------------------- *)

let example_systems =
  [
    ("table_14_1", Ex.table_14_1, 16);
    ("table_14_2", Ex.table_14_2, 16);
    ("section_14_3_1", [ Ex.section_14_3_1_f; Ex.section_14_3_1_g ], 16);
    ("section_14_4_1", [ Ex.section_14_4_1 ], 16);
    ("section_14_4_2", Ex.section_14_4_2, 12);
    ("coeff_factoring", [ Ex.coefficient_factoring_motivation ], 12);
  ]

let test_bind_consistent_on_examples () =
  List.iter
    (fun (name, polys, width) ->
      let config =
        {
          (Engine.Config.default ~width) with
          Engine.Config.parallelism = 1;
          certify = false;
        }
      in
      let r, _ = Engine.synthesize config polys in
      let n = Netlist.of_prog ~width r.Engine.prog in
      let res = { Schedule.multipliers = 1; adders = 1 } in
      match Schedule.list_schedule res n with
      | Error (`No_progress np) ->
        Alcotest.fail (name ^ ": scheduler stuck: " ^ np.Schedule.message)
      | Ok s ->
        Alcotest.(check bool) (name ^ ": schedule valid") true
          (Schedule.is_valid res n s);
        let b = Bind.bind res n s in
        Alcotest.(check bool) (name ^ ": binding consistent") true
          (Bind.is_consistent n s b))
    example_systems

let test_suite_binding_pass_and_exit_code () =
  (* the default suite runs the cross-check and reports nothing on a
     healthy program ... *)
  let prog =
    {
      Prog.bindings = [ ("d1", Expr.add [ Expr.var "x"; Expr.var "y" ]) ];
      outputs = [ ("P1", Expr.mul [ Expr.var "d1"; Expr.var "d1" ]) ];
    }
  in
  let r = Suite.analyze (Suite.default ~width:8) prog in
  Alcotest.(check (list string)) "no binding findings" [] (codes r.Suite.binding);
  (* ... and a bind.* error maps to exit code 4, taking precedence over
     the generic error exit but not over a failed certificate *)
  let broken =
    {
      r with
      Suite.binding =
        [ Diag.error ~code:"bind.inconsistent" Diag.Program "injected" ];
      cert = Some Equiv.Verified;
    }
  in
  Alcotest.(check int) "bind error exits 4" 4 (Suite.exit_code broken);
  let refuted_too =
    {
      broken with
      Suite.cert =
        Some
          (Equiv.Refuted
             {
               Equiv.output = "P1";
               point = [];
               expected = Z.zero;
               got = Some Z.one;
             });
    }
  in
  Alcotest.(check int) "refuted certificate still exits 2" 2
    (Suite.exit_code refuted_too)

let () =
  Alcotest.run "analysis"
    [
      ( "wellformed",
        [
          Alcotest.test_case "clean program" `Quick test_wf_clean;
          Alcotest.test_case "broken program" `Quick test_wf_bad_prog;
          Alcotest.test_case "broken netlist" `Quick test_wf_bad_netlist;
        ] );
      ( "widths",
        [
          Alcotest.test_case "exact warns, ring informs" `Quick
            test_widths_modes;
          Alcotest.test_case "inputs never flagged" `Quick
            test_widths_no_input_findings;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "verified" `Quick test_certify_verified;
          Alcotest.test_case "injected fault refuted" `Quick
            test_certify_refuted_exact;
          Alcotest.test_case "constructive ring witness" `Quick
            test_certify_constructive_ring_witness;
          Alcotest.test_case "ring vs exact semantics" `Quick
            test_certify_ring_vs_exact;
          Alcotest.test_case "missing output" `Quick test_certify_missing_output;
          Alcotest.test_case "budget exhaustion is Unknown" `Quick
            test_certify_budget_unknown;
          Alcotest.test_case "netlist spot check" `Quick test_spot_check_netlist;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "program lint" `Quick test_lint_prog;
          Alcotest.test_case "netlist lint" `Quick test_lint_netlist;
        ] );
      ( "suite",
        [
          Alcotest.test_case "clean exit" `Quick test_suite_clean_exit;
          Alcotest.test_case "refuted exit" `Quick test_suite_refuted_exit;
          Alcotest.test_case "error exit" `Quick test_suite_error_exit;
        ] );
      ( "absint",
        [
          prop_domain_sound "int-interval (pre-wrap)"
            (module Domains.Int_interval : Domains.DOMAIN)
            ~clamp:false;
          prop_domain_sound "wrap interval"
            (module Domains.Interval : Domains.DOMAIN)
            ~clamp:true;
          prop_domain_sound "known bits"
            (module Domains.Known_bits : Domains.DOMAIN)
            ~clamp:true;
          prop_domain_sound "congruence"
            (module Domains.Congruence : Domains.DOMAIN)
            ~clamp:true;
          prop_domain_sound "reduced product"
            (module Domains.Product : Domains.DOMAIN)
            ~clamp:true;
          prop_product_precision;
        ] );
      ( "simplify",
        [
          prop_simplify_preserves;
          Alcotest.test_case "identity forwarding + prune" `Quick
            test_simplify_identity_and_prune;
          Alcotest.test_case "strength reduction certified" `Quick
            test_simplify_strength_reduction;
          Alcotest.test_case "unsound rewrite refuted" `Quick
            test_simplify_unsound_rewrite_refuted;
        ] );
      ( "bind",
        [
          Alcotest.test_case "examples schedule and bind" `Slow
            test_bind_consistent_on_examples;
          Alcotest.test_case "suite cross-check and exit code" `Quick
            test_suite_binding_pass_and_exit_code;
        ] );
      ( "integration",
        [
          Alcotest.test_case "compare_methods certificates" `Quick
            test_engine_reports_carry_certificates;
          Alcotest.test_case "benchmarks verify" `Slow test_benchmarks_verify;
        ] );
    ]
