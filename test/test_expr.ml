module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module Mono = Polysynth_poly.Monomial
module E = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let expr = Alcotest.testable E.pp E.equal

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* generators ------------------------------------------------------------------ *)

let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [ map E.int (int_range (-9) 9);
                map E.var (oneofl [ "x"; "y"; "z" ]) ]
          else
            oneof
              [
                map E.var (oneofl [ "x"; "y"; "z" ]);
                map E.int (int_range (-9) 9);
                map E.neg (self (n - 1));
                map2
                  (fun a b -> E.add [ a; b ])
                  (self (n / 2)) (self (n / 2));
                map2 (fun a b -> E.sub a b) (self (n / 2)) (self (n / 2));
                map2
                  (fun a b -> E.mul [ a; b ])
                  (self (n / 2)) (self (n / 2));
                map2 (fun e k -> E.pow e k) (self (n / 2)) (int_range 0 3);
              ])
        (min n 12))

let arb_expr = QCheck.make gen_expr ~print:E.to_string

let gen_env =
  QCheck.Gen.(
    map
      (fun (a, b, c) -> [ ("x", a); ("y", b); ("z", c) ])
      (triple (int_range (-8) 8) (int_range (-8) 8) (int_range (-8) 8)))

let env_fn bindings v =
  match List.assoc_opt v bindings with Some n -> Z.of_int n | None -> Z.zero

let arb_expr_env =
  QCheck.make QCheck.Gen.(pair gen_expr gen_env) ~print:(fun (e, _) -> E.to_string e)

(* normalization ---------------------------------------------------------------- *)

let test_constructors () =
  Alcotest.check expr "add flattens"
    (E.add [ E.var "x"; E.var "y"; E.var "z" ])
    (E.add [ E.add [ E.var "x"; E.var "y" ]; E.var "z" ]);
  Alcotest.check expr "consts fold"
    (E.int 5)
    (E.add [ E.int 2; E.int 3 ]);
  Alcotest.check expr "mul by zero" E.zero (E.mul [ E.var "x"; E.zero ]);
  Alcotest.check expr "mul by one" (E.var "x") (E.mul [ E.var "x"; E.one ]);
  Alcotest.check expr "double neg" (E.var "x") (E.neg (E.neg (E.var "x")));
  Alcotest.check expr "pow 1" (E.var "x") (E.pow (E.var "x") 1);
  Alcotest.check expr "pow 0" E.one (E.pow (E.var "x") 0);
  Alcotest.check expr "pow of pow" (E.pow (E.var "x") 6)
    (E.pow (E.pow (E.var "x") 2) 3);
  Alcotest.check expr "sign pulled out of product"
    (E.neg (E.mul [ E.var "x"; E.int 3 ]))
    (E.mul [ E.var "x"; E.int (-3) ]);
  Alcotest.check expr "repeated factors group"
    (E.mul [ E.pow (E.var "x") 2; E.var "y" ])
    (E.mul [ E.var "x"; E.var "y"; E.var "x" ])

let test_commutativity_normal_form () =
  Alcotest.check expr "add commutes structurally"
    (E.add [ E.var "x"; E.var "y" ])
    (E.add [ E.var "y"; E.var "x" ]);
  Alcotest.check expr "mul commutes structurally"
    (E.mul [ E.var "x"; E.var "y" ])
    (E.mul [ E.var "y"; E.var "x" ])

let test_pp () =
  let check name s e = Alcotest.(check string) name s (E.to_string e) in
  check "sum" "x + y" (E.add [ E.var "x"; E.var "y" ]);
  check "sub" "x - y" (E.sub (E.var "x") (E.var "y"));
  check "mul const last" "x*3" (E.mul [ E.int 3; E.var "x" ]);
  check "pow of sum" "(x + y)^2" (E.pow (E.add [ E.var "x"; E.var "y" ]) 2);
  check "mul of sums" "(x + y)*(x - y)"
    (E.mul [ E.add [ E.var "x"; E.var "y" ]; E.sub (E.var "x") (E.var "y") ])

(* conversions ------------------------------------------------------------------ *)

let test_of_poly_roundtrip () =
  let cases =
    [ "x^2 + 6*x*y + 9*y^2"; "4*x*y^2 + 12*y^3"; "0"; "7"; "-x + 1" ]
  in
  List.iter
    (fun s -> Alcotest.check poly s (p s) (E.to_poly (E.of_poly (p s))))
    cases

let test_to_poly_factored () =
  Alcotest.check poly "13*(x+y)^2 + 7*(x-y) + 11"
    (p "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11")
    (E.to_poly
       (E.add
          [ E.mul [ E.int 13; E.pow (E.add [ E.var "x"; E.var "y" ]) 2 ];
            E.mul [ E.int 7; E.sub (E.var "x") (E.var "y") ];
            E.int 11 ]))

(* dag and cost counting ---------------------------------------------------------- *)

let table_14_1_direct =
  List.map
    (fun s -> E.of_poly (p s))
    [ "x^2 + 6*x*y + 9*y^2"; "4*x*y^2 + 12*y^3"; "2*x^2*z + 6*x*y*z" ]

let test_tree_counts_table_14_1 () =
  (* the paper's "direct implementation": 17 multipliers, 4 adders *)
  let total =
    List.fold_left
      (fun acc e ->
        let c = Dag.tree_counts e in
        Dag.{ mults = acc.mults + c.mults;
              const_mults = acc.const_mults + c.const_mults;
              adds = acc.adds + c.adds })
      Dag.zero_counts table_14_1_direct
  in
  Alcotest.(check int) "17 MULT" 17 total.Dag.mults;
  Alcotest.(check int) "4 ADD" 4 total.Dag.adds

let proposed_14_1 =
  (* d1 = x + 3y; P1 = d1^2; P2 = 4y^2*d1; P3 = 2xz*d1 *)
  Prog.
    {
      bindings =
        [ ("d1", E.add [ E.var "x"; E.mul [ E.int 3; E.var "y" ] ]) ];
      outputs =
        [
          ("P1", E.pow (E.var "d1") 2);
          ("P2", E.mul [ E.int 4; E.pow (E.var "y") 2; E.var "d1" ]);
          ("P3", E.mul [ E.int 2; E.var "x"; E.var "z"; E.var "d1" ]);
        ];
    }

let test_dag_counts_proposed_14_1 () =
  (* the paper's proposed decomposition: 8 multipliers, 1 adder *)
  let c = Prog.counts proposed_14_1 in
  Alcotest.(check int) "8 MULT" 8 c.Dag.mults;
  Alcotest.(check int) "1 ADD" 1 c.Dag.adds

let test_proposed_14_1_correct () =
  let polys = Prog.to_polys proposed_14_1 in
  Alcotest.check poly "P1" (p "x^2 + 6*x*y + 9*y^2") (List.assoc "P1" polys);
  Alcotest.check poly "P2" (p "4*x*y^2 + 12*y^3") (List.assoc "P2" polys);
  Alcotest.check poly "P3" (p "2*x^2*z + 6*x*y*z") (List.assoc "P3" polys)

let test_dag_sharing () =
  (* x*y + x*y costs one multiplication and one addition after CSE *)
  let dag = Dag.create () in
  let e = E.add [ E.mul [ E.var "x"; E.var "y" ]; E.mul [ E.var "y"; E.var "x" ] ] in
  ignore (Dag.add_expr dag e);
  (* the smart constructor already folds this to 2*x*y; check at dag level
     with two separately-built expressions instead *)
  let dag = Dag.create () in
  let a = Dag.add_expr dag (E.mul [ E.var "x"; E.var "y"; E.int 3 ]) in
  let b = Dag.add_expr dag (E.mul [ E.var "x"; E.var "y"; E.int 5 ]) in
  let c = Dag.counts dag ~roots:[ a; b ] in
  (* x*y shared; two constant mults on top *)
  Alcotest.(check int) "3 mults" 3 c.Dag.mults;
  Alcotest.(check int) "2 const mults" 2 c.Dag.const_mults

let test_power_prefix_sharing () =
  let dag = Dag.create () in
  let a = Dag.add_expr dag (E.pow (E.var "y") 2) in
  let b = Dag.add_expr dag (E.pow (E.var "y") 3) in
  let c = Dag.counts dag ~roots:[ a; b ] in
  (* y^2 = y*y, y^3 = y^2*y: two mults total *)
  Alcotest.(check int) "2 mults" 2 c.Dag.mults

let test_dag_eval () =
  let dag = Dag.create () in
  let e = E.sub (E.mul [ E.var "x"; E.var "y" ]) (E.int 5) in
  let id = Dag.add_expr dag e in
  let env v = if String.equal v "x" then Z.of_int 6 else Z.of_int 7 in
  Alcotest.(check int) "6*7-5" 37 (Z.to_int_exn (Dag.eval dag env id))

(* program ------------------------------------------------------------------------- *)

let test_prog_eval () =
  let results =
    Prog.eval proposed_14_1 (fun v ->
        match v with
        | "x" -> Z.of_int 2
        | "y" -> Z.of_int 1
        | "z" -> Z.of_int 3
        | _ -> Z.zero)
  in
  (* d1 = 5; P1 = 25; P2 = 4*1*5 = 20; P3 = 2*2*3*5 = 60 *)
  Alcotest.(check int) "P1" 25 (Z.to_int_exn (List.assoc "P1" results));
  Alcotest.(check int) "P2" 20 (Z.to_int_exn (List.assoc "P2" results));
  Alcotest.(check int) "P3" 60 (Z.to_int_exn (List.assoc "P3" results))

let test_rename_fresh () =
  let renamed = Prog.rename_fresh ~prefix:"blk_" proposed_14_1 in
  Alcotest.(check string) "binding renamed" "blk_d1" (fst (List.hd renamed.Prog.bindings));
  let polys = Prog.to_polys renamed in
  Alcotest.check poly "still correct" (p "x^2 + 6*x*y + 9*y^2")
    (List.assoc "P1" polys)

(* program parsing --------------------------------------------------------------- *)

module PP = Polysynth_expr.Prog_parse

let test_prog_parse_basic () =
  let prog =
    PP.program_exn
      "d1 = x + 3*y  # block\nP1 = d1^2; P2 = 4*y^2*d1\nP3 = 2*x*z*d1"
  in
  Alcotest.(check int) "one binding" 1 (List.length prog.Prog.bindings);
  Alcotest.(check int) "three outputs" 3 (List.length prog.Prog.outputs);
  let polys = Prog.to_polys prog in
  Alcotest.check poly "P1 expands" (p "x^2 + 6*x*y + 9*y^2")
    (List.assoc "P1" polys)

let test_prog_parse_chained_bindings () =
  let prog = PP.program_exn "a = x + 1\nb = a*a\nout = b + a" in
  Alcotest.(check int) "two bindings" 2 (List.length prog.Prog.bindings);
  Alcotest.check poly "expansion" (p "x^2 + 3*x + 2")
    (List.assoc "out" (Prog.to_polys prog))

let test_prog_parse_errors () =
  let bad s sub =
    match PP.program s with
    | Error (`Parse msg) ->
      Alcotest.(check bool) (s ^ " mentions " ^ sub) true
        (let rec contains i =
           i + String.length sub <= String.length msg
           && (String.sub msg i (String.length sub) = sub || contains (i + 1))
         in
         contains 0)
    | Ok _ -> Alcotest.fail ("expected error for " ^ s)
  in
  bad "x + 1" "missing '='";
  bad "a = x\na = y\nz = a" "duplicate";
  bad "a = b + 1\nb = x\nout = a + b" "forward reference";
  bad "" "empty";
  bad "1bad = x\nout = 1bad" "bad definition name"

(* properties ------------------------------------------------------------------------ *)

let prop_eval_matches_poly =
  prop "Expr.eval = Poly.eval after to_poly" arb_expr_env (fun (e, env) ->
      Z.equal (E.eval (env_fn env) e) (P.eval (env_fn env) (E.to_poly e)))

let prop_dag_eval_matches =
  prop "Dag.eval = Expr.eval" arb_expr_env (fun (e, env) ->
      let dag = Dag.create () in
      let id = Dag.add_expr dag e in
      Z.equal (Dag.eval dag (env_fn env) id) (E.eval (env_fn env) e))

let prop_of_poly_exact =
  prop "of_poly/to_poly identity" arb_expr (fun e ->
      let q = E.to_poly e in
      P.equal q (E.to_poly (E.of_poly q)))

let prop_dag_counts_at_most_tree =
  prop "sharing never increases cost" arb_expr (fun e ->
      let dag = Dag.create () in
      let id = Dag.add_expr dag e in
      let shared = Dag.counts dag ~roots:[ id ] in
      let tree = Dag.tree_counts e in
      Dag.total_ops shared <= Dag.total_ops tree)

let prop_pp_parses_to_same_poly =
  prop "pretty output parses to the same polynomial" arb_expr (fun e ->
      P.equal (E.to_poly e) (Parse.poly_exn (E.to_string e)))

let prop_subst_identity =
  prop "identity substitution is identity" arb_expr (fun e ->
      E.equal e (E.subst (fun _ -> None) e))

let prop_vars_sound =
  prop "eval only depends on reported vars" arb_expr_env (fun (e, env) ->
      let vs = E.vars e in
      let masked v =
        if List.mem v vs then env_fn env v else Z.of_int 999
      in
      Z.equal (E.eval (env_fn env) e) (E.eval masked e))

let prop_size_positive =
  prop "size >= 1" arb_expr (fun e -> E.size e >= 1)

let prop_tree_counts_nonnegative =
  prop "tree counts are non-negative" arb_expr (fun e ->
      let c = Dag.tree_counts e in
      c.Dag.mults >= 0 && c.Dag.adds >= 0 && c.Dag.const_mults <= c.Dag.mults)

let prop_compare_total_order =
  prop "compare is a total order" QCheck.(pair arb_expr arb_expr)
    (fun (a, b) ->
      let c1 = E.compare a b and c2 = E.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let () =
  Alcotest.run "expr"
    [
      ( "normalization",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "commutative normal form" `Quick
            test_commutativity_normal_form;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "conversions",
        [
          Alcotest.test_case "of_poly roundtrip" `Quick test_of_poly_roundtrip;
          Alcotest.test_case "factored to_poly" `Quick test_to_poly_factored;
        ] );
      ( "cost",
        [
          Alcotest.test_case "Table 14.1 direct = 17/4" `Quick
            test_tree_counts_table_14_1;
          Alcotest.test_case "Table 14.1 proposed = 8/1" `Quick
            test_dag_counts_proposed_14_1;
          Alcotest.test_case "proposed 14.1 is correct" `Quick
            test_proposed_14_1_correct;
          Alcotest.test_case "dag sharing" `Quick test_dag_sharing;
          Alcotest.test_case "power prefix sharing" `Quick
            test_power_prefix_sharing;
          Alcotest.test_case "dag eval" `Quick test_dag_eval;
        ] );
      ( "program",
        [
          Alcotest.test_case "eval" `Quick test_prog_eval;
          Alcotest.test_case "rename_fresh" `Quick test_rename_fresh;
          Alcotest.test_case "parse basic" `Quick test_prog_parse_basic;
          Alcotest.test_case "parse chained" `Quick test_prog_parse_chained_bindings;
          Alcotest.test_case "parse errors" `Quick test_prog_parse_errors;
        ] );
      ( "properties",
        [
          prop_eval_matches_poly;
          prop_dag_eval_matches;
          prop_of_poly_exact;
          prop_dag_counts_at_most_tree;
          prop_pp_parses_to_same_poly;
          prop_subst_identity;
          prop_vars_sound;
          prop_size_positive;
          prop_tree_counts_nonnegative;
          prop_compare_total_order;
        ] );
    ]
