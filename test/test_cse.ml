module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Mono = Polysynth_poly.Monomial
module Parse = Polysynth_poly.Parse
module K = Polysynth_cse.Kernel
module X = Polysynth_cse.Extract
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog
module E = Polysynth_expr.Expr

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let mono = Alcotest.testable Mono.pp Mono.equal

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* kernels ------------------------------------------------------------------- *)

let test_largest_cube () =
  Alcotest.check mono "abc" (Mono.of_list [ ("a", 1); ("b", 1); ("c", 1) ])
    (K.largest_cube (p "4*a*b*c - 3*a^2*b^2*c"));
  Alcotest.check mono "none" Mono.one (K.largest_cube (p "x + y"));
  Alcotest.check mono "zero poly" Mono.one (K.largest_cube P.zero)

let test_cube_free () =
  Alcotest.(check bool) "x+y cube free" true (K.is_cube_free (p "x + y"));
  Alcotest.(check bool) "xy+xz not" false (K.is_cube_free (p "x*y + x*z"));
  Alcotest.check poly "cube free part" (p "4 - 3*a*b")
    (K.cube_free_part (p "4*a*b*c - 3*a^2*b^2*c"))

let test_divide_cube () =
  Alcotest.check poly "P/abc" (p "4 - 3*a*b")
    (K.divide_cube (p "4*a*b*c - 3*a^2*b^2*c")
       (Mono.of_list [ ("a", 1); ("b", 1); ("c", 1) ]));
  Alcotest.check poly "partial" (p "x")
    (K.divide_cube (p "x*y + z") (Mono.var "y"))

let test_paper_kernel_example () =
  (* Section 14.2.1: P = 4abc - 3a^2b^2c, kernel 4 - 3ab, co-kernel abc *)
  let ks = K.kernels (p "4*a*b*c - 3*a^2*b^2*c") in
  Alcotest.(check bool) "has (abc, 4-3ab)" true
    (List.exists
       (fun (ck, k) ->
         Mono.equal ck (Mono.of_list [ ("a", 1); ("b", 1); ("c", 1) ])
         && P.equal k (p "4 - 3*a*b"))
       ks)

let test_section_14_4_2_kernels () =
  (* P1 = x^2y + xyz -> (xy, x + z); P2 = ab^2c^3 + b^2c^2x -> (b^2c^2, ac + x);
     P3 = axz + x^2z^2b -> (xz, a + xzb) *)
  let has pstr ck_list kstr =
    let ks = K.kernels (p pstr) in
    List.exists
      (fun (ck, k) ->
        Mono.equal ck (Mono.of_list ck_list) && P.equal k (p kstr))
      ks
  in
  Alcotest.(check bool) "P1" true (has "x^2*y + x*y*z" [ ("x", 1); ("y", 1) ] "x + z");
  Alcotest.(check bool) "P2" true
    (has "a*b^2*c^3 + b^2*c^2*x" [ ("b", 2); ("c", 2) ] "a*c + x");
  Alcotest.(check bool) "P3" true
    (has "a*x*z + x^2*z^2*b" [ ("x", 1); ("z", 1) ] "a + x*z*b")

let test_kernels_are_kernels () =
  (* definition check on a richer polynomial *)
  let q = p "x^2*y + x*y^2 + x*y*z + 3*x^2*y^2*z" in
  let ks = K.kernels q in
  Alcotest.(check bool) "some kernels" true (List.length ks > 0);
  List.iter
    (fun (ck, k) ->
      Alcotest.(check bool) "cube free" true (K.is_cube_free k);
      Alcotest.(check bool) ">= 2 terms" true (P.num_terms k >= 2);
      (* co-kernel * kernel terms all appear in q *)
      List.iter
        (fun (c, m) ->
          Alcotest.(check bool) "term in q" true
            (Z.equal (P.coeff q (Mono.mul ck m)) c))
        (P.terms k))
    ks

let test_kernels_univariate_powers () =
  (* x^2 co-kernels require revisiting the same literal *)
  let ks = K.kernels (p "x^2*y + x^2*z + x^3") in
  Alcotest.(check bool) "co-kernel x^2" true
    (List.exists
       (fun (ck, k) ->
         Mono.equal ck (Mono.of_list [ ("x", 2) ]) && P.equal k (p "y + z + x"))
       ks)

(* extraction ----------------------------------------------------------------- *)

let table_14_1 =
  [ p "x^2 + 6*x*y + 9*y^2"; p "4*x*y^2 + 12*y^3"; p "2*x^2*z + 6*x*y*z" ]

let check_prog_correct original result =
  let polys = Prog.to_polys result.X.prog in
  List.iteri
    (fun i q ->
      Alcotest.check poly
        (Printf.sprintf "output %d expands back" (i + 1))
        q
        (List.assoc (Printf.sprintf "P%d" (i + 1)) polys))
    original

let test_extract_table_14_1 () =
  let result = X.run ~mode:X.Coeff_literals table_14_1 in
  check_prog_correct table_14_1 result;
  let c = Prog.counts result.X.prog in
  (* the paper's factoring + CSE baseline reaches 12 MULT / 4 ADD *)
  Alcotest.(check bool)
    (Printf.sprintf "mults %d <= 12" c.Dag.mults)
    true (c.Dag.mults <= 12);
  Alcotest.(check bool)
    (Printf.sprintf "adds %d <= 4" c.Dag.adds)
    true (c.Dag.adds <= 4);
  (* but it must not beat the proposed method's 8/1: kernel/co-kernel
     factoring alone cannot find (x + 3y)^2 *)
  Alcotest.(check bool) "cannot reach 8" true (c.Dag.mults > 8)

let test_extract_vars_only_coefficients_opaque () =
  (* the coefficient-factoring limitation: 5x^2 + 10y^3 + 15pq has no cube
     or kernel structure, so [13]-style extraction changes nothing *)
  let system = [ p "5*x^2 + 10*y^3 + 15*q*w" ] in
  let result = X.run ~mode:X.Coeff_literals system in
  check_prog_correct system result;
  Alcotest.(check int) "no blocks" 0 (List.length result.X.blocks)

let test_extract_shared_kernel () =
  (* (x + z) shared through co-kernels xy and ab *)
  let system = [ p "x^2*y + x*y*z"; p "a*b*x + a*b*z" ] in
  let result = X.run ~mode:X.Vars_only system in
  check_prog_correct system result;
  Alcotest.(check bool) "extracted a block" true (List.length result.X.blocks >= 1);
  Alcotest.(check bool) "block (x+z) found" true
    (List.exists (fun (_, b) -> P.equal b (p "x + z")) result.X.blocks)

let test_extract_common_cube () =
  (* x*y appears in every term across both polynomials *)
  let system = [ p "x*y*z + x*y*w"; p "7*x*y*q" ] in
  let result = X.run ~mode:X.Vars_only system in
  check_prog_correct system result;
  let c = Prog.counts result.X.prog in
  (* naive: xyz(2), xyw(2), add, 7xyq(3) = 7 mults; sharing xy saves 2 *)
  Alcotest.(check bool) (Printf.sprintf "mults %d <= 5" c.Dag.mults) true
    (c.Dag.mults <= 5)

let test_extract_improves_or_equal () =
  let systems =
    [ table_14_1;
      [ p "x^2 + 2*x*y + y^2"; p "x^2 - 2*x*y + y^2" ];
      [ p "x^3 + 3*x^2 + 3*x + 1" ];
      [ p "0" ]; [ p "42" ] ]
  in
  List.iter
    (fun system ->
      let direct =
        List.fold_left
          (fun acc q -> acc + Dag.total_ops (Dag.tree_counts (E.of_poly q)))
          0 system
      in
      let result = X.run system in
      check_prog_correct system result;
      let c = Prog.counts result.X.prog in
      Alcotest.(check bool) "no worse than direct" true
        (Dag.total_ops c <= direct))
    systems

(* kcm --------------------------------------------------------------------------- *)

module Kcm = Polysynth_cse.Kcm

let test_kcm_build () =
  let t = Kcm.build table_14_1 in
  Alcotest.(check bool) "has rows" true (Kcm.num_rows t > 0);
  Alcotest.(check bool) "has cols" true (Kcm.num_cols t > 0);
  let ck, k = Kcm.row_kernel t 0 in
  Alcotest.(check bool) "kernel sane" true
    (P.num_terms k >= 2 && Mono.degree ck >= 0);
  Alcotest.check_raises "range" (Invalid_argument "Kcm.row_kernel: out of range")
    (fun () -> ignore (Kcm.row_kernel t 9999))

let test_kcm_finds_shared_kernel () =
  (* (x + z) occurs as a kernel of both polynomials: the prime rectangle
     formulation must find it *)
  let system = [ p "x^2*y + x*y*z"; p "a*b*x + a*b*z" ] in
  let cands = Kcm.candidates system in
  Alcotest.(check bool) "found x + z" true
    (List.exists (P.equal (p "x + z")) cands)

let test_kcm_rectangles_are_rectangles () =
  let t = Kcm.build (table_14_1 @ [ p "x^2*y + x*y*z"; p "x + z + q" ]) in
  List.iter
    (fun r ->
      Alcotest.(check bool) ">= 2 rows" true (List.length r.Kcm.rows >= 2);
      Alcotest.(check bool) ">= 2 terms" true (P.num_terms r.Kcm.body >= 2);
      (* every row's kernel contains the body *)
      List.iter
        (fun i ->
          let _, k = Kcm.row_kernel t i in
          List.iter
            (fun (c, m) ->
              Alcotest.(check bool) "body in kernel" true
                (Z.equal (P.coeff k m) c))
            (P.terms r.Kcm.body))
        r.Kcm.rows;
      Alcotest.(check bool) "positive value" true (r.Kcm.value >= 0))
    (Kcm.prime_rectangles t)

let test_kcm_strategy_correct () =
  let result = X.run ~strategy:X.Kcm_rectangles table_14_1 in
  check_prog_correct table_14_1 result;
  let c = Prog.counts result.X.prog in
  Alcotest.(check bool) "competitive with greedy" true (c.Dag.mults <= 13)

(* properties -------------------------------------------------------------------- *)

let gen_system =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 3) (pair (oneofl [ "x"; "y"; "z" ]) (int_range 1 2))
    >|= Mono.of_list
  in
  let gen_poly =
    list_size (int_range 1 5) (pair (int_range (-9) 9) gen_mono)
    >|= fun ts -> P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) ts)
  in
  list_size (int_range 1 3) gen_poly

let arb_system =
  QCheck.make gen_system
    ~print:(fun polys -> String.concat "; " (List.map P.to_string polys))

let arb_system_env =
  QCheck.make
    QCheck.Gen.(pair gen_system (triple (int_range (-5) 5) (int_range (-5) 5) (int_range (-5) 5)))
    ~print:(fun (polys, _) -> String.concat "; " (List.map P.to_string polys))

let prop_extract_correct mode name =
  prop name arb_system (fun system ->
      let result = X.run ~mode system in
      let polys = Prog.to_polys result.X.prog in
      List.for_all2
        (fun q (_, q') -> P.equal q q')
        system
        (List.sort
           (fun (a, _) (b, _) ->
             Stdlib.compare
               (int_of_string (String.sub a 1 (String.length a - 1)))
               (int_of_string (String.sub b 1 (String.length b - 1))))
           polys))

let prop_extract_correct_literals =
  prop_extract_correct X.Coeff_literals "extraction is exact (literal mode)"

let prop_extract_correct_vars =
  prop_extract_correct X.Vars_only "extraction is exact (vars mode)"

let prop_extract_eval =
  prop "extracted program evaluates like the system" arb_system_env
    (fun (system, (a, b, c)) ->
      let env v =
        match v with
        | "x" -> Z.of_int a
        | "y" -> Z.of_int b
        | "z" -> Z.of_int c
        | _ -> Z.zero
      in
      let result = X.run system in
      let values = Prog.eval result.X.prog env in
      List.for_all2
        (fun q (i : int) ->
          Z.equal (P.eval env q)
            (List.assoc (Printf.sprintf "P%d" i) values))
        system
        (List.init (List.length system) (fun i -> i + 1)))

let prop_kcm_strategy_correct =
  prop "KCM strategy is exact" ~count:60 arb_system (fun system ->
      let result = X.run ~strategy:X.Kcm_rectangles system in
      let polys = Prog.to_polys result.X.prog in
      List.for_all
        (fun (i : int) ->
          P.equal
            (List.nth system (i - 1))
            (List.assoc (Printf.sprintf "P%d" i) polys))
        (List.init (List.length system) (fun i -> i + 1)))

let prop_extract_never_worse =
  prop "extraction never exceeds direct cost" arb_system (fun system ->
      let direct =
        List.fold_left
          (fun acc q -> acc + Dag.total_ops (Dag.tree_counts (E.of_poly q)))
          0 system
      in
      let result = X.run system in
      Dag.total_ops (Prog.counts result.X.prog) <= direct)

let () =
  Alcotest.run "cse"
    [
      ( "kernels",
        [
          Alcotest.test_case "largest cube" `Quick test_largest_cube;
          Alcotest.test_case "cube free" `Quick test_cube_free;
          Alcotest.test_case "divide cube" `Quick test_divide_cube;
          Alcotest.test_case "paper kernel example" `Quick test_paper_kernel_example;
          Alcotest.test_case "section 14.4.2 kernels" `Quick
            test_section_14_4_2_kernels;
          Alcotest.test_case "kernel definition invariants" `Quick
            test_kernels_are_kernels;
          Alcotest.test_case "power co-kernels" `Quick
            test_kernels_univariate_powers;
        ] );
      ( "extract",
        [
          Alcotest.test_case "table 14.1 baseline" `Quick test_extract_table_14_1;
          Alcotest.test_case "opaque coefficients" `Quick
            test_extract_vars_only_coefficients_opaque;
          Alcotest.test_case "shared kernel" `Quick test_extract_shared_kernel;
          Alcotest.test_case "common cube" `Quick test_extract_common_cube;
          Alcotest.test_case "improves or equal" `Quick
            test_extract_improves_or_equal;
        ] );
      ( "kcm",
        [
          Alcotest.test_case "build" `Quick test_kcm_build;
          Alcotest.test_case "finds shared kernel" `Quick
            test_kcm_finds_shared_kernel;
          Alcotest.test_case "rectangles are rectangles" `Quick
            test_kcm_rectangles_are_rectangles;
          Alcotest.test_case "strategy correct" `Quick test_kcm_strategy_correct;
        ] );
      ( "properties",
        [
          prop_extract_correct_literals;
          prop_extract_correct_vars;
          prop_extract_eval;
          prop_kcm_strategy_correct;
          prop_extract_never_worse;
        ] );
    ]
