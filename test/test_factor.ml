module Z = Polysynth_zint.Zint
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module Mono = Polysynth_poly.Monomial
module G = Polysynth_factor.Mgcd
module S = Polysynth_factor.Squarefree

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly

let prop name ?(count = 150) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let gen_poly ?(vars = [ "x"; "y"; "z" ]) ?(max_terms = 4) ?(max_exp = 2) () =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 2) (pair (oneofl vars) (int_range 1 max_exp))
    >|= Mono.of_list
  in
  list_size (int_range 0 max_terms) (pair (int_range (-6) 6) gen_mono)
  >|= fun terms ->
  P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) terms)

let arb_poly = QCheck.make (gen_poly ()) ~print:P.to_string

let arb_pair = QCheck.make QCheck.Gen.(pair (gen_poly ()) (gen_poly ()))
    ~print:(fun (a, b) -> P.to_string a ^ " || " ^ P.to_string b)

let arb_triple =
  QCheck.make
    QCheck.Gen.(triple (gen_poly ()) (gen_poly ()) (gen_poly ~max_terms:3 ()))
    ~print:(fun (a, b, c) ->
      String.concat " || " [ P.to_string a; P.to_string b; P.to_string c ])

(* gcd -------------------------------------------------------------------------- *)

let test_gcd_univariate () =
  check_p "gcd(x^2-1, x^2-2x+1)" (p "x - 1")
    (G.gcd (p "x^2 - 1") (p "x^2 - 2*x + 1"));
  check_p "gcd(x^2-1, x+1)" (p "x + 1") (G.gcd (p "x^2 - 1") (p "x + 1"));
  check_p "coprime" P.one (G.gcd (p "x + 1") (p "x + 2"));
  check_p "with content" (p "2*x + 2") (G.gcd (p "4*x^2 - 4") (p "2*x^2 + 4*x + 2"))

let test_gcd_multivariate () =
  check_p "gcd((x+y)^2*z, (x+y)*w)" (p "x + y")
    (G.gcd (P.mul (P.pow (p "x + y") 2) (p "z")) (P.mul (p "x + y") (p "w")));
  check_p "gcd over paper system" (p "x + 3*y")
    (G.gcd (p "x^2 + 6*x*y + 9*y^2") (p "4*x*y^2 + 12*y^3"));
  check_p "no shared vars" (p "3") (G.gcd (p "3*x") (p "6*y"))

let test_gcd_zero () =
  check_p "gcd(0, p)" (p "x + 1") (G.gcd P.zero (p "x + 1"));
  check_p "gcd(p, 0) normalized" (p "x + 1") (G.gcd (p "-x - 1") P.zero);
  check_p "gcd(0, 0)" P.zero (G.gcd P.zero P.zero)

let test_gcd_sign () =
  check_p "negative inputs" (p "x + y") (G.gcd (p "-x - y") (P.mul (p "-x - y") (p "x")))

let test_gcd_list () =
  check_p "gcd of paper Table 14.1 system" (p "x + 3*y")
    (G.gcd_list
       [ p "x^2 + 6*x*y + 9*y^2"; p "4*x*y^2 + 12*y^3"; p "2*x^2*z + 6*x*y*z" ])

let test_content_primitive_in () =
  let q = p "2*y*x^2 + 4*y^2*x" in
  check_p "content in x" (p "2*y") (G.content_in "x" q);
  check_p "primitive in x" (p "x^2 + 2*y*x") (G.primitive_part_in "x" q)

let test_pseudo_rem () =
  (* prem(x^2 + 1, 2x + 1) = 4*(x^2+1) mod (2x+1) = 5 *)
  check_p "univariate" (p "5") (G.pseudo_rem "x" (p "x^2 + 1") (p "2*x + 1"));
  Alcotest.check_raises "degree 0 divisor" Division_by_zero (fun () ->
      ignore (G.pseudo_rem "x" (p "x") (p "y")))

(* squarefree -------------------------------------------------------------------- *)

let test_squarefree_examples () =
  (* Example 14.1: u2 = (x+1)(x+2)^2 *)
  let f = S.squarefree (p "x^3 + 5*x^2 + 8*x + 4") in
  Alcotest.(check int) "unit" 1 (Z.to_int_exn f.S.unit_part);
  Alcotest.(check int) "two factors" 2 (List.length f.S.factors);
  (match f.S.factors with
   | [ (s1, 1); (s2, 2) ] ->
     check_p "s1" (p "x + 1") s1;
     check_p "s2" (p "x + 2") s2
   | _ -> Alcotest.fail "unexpected factor shape");
  check_p "expand roundtrip" (p "x^3 + 5*x^2 + 8*x + 4") (S.expand f)

let test_squarefree_example_14_2 () =
  (* u = 2x^7 - 2x^6 + 24x^5 - 24x^4 + 96x^3 - 96x^2 + 128x - 128
       = 2 (x-1) (x^2+4)^3 *)
  let u =
    p "2*x^7 - 2*x^6 + 24*x^5 - 24*x^4 + 96*x^3 - 96*x^2 + 128*x - 128"
  in
  let f = S.squarefree u in
  Alcotest.(check int) "unit 2" 2 (Z.to_int_exn f.S.unit_part);
  (match f.S.factors with
   | [ (s1, 1); (s3, 3) ] ->
     check_p "s1 = x - 1" (p "x - 1") s1;
     check_p "s3 = x^2 + 4" (p "x^2 + 4") s3
   | _ -> Alcotest.fail "unexpected factor shape");
  check_p "expand" u (S.expand f)

let test_squarefree_example_14_3 () =
  (* x^6 - 9x^4 + 24x^2 - 16 = (x^2-1)(x^2-4)^2 *)
  let u = p "x^6 - 9*x^4 + 24*x^2 - 16" in
  let f = S.squarefree u in
  (match f.S.factors with
   | [ (s1, 1); (s2, 2) ] ->
     check_p "s1" (p "x^2 - 1") s1;
     check_p "s2" (p "x^2 - 4") s2
   | _ -> Alcotest.fail "unexpected factor shape");
  check_p "expand" u (S.expand f)

let test_squarefree_multivariate () =
  (* (x+y)^2 detection, the motivating symbolic-methods example *)
  let f = S.squarefree (p "x^2 + 2*x*y + y^2") in
  (match f.S.factors with
   | [ (s, 2) ] -> check_p "(x+y)" (p "x + y") s
   | _ -> Alcotest.fail "expected a single squared factor");
  (* mixed: y * (x+1)^2, content in one variable *)
  let g = S.squarefree (p "y*x^2 + 2*y*x + y") in
  check_p "expand mixed" (p "y*x^2 + 2*y*x + y") (S.expand g);
  Alcotest.(check bool) "has (x+1)^2" true
    (List.exists (fun (s, k) -> k = 2 && P.equal s (p "x + 1")) g.S.factors)

let test_squarefree_detects () =
  Alcotest.(check bool) "squarefree" true (S.is_squarefree (p "x^2 + 3*x + 2"));
  Alcotest.(check bool) "not squarefree" false
    (S.is_squarefree (p "x^4 + 7*x^3 + 18*x^2 + 20*x + 8"));
  Alcotest.(check bool) "constant" true (S.is_squarefree (p "7"));
  Alcotest.check_raises "zero" (Invalid_argument "Squarefree.squarefree: zero polynomial")
    (fun () -> ignore (S.squarefree P.zero))

let test_perfect_power () =
  (match S.perfect_power_root (p "x^2 + 2*x*y + y^2") with
   | Some (v, 2) -> check_p "root" (p "x + y") v
   | _ -> Alcotest.fail "expected square");
  (match S.perfect_power_root (p "x^3 + 3*x^2 + 3*x + 1") with
   | Some (v, 3) -> check_p "cube root" (p "x + 1") v
   | _ -> Alcotest.fail "expected cube");
  (match S.perfect_power_root (p "4*x^2 + 8*x + 4") with
   | Some (v, 2) -> check_p "root with content" (p "2*x + 2") v
   | _ -> Alcotest.fail "expected square with content");
  Alcotest.(check bool) "not a power" true
    (S.perfect_power_root (p "x^2 + 1") = None);
  Alcotest.(check bool) "constant" true (S.perfect_power_root (p "9") = None)

let test_integer_root () =
  let check name n k expect =
    Alcotest.(check bool) name true
      (match S.integer_root (Z.of_int n) k with
       | Some r -> (match expect with Some e -> Z.to_int_exn r = e | None -> false)
       | None -> expect = None)
  in
  check "sqrt 49" 49 2 (Some 7);
  check "sqrt 50" 50 2 None;
  check "cbrt -27" (-27) 3 (Some (-3));
  check "sqrt -4" (-4) 2 None;
  check "k=1" 17 1 (Some 17);
  check "root of 0" 0 5 (Some 0)

(* linear factors --------------------------------------------------------------- *)

module LF = Polysynth_factor.Linear_factors

let test_roots_basic () =
  (* (x - 2)(x + 3) = x^2 + x - 6 *)
  let rs = LF.roots "x" (p "x^2 + x - 6") in
  let as_ints = List.map (fun (b, a) -> (Z.to_int_exn b, Z.to_int_exn a)) rs in
  Alcotest.(check bool) "root 2" true (List.mem (2, 1) as_ints);
  Alcotest.(check bool) "root -3" true (List.mem (-3, 1) as_ints);
  Alcotest.(check int) "exactly two" 2 (List.length rs)

let test_roots_rational () =
  (* (2x - 3)(x + 1) = 2x^2 - x - 3 *)
  let rs = LF.roots "x" (p "2*x^2 - x - 3") in
  let as_ints = List.map (fun (b, a) -> (Z.to_int_exn b, Z.to_int_exn a)) rs in
  Alcotest.(check bool) "root 3/2" true (List.mem (3, 2) as_ints);
  Alcotest.(check bool) "root -1" true (List.mem (-1, 1) as_ints)

let test_roots_zero_root () =
  let rs = LF.roots "x" (p "x^3 - x^2") in
  let as_ints = List.map (fun (b, a) -> (Z.to_int_exn b, Z.to_int_exn a)) rs in
  Alcotest.(check bool) "root 0" true (List.mem (0, 1) as_ints);
  Alcotest.(check bool) "root 1" true (List.mem (1, 1) as_ints)

let test_roots_none () =
  Alcotest.(check int) "x^2+1 has no rational roots" 0
    (List.length (LF.roots "x" (p "x^2 + 1")))

let test_roots_invalid () =
  Alcotest.check_raises "multivariate"
    (Invalid_argument "Linear_factors: polynomial is not univariate")
    (fun () -> ignore (LF.roots "x" (p "x*y + 1")));
  Alcotest.check_raises "zero"
    (Invalid_argument "Linear_factors: zero polynomial") (fun () ->
      ignore (LF.roots "x" P.zero))

let test_linear_factors_reconstruct () =
  let u = p "2*x^3 + x^2 - 8*x - 4" in
  (* = (2x + 1)(x - 2)(x + 2) *)
  let factors, rest = LF.linear_factors "x" u in
  let product =
    List.fold_left
      (fun acc (f, k) -> P.mul acc (P.pow f k))
      rest factors
  in
  check_p "reconstructs" u product;
  Alcotest.(check int) "three linear factors" 3
    (List.fold_left (fun acc (_, k) -> acc + k) 0 factors);
  Alcotest.(check bool) "(2x + 1) found" true
    (List.exists (fun (f, _) -> P.equal f (p "2*x + 1")) factors)

let test_linear_factors_multiplicity () =
  let factors, rest = LF.linear_factors "x" (p "x^3 - 3*x^2 + 3*x - 1") in
  (match factors with
   | [ (f, 3) ] -> check_p "(x-1)^3" (p "x - 1") f
   | _ -> Alcotest.fail "expected (x-1)^3");
  check_p "rest is 1" P.one rest

(* full factorization ------------------------------------------------------------- *)

module Fp = Polysynth_factor.Fp_poly
module B = Polysynth_factor.Berlekamp
module H = Polysynth_factor.Hensel
module F = Polysynth_factor.Factorize

let test_fp_poly_arith () =
  let p = 7 in
  let a = Fp.of_list ~p [ 1; 2; 3 ] and b = Fp.of_list ~p [ 6; 5 ] in
  Alcotest.(check bool) "mul degree" true (Fp.degree (Fp.mul ~p a b) = 3);
  let q, r = Fp.divmod ~p a b in
  Alcotest.(check bool) "divmod invariant" true
    (Fp.equal a (Fp.add ~p (Fp.mul ~p q b) r));
  Alcotest.(check int) "inverse" 1 (3 * Fp.inv_mod_p ~p:7 3 mod 7);
  Alcotest.(check int) "eval" ((1 + 2*3 + 3*9) mod 7) (Fp.eval ~p a 3);
  let g, s, t = Fp.extended_gcd ~p a b in
  Alcotest.(check bool) "bezout" true
    (Fp.equal g (Fp.add ~p (Fp.mul ~p s a) (Fp.mul ~p t b)))

let test_berlekamp_splits () =
  (* x^2 - 1 = (x-1)(x+1) mod 5 *)
  let p = 5 in
  let f = Fp.of_list ~p [ -1; 0; 1 ] in
  let factors = B.factor ~p f in
  Alcotest.(check int) "two factors" 2 (List.length factors);
  Alcotest.(check int) "nullspace dim" 2 (B.nullspace_dimension ~p f);
  let product = List.fold_left (Fp.mul ~p) Fp.one factors in
  Alcotest.(check bool) "product" true (Fp.equal (Fp.monic ~p f) product)

let test_berlekamp_irreducible () =
  (* x^2 + 1 is irreducible mod 7 (7 = 3 mod 4) *)
  let p = 7 in
  let f = Fp.of_list ~p [ 1; 0; 1 ] in
  Alcotest.(check int) "irreducible" 1 (List.length (B.factor ~p f))

let test_hensel_pair () =
  (* x^2 - 1 = (x-1)(x+1): lift from mod 5 to mod 5^k >= 1000 *)
  let p = 5 in
  let f = [| Z.of_int (-1); Z.zero; Z.one |] in
  let facs = [ Fp.of_list ~p [ -1; 1 ]; Fp.of_list ~p [ 1; 1 ] ] in
  let lifted, m = H.lift_factors ~p ~target:(Z.of_int 1000) f facs in
  Alcotest.(check bool) "modulus big enough" true
    (Z.compare m (Z.of_int 1000) >= 0);
  let product = List.fold_left (H.mul ~m) [| Z.one |] lifted in
  Alcotest.(check bool) "f = prod mod m" true
    (H.pair_lift_check ~p ~m f product [| Z.one |])

let check_factorization s expected_factors =
  let u = p s in
  let f = F.factor "x" u in
  check_p (s ^ " expands") u (F.expand f);
  Alcotest.(check int)
    (s ^ " factor count")
    expected_factors
    (List.fold_left (fun acc (_, k) -> acc + k) 0 f.F.factors)

let test_factorize_classics () =
  check_factorization "x^2 - 1" 2;
  check_factorization "x^2 + 1" 1;
  check_factorization "6*x^2 + 5*x + 1" 2;
  check_factorization "x^4 - 1" 3;
  check_factorization "x^6 - 1" 4;
  check_factorization "x^4 + 4" 2;
  check_factorization "x^4 + x^2 + 1" 2;
  check_factorization "12*x^3 - 44*x^2 + 49*x - 15" 3;
  check_factorization "x^8 + x^4 + 1" 3

let test_factorize_multiplicities () =
  let f = F.factor "x" (p "x^4 + 2*x^3 + x^2") in
  (* x^2 (x+1)^2 *)
  Alcotest.(check bool) "has x^2" true
    (List.exists (fun (g, k) -> P.equal g (p "x") && k = 2) f.F.factors);
  Alcotest.(check bool) "has (x+1)^2" true
    (List.exists (fun (g, k) -> P.equal g (p "x + 1") && k = 2) f.F.factors)

let test_factorize_paper_example () =
  (* Example 14.3 continued: the square-free factors are reducible *)
  let f = F.factor "x" (p "x^6 - 9*x^4 + 24*x^2 - 16") in
  let flat = List.map (fun (g, k) -> (P.to_string g, k)) f.F.factors in
  Alcotest.(check bool) "(x-1)" true (List.mem ("x - 1", 1) flat);
  Alcotest.(check bool) "(x+1)" true (List.mem ("x + 1", 1) flat);
  Alcotest.(check bool) "(x-2)^2" true (List.mem ("x - 2", 2) flat);
  Alcotest.(check bool) "(x+2)^2" true (List.mem ("x + 2", 2) flat)

let test_is_irreducible () =
  Alcotest.(check bool) "x^2+1" true (F.is_irreducible "x" (p "x^2 + 1"));
  Alcotest.(check bool) "x^2-1" false (F.is_irreducible "x" (p "x^2 - 1"));
  Alcotest.(check bool) "x^4+1" true (F.is_irreducible "x" (p "x^4 + 1"));
  Alcotest.(check bool) "cyclotomic 12" true
    (F.is_irreducible "x" (p "x^4 - x^2 + 1"))

let test_factorize_invalid () =
  Alcotest.check_raises "multivariate"
    (Invalid_argument "Factorize: polynomial is not univariate") (fun () ->
      ignore (F.factor "x" (p "x*y")));
  Alcotest.check_raises "zero" (Invalid_argument "Factorize: zero polynomial")
    (fun () -> ignore (F.factor "x" P.zero))

(* resultants -------------------------------------------------------------------- *)

module R = Polysynth_factor.Resultant

let test_resultant_numeric () =
  (* res(x^2 - 1, x - 2) = f(2) for monic f: 3 *)
  check_p "res" (p "3") (R.resultant "x" (p "x^2 - 1") (p "x - 2"));
  (* common factor -> 0 *)
  check_p "common root" P.zero (R.resultant "x" (p "x^2 - 1") (p "x - 1"))

let test_resultant_multivariate () =
  (* res_x(x + y, x - y) = -2y *)
  check_p "res_x" (p "0 - 2*y") (R.resultant "x" (p "x + y") (p "x - y"))

let test_discriminant () =
  (* disc(x^2 + bx + c) = b^2 - 4c *)
  check_p "quadratic" (p "b^2 - 4*c") (R.discriminant "x" (p "x^2 + b*x + c"));
  check_p "double root" P.zero (R.discriminant "x" (p "x^2 - 2*x + 1"));
  check_p "x^2-1" (p "4") (R.discriminant "x" (p "x^2 - 1"));
  Alcotest.check_raises "degree 0"
    (Invalid_argument "Resultant.discriminant: degree < 1") (fun () ->
      ignore (R.discriminant "x" (p "y + 1")))

let test_determinant () =
  let m s = p s in
  let det =
    R.determinant
      [| [| m "1"; m "2" |]; [| m "3"; m "4" |] |]
  in
  check_p "2x2" (p "0 - 2") det;
  check_p "singular" P.zero
    (R.determinant [| [| m "1"; m "2" |]; [| m "2"; m "4" |] |]);
  check_p "polynomial entries" (p "0 - 2*y")
    (R.determinant [| [| m "1"; m "y" |]; [| m "1"; m "0 - y" |] |])

let prop_resultant_detects_common_factor =
  prop "resultant is zero iff gcd is non-trivial" ~count:80
    (QCheck.make
       QCheck.Gen.(
         triple
           (map (fun (a, b) -> (a, b)) (pair (int_range (-4) 4) (int_range (-4) 4)))
           (pair (int_range (-4) 4) (int_range (-4) 4))
           bool)
       ~print:(fun _ -> "roots"))
    (fun (((a, b) : int * int), ((c, d) : int * int), share) ->
      (* f = (x - a)(x - b), g = (x - c)(x - d) or sharing root a *)
      let lin r = P.sub (P.var "x") (P.of_int r) in
      let f = P.mul (lin a) (lin b) in
      let g = if share then P.mul (lin a) (lin d) else P.mul (lin c) (lin d) in
      let res = R.resultant "x" f g in
      let gcd_nontrivial = not (P.is_const (G.gcd f g)) in
      P.is_zero res = gcd_nontrivial)

(* internal-error hardening ------------------------------------------------------- *)

(* The `assert false` sites in Linear_factors, Mgcd and Squarefree are now
   descriptive internal-error failures.  Stress the code paths that used to
   guard them — rational roots with large coefficients, heavy content,
   negative leading terms, pseudo-division towers — and demand that no bare
   Assert_failure escapes (documented Invalid_argument is fine). *)

let no_assert name f =
  match f () with
  | exception Assert_failure (file, line, _) ->
    Alcotest.failf "%s: Assert_failure at %s:%d" name file line
  | exception Invalid_argument _ -> ()
  | exception Division_by_zero -> ()
  | _ -> ()

let test_hardening_edge_inputs () =
  no_assert "roots: huge coefficients" (fun () ->
      LF.roots "x" (p "1000000007*x^3 - 1000000007*x"));
  no_assert "roots: negative leading coefficient" (fun () ->
      LF.roots "x" (p "0 - 6*x^3 + 11*x^2 - 6*x + 1"));
  no_assert "roots: dense rational roots" (fun () ->
      LF.roots "x" (p "30*x^4 - 133*x^3 + 163*x^2 - 16*x - 12"));
  no_assert "linear_factors: content-heavy" (fun () ->
      LF.linear_factors "x" (p "1024*x^5 - 1024*x"));
  no_assert "linear_factors: constant" (fun () -> LF.linear_factors "x" (p "42"));
  no_assert "gcd: deep pseudo-division tower" (fun () ->
      G.gcd
        (P.mul (P.pow (p "x + y + z") 3) (p "2*x - 5"))
        (P.mul (P.pow (p "x + y + z") 2) (p "7*y + 1")));
  no_assert "gcd: mismatched contents" (fun () ->
      G.gcd (p "6*x^4*y^2 - 6*y^2") (p "15*x^2*y^3 + 15*y^3"));
  no_assert "squarefree: high multiplicity" (fun () ->
      S.squarefree (P.pow (p "3*x - 2") 6));
  no_assert "squarefree: mixed multiplicities with content" (fun () ->
      S.squarefree
        (P.mul (P.of_int 12) (P.mul (P.pow (p "x + 1") 4) (p "x^2 + 1"))))

let gen_univariate = gen_poly ~vars:[ "x" ] ~max_terms:5 ~max_exp:4 ()

let prop_no_assert_failure =
  prop "factor stack never raises Assert_failure" ~count:120
    (QCheck.make
       QCheck.Gen.(pair gen_univariate (gen_poly ()))
       ~print:(fun (a, b) -> P.to_string a ^ " || " ^ P.to_string b))
    (fun (u, m) ->
      let safe f =
        match f () with
        | exception Assert_failure _ -> false
        | exception Invalid_argument _ -> true
        | exception Division_by_zero -> true
        | _ -> true
      in
      safe (fun () -> LF.roots "x" u)
      && safe (fun () -> LF.linear_factors "x" u)
      && safe (fun () -> S.squarefree u)
      && safe (fun () -> S.squarefree m)
      && safe (fun () -> G.gcd u m)
      && safe (fun () -> G.gcd m (P.mul m u)))

(* properties --------------------------------------------------------------------- *)

let gen_linear_product =
  let open QCheck.Gen in
  let gen_root = pair (int_range (-5) 5) (int_range 1 3) in
  list_size (int_range 1 3) gen_root
  >|= fun roots ->
  List.fold_left
    (fun acc (b, a) ->
      P.mul acc
        (P.sub (P.mul_scalar (Z.of_int a) (P.var "x")) (P.of_int b)))
    P.one roots

let gen_factor_product =
  (* product of 2-3 small factors, some irreducible quadratics *)
  let open QCheck.Gen in
  let gen_factor =
    oneof
      [
        (pair (int_range 1 3) (int_range (-4) 4) >|= fun (a, b) ->
         P.sub (P.mul_scalar (Z.of_int a) (P.var "x")) (P.of_int b));
        (pair (int_range (-3) 3) (int_range 1 5) >|= fun (b, c) ->
         P.add_list
           [ P.pow (P.var "x") 2;
             P.mul_scalar (Z.of_int b) (P.var "x");
             P.of_int c ]);
      ]
  in
  list_size (int_range 1 3) gen_factor
  >|= List.fold_left P.mul P.one

let prop_factorize_expands =
  prop "factorization expands back" ~count:60
    (QCheck.make gen_factor_product ~print:P.to_string)
    (fun u ->
      QCheck.assume (not (P.is_zero u));
      let f = F.factor "x" u in
      P.equal u (F.expand f))

let prop_factors_are_irreducible =
  prop "emitted factors are irreducible" ~count:40
    (QCheck.make gen_factor_product ~print:P.to_string)
    (fun u ->
      QCheck.assume (not (P.is_zero u) && not (P.is_const u));
      let f = F.factor "x" u in
      List.for_all (fun (g, _) -> F.is_irreducible "x" g) f.F.factors)

let prop_linear_factors_found =
  prop "products of linear factors fully factor" ~count:100
    (QCheck.make gen_linear_product ~print:P.to_string)
    (fun u ->
      let factors, rest = LF.linear_factors "x" u in
      P.is_const rest
      && P.equal u
           (List.fold_left
              (fun acc (f, k) -> P.mul acc (P.pow f k))
              rest factors))

let prop_gcd_divides =
  prop "gcd divides both" arb_pair (fun (a, b) ->
      let g = G.gcd a b in
      if P.is_zero g then P.is_zero a && P.is_zero b
      else P.divides g a && P.divides g b)

let prop_gcd_common_factor =
  prop "common factor divides gcd" arb_triple (fun (a, b, c) ->
      QCheck.assume (not (P.is_zero c));
      QCheck.assume (not (P.is_zero a) || not (P.is_zero b));
      let g = G.gcd (P.mul a c) (P.mul b c) in
      P.divides c g)

let prop_gcd_commutes =
  prop "gcd commutes" arb_pair (fun (a, b) -> P.equal (G.gcd a b) (G.gcd b a))

let prop_squarefree_expand =
  prop "squarefree expands back" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a));
      P.equal a (S.expand (S.squarefree a)))

let prop_squarefree_factors_are_squarefree =
  prop "factors are square-free and coprime" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a));
      let { S.factors; _ } = S.squarefree a in
      List.for_all (fun (s, _) -> S.is_squarefree s) factors
      && begin
        let rec pairwise = function
          | [] -> true
          | (s, _) :: rest ->
            List.for_all (fun (t, _) -> P.is_const (G.gcd s t)) rest
            && pairwise rest
        in
        pairwise factors
      end)

let prop_square_detected =
  prop "p^2 is detected as a perfect power" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a) && not (P.is_const a));
      match S.perfect_power_root (P.mul a a) with
      | Some (_, k) -> k >= 2
      | None -> false)

let prop_perfect_power_expands =
  prop "perfect_power_root reconstructs" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a) && not (P.is_const a));
      let sq = P.mul a a in
      match S.perfect_power_root sq with
      | Some (v, k) -> P.equal sq (P.pow v k)
      | None -> false)

let () =
  Alcotest.run "factor"
    [
      ( "gcd",
        [
          Alcotest.test_case "univariate" `Quick test_gcd_univariate;
          Alcotest.test_case "multivariate" `Quick test_gcd_multivariate;
          Alcotest.test_case "zero cases" `Quick test_gcd_zero;
          Alcotest.test_case "sign normalization" `Quick test_gcd_sign;
          Alcotest.test_case "gcd_list" `Quick test_gcd_list;
          Alcotest.test_case "content/primitive in var" `Quick test_content_primitive_in;
          Alcotest.test_case "pseudo_rem" `Quick test_pseudo_rem;
        ] );
      ( "squarefree",
        [
          Alcotest.test_case "example 14.1" `Quick test_squarefree_examples;
          Alcotest.test_case "example 14.2" `Quick test_squarefree_example_14_2;
          Alcotest.test_case "example 14.3" `Quick test_squarefree_example_14_3;
          Alcotest.test_case "multivariate" `Quick test_squarefree_multivariate;
          Alcotest.test_case "is_squarefree" `Quick test_squarefree_detects;
          Alcotest.test_case "perfect powers" `Quick test_perfect_power;
          Alcotest.test_case "integer roots" `Quick test_integer_root;
        ] );
      ( "linear_factors",
        [
          Alcotest.test_case "basic roots" `Quick test_roots_basic;
          Alcotest.test_case "rational roots" `Quick test_roots_rational;
          Alcotest.test_case "zero root" `Quick test_roots_zero_root;
          Alcotest.test_case "no roots" `Quick test_roots_none;
          Alcotest.test_case "invalid input" `Quick test_roots_invalid;
          Alcotest.test_case "reconstruct" `Quick test_linear_factors_reconstruct;
          Alcotest.test_case "multiplicity" `Quick test_linear_factors_multiplicity;
        ] );
      ( "factorize",
        [
          Alcotest.test_case "fp_poly arithmetic" `Quick test_fp_poly_arith;
          Alcotest.test_case "berlekamp splits" `Quick test_berlekamp_splits;
          Alcotest.test_case "berlekamp irreducible" `Quick
            test_berlekamp_irreducible;
          Alcotest.test_case "hensel pair" `Quick test_hensel_pair;
          Alcotest.test_case "classic factorizations" `Quick
            test_factorize_classics;
          Alcotest.test_case "multiplicities" `Quick
            test_factorize_multiplicities;
          Alcotest.test_case "paper example 14.3" `Quick
            test_factorize_paper_example;
          Alcotest.test_case "irreducibility" `Quick test_is_irreducible;
          Alcotest.test_case "invalid input" `Quick test_factorize_invalid;
        ] );
      ( "resultant",
        [
          Alcotest.test_case "numeric" `Quick test_resultant_numeric;
          Alcotest.test_case "multivariate" `Quick test_resultant_multivariate;
          Alcotest.test_case "discriminant" `Quick test_discriminant;
          Alcotest.test_case "determinant" `Quick test_determinant;
          prop_resultant_detects_common_factor;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "edge inputs raise no Assert_failure" `Quick
            test_hardening_edge_inputs;
          prop_no_assert_failure;
        ] );
      ( "properties",
        [
          prop_factorize_expands;
          prop_factors_are_irreducible;
          prop_linear_factors_found;
          prop_gcd_divides;
          prop_gcd_common_factor;
          prop_gcd_commutes;
          prop_squarefree_expand;
          prop_squarefree_factors_are_squarefree;
          prop_square_detected;
          prop_perfect_power_expands;
        ] );
    ]
