module Z = Polysynth_zint.Zint
module Mono = Polysynth_poly.Monomial
module P = Polysynth_poly.Poly
module Parse = Polysynth_poly.Parse
module Symtab = Polysynth_poly.Symtab

let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly
let mono = Alcotest.testable Mono.pp Mono.equal

let p = Parse.poly_exn

(* random polynomial generator ---------------------------------------------- *)

let gen_poly =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 3)
      (pair (oneofl [ "x"; "y"; "z"; "w" ]) (int_range 1 3))
    >|= Mono.of_list
  in
  let gen_term = pair (int_range (-9) 9) gen_mono in
  list_size (int_range 0 6) gen_term
  >|= fun terms ->
  P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) terms)

let arb_poly = QCheck.make gen_poly ~print:P.to_string

let env_of_list bindings v =
  match List.assoc_opt v bindings with Some n -> Z.of_int n | None -> Z.zero

let gen_env =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> [ ("x", a); ("y", b); ("z", c); ("w", d) ])
      (quad (int_range (-10) 10) (int_range (-10) 10) (int_range (-10) 10)
         (int_range (-10) 10)))

let arb_two_polys_env =
  QCheck.make
    QCheck.Gen.(triple gen_poly gen_poly gen_env)
    ~print:(fun (a, b, _) -> P.to_string a ^ " || " ^ P.to_string b)

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* monomial tests ------------------------------------------------------------ *)

let test_mono_of_list () =
  Alcotest.check mono "combine dups" (Mono.of_list [ ("x", 3) ])
    (Mono.of_list [ ("x", 1); ("x", 2) ]);
  Alcotest.check mono "drop zero" Mono.one (Mono.of_list [ ("x", 0) ]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Monomial.of_list: negative exponent") (fun () ->
      ignore (Mono.of_list [ ("x", -1) ]))

let test_mono_order () =
  let m s = (Parse.poly_exn s |> P.leading |> snd) in
  Alcotest.(check bool) "deg dominates" true (Mono.compare (m "x*y*z") (m "x^2") > 0);
  Alcotest.(check bool) "x^2 > x*y" true (Mono.compare (m "x^2") (m "x*y") > 0);
  Alcotest.(check bool) "x*y > x*z" true (Mono.compare (m "x*y") (m "x*z") > 0);
  Alcotest.(check bool) "1 minimal" true (Mono.compare Mono.one (m "x") < 0);
  Alcotest.(check int) "reflexive" 0 (Mono.compare (m "x*y^2") (m "x*y^2"))

let test_mono_div () =
  let m l = Mono.of_list l in
  Alcotest.(check bool) "divides" true
    (Mono.divides (m [ ("x", 1) ]) (m [ ("x", 2); ("y", 1) ]));
  Alcotest.(check bool) "not divides" false
    (Mono.divides (m [ ("z", 1) ]) (m [ ("x", 2) ]));
  (match Mono.div (m [ ("x", 2); ("y", 1) ]) (m [ ("x", 1) ]) with
   | Some q -> Alcotest.check mono "quotient" (m [ ("x", 1); ("y", 1) ]) q
   | None -> Alcotest.fail "expected divisible");
  Alcotest.(check bool) "div fails" true
    (Mono.div (m [ ("x", 1) ]) (m [ ("y", 1) ]) = None)

let test_mono_gcd_lcm () =
  let m l = Mono.of_list l in
  Alcotest.check mono "gcd"
    (m [ ("x", 1); ("y", 1) ])
    (Mono.gcd (m [ ("x", 2); ("y", 1) ]) (m [ ("x", 1); ("y", 3); ("z", 1) ]));
  Alcotest.check mono "lcm"
    (m [ ("x", 2); ("y", 3); ("z", 1) ])
    (Mono.lcm (m [ ("x", 2); ("y", 1) ]) (m [ ("x", 1); ("y", 3); ("z", 1) ]))

(* regression: of_list used to combine duplicates with a quadratic,
   non-tail-recursive pass; 10k bindings must stay instant and safe *)
let test_mono_of_list_large () =
  let n = 10_000 in
  let bindings = List.init n (fun i -> ("lv" ^ string_of_int (i mod 7), 1)) in
  let m = Mono.of_list bindings in
  Alcotest.(check int) "degree" n (Mono.degree m);
  Alcotest.(check int) "distinct vars" 7 (List.length (Mono.to_list m))

(* reference semantics --------------------------------------------------------

   An executable model of the monomial order on plain sorted association
   lists, independent of the interned packed representation.  The
   properties below check that the interned [Monomial] agrees with it on
   every operation, through the [to_list] view. *)

module MRef = struct
  (* a monomial is a (string * int) list sorted by name, all exponents > 0 *)

  let of_list l =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (v, e) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
        Hashtbl.replace tbl v (prev + e))
      l;
    Hashtbl.fold (fun v e acc -> if e > 0 then (v, e) :: acc else acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let degree m = List.fold_left (fun n (_, e) -> n + e) 0 m

  (* graded lex: total degree first, then alphabetically-earlier variables
     are more significant and a higher exponent on them wins *)
  let compare a b =
    let c = Stdlib.compare (degree a) (degree b) in
    if c <> 0 then c
    else
      let rec lex a b =
        match (a, b) with
        | [], [] -> 0
        | [], _ :: _ -> -1
        | _ :: _, [] -> 1
        | (va, ea) :: ta, (vb, eb) :: tb ->
          let c = String.compare va vb in
          if c < 0 then 1
          else if c > 0 then -1
          else if ea <> eb then Stdlib.compare ea eb
          else lex ta tb
      in
      lex a b

  let mul a b = of_list (a @ b)

  let gcd a b =
    List.filter_map
      (fun (v, e) ->
        match List.assoc_opt v b with
        | Some e' -> Some (v, Stdlib.min e e')
        | None -> None)
      a

  let div a b =
    let exp m v = Option.value ~default:0 (List.assoc_opt v m) in
    if List.for_all (fun (v, e) -> e <= exp a v) b then
      Some (of_list (a @ List.map (fun (v, e) -> (v, -e)) b))
    else None
end

let gen_bindings =
  QCheck.Gen.(
    list_size (int_range 0 8)
      (pair (oneofl [ "x"; "y"; "z"; "w"; "u"; "v" ]) (int_range 0 4)))

let print_bindings l =
  "["
  ^ String.concat "; "
      (List.map (fun (v, e) -> v ^ "^" ^ string_of_int e) l)
  ^ "]"

let arb_bindings = QCheck.make gen_bindings ~print:print_bindings

let arb_two_bindings =
  QCheck.make
    QCheck.Gen.(pair gen_bindings gen_bindings)
    ~print:(fun (a, b) -> print_bindings a ^ " || " ^ print_bindings b)

let sign n = Stdlib.compare n 0

let prop_mono_of_list_ref =
  prop "interned of_list matches reference" arb_bindings (fun l ->
      Mono.to_list (Mono.of_list l) = MRef.of_list l)

let prop_mono_compare_ref =
  prop "interned compare matches reference" arb_two_bindings (fun (a, b) ->
      sign (Mono.compare (Mono.of_list a) (Mono.of_list b))
      = sign (MRef.compare (MRef.of_list a) (MRef.of_list b)))

let prop_mono_mul_gcd_ref =
  prop "interned mul/gcd match reference" arb_two_bindings (fun (a, b) ->
      let ma = Mono.of_list a and mb = Mono.of_list b in
      Mono.to_list (Mono.mul ma mb) = MRef.mul (MRef.of_list a) (MRef.of_list b)
      && Mono.to_list (Mono.gcd ma mb)
         = MRef.gcd (MRef.of_list a) (MRef.of_list b))

let prop_mono_div_ref =
  prop "interned div matches reference" arb_two_bindings (fun (a, b) ->
      let ma = Mono.of_list a and mb = Mono.of_list b in
      match (Mono.div ma mb, MRef.div (MRef.of_list a) (MRef.of_list b)) with
      | Some q, Some q' -> Mono.to_list q = q'
      | None, None -> true
      | _ -> false)

let gen_raw_terms =
  QCheck.Gen.(list_size (int_range 0 10) (pair (int_range (-5) 5) gen_bindings))

let arb_raw_terms =
  QCheck.make gen_raw_terms ~print:(fun raw ->
      String.concat " + "
        (List.map
           (fun (c, l) -> string_of_int c ^ "*" ^ print_bindings l)
           raw))

let prop_of_terms_ref =
  prop "of_terms combines like reference" arb_raw_terms (fun raw ->
      let poly =
        P.of_terms (List.map (fun (c, l) -> (Z.of_int c, Mono.of_list l)) raw)
      in
      let expected =
        List.fold_left
          (fun acc (c, l) ->
            let key = MRef.of_list l in
            let prev = Option.value ~default:0 (List.assoc_opt key acc) in
            (key, prev + c) :: List.remove_assoc key acc)
          [] raw
        |> List.filter (fun (_, c) -> c <> 0)
        |> List.map (fun (k, c) -> (c, k))
        |> List.sort (fun (_, m1) (_, m2) -> MRef.compare m2 m1)
      in
      List.map (fun (c, m) -> (Z.to_int_exn c, Mono.to_list m)) (P.terms poly)
      = expected)

let gen_names =
  QCheck.Gen.(
    list_size (int_range 1 10)
      (string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 6)))

let arb_names =
  QCheck.make gen_names ~print:(fun l -> String.concat " " l)

let prop_symtab_order =
  prop "symtab injective and order-preserving" arb_names (fun names ->
      let ids = List.map Symtab.intern names in
      let ranks = Symtab.ranks () in
      List.for_all2
        (fun v id -> Symtab.intern v = id && Symtab.name_of id = v)
        names ids
      && List.for_all2
           (fun v id ->
             List.for_all2
               (fun v' id' ->
                 sign (Stdlib.compare ranks.(id) ranks.(id'))
                 = sign (String.compare v v'))
               names ids)
           names ids)

(* polynomial tests ----------------------------------------------------------- *)

let test_construction () =
  check_p "zero const" P.zero (P.const Z.zero);
  check_p "of_terms combines" (p "2*x")
    (P.of_terms [ (Z.one, Mono.var "x"); (Z.one, Mono.var "x") ]);
  check_p "of_terms cancels" P.zero
    (P.of_terms [ (Z.one, Mono.var "x"); (Z.of_int (-1), Mono.var "x") ]);
  Alcotest.(check int) "num_terms" 3 (P.num_terms (p "x^2 + x + 1"))

let test_arith_examples () =
  check_p "(x+y)^2" (p "x^2 + 2*x*y + y^2") (P.pow (p "x + y") 2);
  check_p "(x+y)*(x-y)" (p "x^2 - y^2") (P.mul (p "x + y") (p "x - y"));
  check_p "sub self" P.zero (P.sub (p "3*x*y - 7") (p "3*x*y - 7"))

let test_degree () =
  Alcotest.(check int) "total degree" 4 (P.degree (p "x^2*y^2 + x^3"));
  Alcotest.(check int) "zero degree" (-1) (P.degree P.zero);
  Alcotest.(check int) "degree_in x" 2 (P.degree_in "x" (p "x^2*y^2 + y^3"));
  Alcotest.(check int) "degree_in absent" 0 (P.degree_in "q" (p "x^2"));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (P.vars (p "x^2*y + y - 4"))

let test_leading () =
  let c, m = P.leading (p "3*x*y^2 - 5*x^3 + 2") in
  Alcotest.(check int) "leading coeff" (-5) (Z.to_int_exn c);
  Alcotest.check mono "leading mono" (Mono.var ~exp:3 "x") m

let test_div_rem () =
  let check_invariant a b =
    let q, r = P.div_rem a b in
    check_p (P.to_string a ^ " / " ^ P.to_string b) a (P.add (P.mul q b) r)
  in
  check_invariant (p "x^2 + 2*x*y + y^2") (p "x + y");
  check_invariant (p "x^3 - 1") (p "x - 1");
  check_invariant (p "x^2 + y") (p "z + 1");
  check_invariant (p "5*x^2 + 3") (p "2*x");
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (P.div_rem (p "x") P.zero))

let test_div_exact () =
  (match P.div_exact (p "x^2 + 2*x*y + y^2") (p "x + y") with
   | Some q -> check_p "(x+y)^2/(x+y)" (p "x + y") q
   | None -> Alcotest.fail "expected exact");
  (match P.div_exact (p "4*x*y^2 + 12*y^3") (p "x + 3*y") with
   | Some q -> check_p "4y^2" (p "4*y^2") q
   | None -> Alcotest.fail "expected exact");
  Alcotest.(check bool) "inexact" true (P.div_exact (p "x^2 + 1") (p "x + 1") = None);
  Alcotest.(check bool) "divides" true (P.divides (p "x + y") (p "x^2 - y^2"));
  Alcotest.(check bool) "not divides" false (P.divides (p "x + y") (p "x^2 + y^2"))

let test_content_primitive () =
  Alcotest.(check int) "content" 6 (Z.to_int_exn (P.content (p "6*x + 12*y - 18")));
  check_p "primitive part" (p "x + 2*y - 3") (P.primitive_part (p "6*x + 12*y - 18"));
  check_p "primitive of negative leading" (p "x - 2")
    (P.primitive_part (p "4 - 2*x"));
  Alcotest.(check int) "content zero" 0 (Z.to_int_exn (P.content P.zero))

let test_derivative () =
  check_p "d/dx" (p "2*x*y + 3*x^2") (P.derivative "x" (p "x^2*y + x^3 + y^2"));
  check_p "d/dz absent" P.zero (P.derivative "z" (p "x^2 + y"))

let test_subst () =
  check_p "x := y+1 in x^2"
    (p "y^2 + 2*y + 1")
    (P.subst "x" (p "y + 1") (p "x^2"));
  check_p "shift" (p "x^2 + 2*x + 1") (P.shift [ ("x", Z.one) ] (p "x^2"));
  check_p "eval_partial"
    (p "4*y + 3")
    (P.eval_partial [ ("x", Z.of_int 2) ] (p "x^2*y + x + 1"))

let test_coeffs_in () =
  let cs = P.coeffs_in "x" (p "3*x^2*y + x^2 + 5*x - y + 2") in
  Alcotest.(check int) "three degrees" 3 (List.length cs);
  (match List.assoc_opt 2 cs with
   | Some c -> check_p "x^2 coefficient" (p "3*y + 1") c
   | None -> Alcotest.fail "missing degree 2");
  check_p "roundtrip" (p "3*x^2*y + x^2 + 5*x - y + 2")
    (P.of_coeffs_in "x" cs)

let test_to_string () =
  Alcotest.(check string) "pretty" "3*x^2*y - x + 7" (P.to_string (p "3*x^2*y - x + 7"));
  Alcotest.(check string) "leading minus" "-x + 1" (P.to_string (p "1 - x"));
  Alcotest.(check string) "zero" "0" (P.to_string P.zero)

(* parser tests --------------------------------------------------------------- *)

let test_parse_examples () =
  check_p "paper F"
    (P.add_list
       [ P.mul_scalar (Z.of_int 4) (P.mul (P.pow (P.var "x") 2) (P.pow (P.var "y") 2));
         P.mul_scalar (Z.of_int (-4)) (P.mul (P.pow (P.var "x") 2) (P.var "y"));
         P.mul_scalar (Z.of_int (-4)) (P.mul (P.var "x") (P.pow (P.var "y") 2));
         P.mul_scalar (Z.of_int 4) (P.mul (P.var "x") (P.var "y"));
         P.mul_scalar (Z.of_int 5) (P.mul (P.pow (P.var "z") 2) (P.var "x"));
         P.mul_scalar (Z.of_int (-5)) (P.mul (P.var "z") (P.var "x")) ])
    (p "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y + 5*z^2*x - 5*z*x");
  check_p "parens and pow" (p "x^2 + 6*x*y + 9*y^2") (p "(x + 3*y)^2");
  check_p "unary minus" (p "0 - x - y") (p "-x - y");
  check_p "nested" (p "2*x^2 + 2*x*y") (p "2*x*(x + y)")

let test_parse_errors () =
  let bad s =
    match Parse.poly_exn s with
    | exception Parse.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ s)
  in
  bad "x +";
  bad "(x";
  bad "x ^ y";
  bad "x $ y";
  bad "";
  bad "x x"

let test_parse_system () =
  let polys = Parse.system_exn "x + y; x - y\n # comment line\n z^2 # trailing" in
  Alcotest.(check int) "three polys" 3 (List.length polys);
  check_p "third" (p "z^2") (List.nth polys 2)

let test_parse_result_api () =
  (* the non-_exn entry points report failure as a value, never an exception *)
  (match Parse.poly "x + y" with
   | Ok q -> check_p "ok poly" (p "x + y") q
   | Error (`Parse msg) -> Alcotest.fail msg);
  (match Parse.poly "x +" with
   | Error (`Parse _) -> ()
   | Ok _ -> Alcotest.fail "expected Error for truncated input");
  match Parse.system "x; y^2" with
  | Ok polys -> Alcotest.(check int) "two polys" 2 (List.length polys)
  | Error (`Parse msg) -> Alcotest.fail msg

(* properties ------------------------------------------------------------------ *)

let prop_eval_hom_add =
  prop "eval is additive" arb_two_polys_env (fun (a, b, env) ->
      let e = env_of_list env in
      Z.equal (P.eval e (P.add a b)) (Z.add (P.eval e a) (P.eval e b)))

let prop_eval_hom_mul =
  prop "eval is multiplicative" arb_two_polys_env (fun (a, b, env) ->
      let e = env_of_list env in
      Z.equal (P.eval e (P.mul a b)) (Z.mul (P.eval e a) (P.eval e b)))

let prop_ring_axioms =
  prop "ring axioms" QCheck.(triple arb_poly arb_poly arb_poly)
    (fun (a, b, c) ->
      P.equal (P.add a b) (P.add b a)
      && P.equal (P.mul a b) (P.mul b a)
      && P.equal (P.mul a (P.add b c)) (P.add (P.mul a b) (P.mul a c))
      && P.equal (P.mul (P.mul a b) c) (P.mul a (P.mul b c)))

let prop_div_rem_invariant =
  prop "a = q*b + r" QCheck.(pair arb_poly arb_poly) (fun (a, b) ->
      QCheck.assume (not (P.is_zero b));
      let q, r = P.div_rem a b in
      P.equal a (P.add (P.mul q b) r))

let prop_div_exact_product =
  prop "div_exact recovers factor" QCheck.(pair arb_poly arb_poly)
    (fun (a, b) ->
      QCheck.assume (not (P.is_zero b));
      match P.div_exact (P.mul a b) b with
      | Some q -> P.equal q a
      | None -> false)

let prop_parse_roundtrip =
  prop "to_string/parse roundtrip" arb_poly (fun a ->
      P.equal a (Parse.poly_exn (P.to_string a)))

let prop_primitive_content =
  prop "p = content * primitive (up to sign)" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a));
      let c = P.content a in
      let pp_ = P.primitive_part a in
      P.equal a (P.mul_scalar c pp_)
      || P.equal a (P.mul_scalar (Z.neg c) pp_))

let prop_derivative_linear =
  prop "derivative is linear" QCheck.(pair arb_poly arb_poly) (fun (a, b) ->
      P.equal
        (P.derivative "x" (P.add a b))
        (P.add (P.derivative "x" a) (P.derivative "x" b)))

let prop_derivative_product =
  prop "Leibniz rule" QCheck.(pair arb_poly arb_poly) (fun (a, b) ->
      P.equal
        (P.derivative "x" (P.mul a b))
        (P.add (P.mul (P.derivative "x" a) b) (P.mul a (P.derivative "x" b))))

let prop_coeffs_roundtrip =
  prop "coeffs_in roundtrip" arb_poly (fun a ->
      P.equal a (P.of_coeffs_in "x" (P.coeffs_in "x" a)))

let prop_pp_parses_back =
  prop "to_string output parses back" arb_poly (fun a ->
      P.equal a (Parse.poly_exn (P.to_string a)))

let prop_div_rem_remainder_irreducible =
  prop "no remainder term is reducible by the divisor's leading term"
    QCheck.(pair arb_poly arb_poly)
    (fun (a, b) ->
      QCheck.assume (not (P.is_zero b));
      let _, r = P.div_rem a b in
      let cb, mb = P.leading b in
      List.for_all
        (fun (cr, mr) ->
          not (Mono.divides mb mr && Z.divides cb cr))
        (P.terms r))

let prop_shift_unshift =
  prop "shift by c then -c is identity" arb_poly (fun a ->
      let shifted = P.shift [ ("x", Z.of_int 3) ] a in
      P.equal a (P.shift [ ("x", Z.of_int (-3)) ] shifted))

let prop_pow_adds_degrees =
  prop "degree of p^2 = 2 * degree p" arb_poly (fun a ->
      QCheck.assume (not (P.is_zero a));
      P.degree (P.pow a 2) = 2 * P.degree a)

let prop_coeffs_in_any_var =
  prop "coeffs_in roundtrip in y" arb_poly (fun a ->
      P.equal a (P.of_coeffs_in "y" (P.coeffs_in "y" a)))

let prop_subst_eval_commute =
  prop "subst commutes with eval" arb_two_polys_env (fun (a, q, env) ->
      let e = env_of_list env in
      let direct = P.eval e (P.subst "x" q a) in
      let e' v = if String.equal v "x" then P.eval e q else e v in
      Z.equal direct (P.eval e' a))

let () =
  Alcotest.run "poly"
    [
      ( "monomial",
        [
          Alcotest.test_case "of_list" `Quick test_mono_of_list;
          Alcotest.test_case "order" `Quick test_mono_order;
          Alcotest.test_case "div" `Quick test_mono_div;
          Alcotest.test_case "gcd lcm" `Quick test_mono_gcd_lcm;
          Alcotest.test_case "of_list 10k bindings" `Quick
            test_mono_of_list_large;
        ] );
      ( "interning",
        [
          prop_mono_of_list_ref;
          prop_mono_compare_ref;
          prop_mono_mul_gcd_ref;
          prop_mono_div_ref;
          prop_of_terms_ref;
          prop_symtab_order;
        ] );
      ( "poly",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "arith examples" `Quick test_arith_examples;
          Alcotest.test_case "degree" `Quick test_degree;
          Alcotest.test_case "leading" `Quick test_leading;
          Alcotest.test_case "div_rem" `Quick test_div_rem;
          Alcotest.test_case "div_exact" `Quick test_div_exact;
          Alcotest.test_case "content/primitive" `Quick test_content_primitive;
          Alcotest.test_case "derivative" `Quick test_derivative;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "coeffs_in" `Quick test_coeffs_in;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "parse",
        [
          Alcotest.test_case "examples" `Quick test_parse_examples;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "system" `Quick test_parse_system;
          Alcotest.test_case "result api" `Quick test_parse_result_api;
        ] );
      ( "properties",
        [
          prop_eval_hom_add;
          prop_eval_hom_mul;
          prop_ring_axioms;
          prop_div_rem_invariant;
          prop_div_exact_product;
          prop_parse_roundtrip;
          prop_primitive_content;
          prop_derivative_linear;
          prop_derivative_product;
          prop_coeffs_roundtrip;
          prop_pp_parses_back;
          prop_div_rem_remainder_irreducible;
          prop_shift_unshift;
          prop_pow_adds_degrees;
          prop_coeffs_in_any_var;
          prop_subst_eval_commute;
        ] );
    ]
