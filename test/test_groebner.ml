module Z = Polysynth_zint.Zint
module Q = Polysynth_rat.Qint
module P = Polysynth_poly.Poly
module Mono = Polysynth_poly.Monomial
module Parse = Polysynth_poly.Parse
module E = Polysynth_expr.Expr
module Qp = Polysynth_groebner.Qpoly
module Gb = Polysynth_groebner.Buchberger

let p = Parse.poly_exn
let poly = Alcotest.testable P.pp P.equal
let check_p = Alcotest.check poly

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let qp ?(ord = Qp.grlex) s = Qp.of_poly ord (p s)

(* qpoly ------------------------------------------------------------------------ *)

let test_lex_order () =
  let ord = Qp.lex [ "x"; "y" ] in
  let m s = snd (Qp.leading (Qp.of_poly ord (p s))) in
  (* under lex x > y, x dominates any power of y *)
  Alcotest.(check bool) "x > y^5" true (ord (m "x") (m "y^5") > 0);
  Alcotest.(check bool) "x^2 y > x y^3" true (ord (m "x^2*y") (m "x*y^3") > 0);
  (* leading term of x + y^5 under lex is x *)
  Alcotest.(check bool) "leading is x" true (Mono.equal (m "x + y^5") (m "x"))

let test_qpoly_roundtrip () =
  let q = qp "3*x^2 - 2*x*y + 7" in
  let z, d = Qp.to_poly q in
  Alcotest.(check bool) "denominator one" true (Z.is_one d);
  check_p "roundtrip" (p "3*x^2 - 2*x*y + 7") z

let test_qpoly_monic () =
  let q = Qp.monic (qp "4*x^2 + 8") in
  let c, _ = Qp.leading q in
  Alcotest.(check bool) "monic" true (Q.equal Q.one c);
  let z, d = Qp.to_poly q in
  check_p "x^2 + 2" (p "x^2 + 2") z;
  Alcotest.(check bool) "denom one after scaling" true (Z.is_one d)

(* reduction / s-polynomials ------------------------------------------------------ *)

let test_reduce_univariate () =
  (* x^2 + x + 1 mod {x - 2} -> 7 *)
  let ord = Qp.lex [ "x" ] in
  let nf = Gb.reduce [ Qp.of_poly ord (p "x - 2") ] (Qp.of_poly ord (p "x^2 + x + 1")) in
  let z, d = Qp.to_poly nf in
  Alcotest.(check bool) "denom 1" true (Z.is_one d);
  check_p "7" (p "7") z

let test_s_polynomial () =
  (* classic: f = x^2, g = x*y + 1 under grlex: S = -(x/y)*... compute and
     check it cancels the leading terms *)
  let f = qp "x^2" and g = qp "x*y + 1" in
  let s = Gb.s_polynomial f g in
  let z, _ = Qp.to_poly s in
  check_p "S-poly" (p "0 - x") z

(* buchberger ----------------------------------------------------------------------- *)

let test_basis_spolys_reduce_to_zero () =
  (* the defining property of a Groebner basis *)
  let gens = [ qp "x^2 + y"; qp "x*y + 1"; qp "y^3 - x" ] in
  let gb = Gb.basis gens in
  Alcotest.(check bool) "non-empty" true (List.length gb > 0);
  List.iteri
    (fun i gi ->
      List.iteri
        (fun j gj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "S(%d,%d) reduces to 0" i j)
              true
              (Qp.is_zero (Gb.reduce gb (Gb.s_polynomial gi gj))))
        gb)
    gb

let test_ideal_membership () =
  (* x^2 - 1 and x - 1 generate: x^2 - 1 in <x - 1, x + 1>? yes *)
  let ord = Qp.lex [ "x" ] in
  let gb = Gb.basis [ Qp.of_poly ord (p "x - 1"); Qp.of_poly ord (p "x + 1") ] in
  Alcotest.(check bool) "x^2-1 member" true
    (Gb.ideal_member gb (Qp.of_poly ord (p "x^2 - 1")));
  (* the ideal is actually <1> since (x+1)-(x-1)=2 *)
  Alcotest.(check bool) "1 member" true
    (Gb.ideal_member gb (Qp.of_poly ord (p "1")));
  let gb2 = Gb.basis [ Qp.of_poly ord (p "x^2 - 1") ] in
  Alcotest.(check bool) "x-1 not member of <x^2-1>" false
    (Gb.ideal_member gb2 (Qp.of_poly ord (p "x - 1")))

let test_basis_of_product_relations () =
  (* generators of a graph ideal: y - x^2, z - x^3; membership of z - x*y *)
  let ord = Qp.lex [ "z"; "y"; "x" ] in
  let gb =
    Gb.basis [ Qp.of_poly ord (p "y - x^2"); Qp.of_poly ord (p "z - x^3") ]
  in
  Alcotest.(check bool) "z - x*y in ideal" true
    (Gb.ideal_member gb (Qp.of_poly ord (p "z - x*y")))

(* library rewriting --------------------------------------------------------------- *)

let test_rewrite_perfect_square () =
  (* P1 of Table 14.1 over the block d = x + 3y rewrites to d^2 *)
  match
    Gb.rewrite_with_library
      ~library:[ ("d", p "x + 3*y") ]
      (p "x^2 + 6*x*y + 9*y^2")
  with
  | None -> Alcotest.fail "expected a rewrite"
  | Some (e, nf) ->
    check_p "normal form d^2" (p "d^2") nf;
    check_p "expr expands over d" (p "d^2") (E.to_poly e)

let test_rewrite_table_14_2 () =
  match
    Gb.rewrite_with_library
      ~library:[ ("d1", p "x + y"); ("d2", p "x - y") ]
      (List.hd Polysynth_workloads.Examples.table_14_2)
  with
  | None -> Alcotest.fail "expected a rewrite"
  | Some (_, nf) ->
    (* 13 d1^2 + 7 d2 + 11 *)
    check_p "13*d1^2 + 7*d2 + 11" (p "13*d1^2 + 7*d2 + 11") nf

let test_rewrite_no_progress () =
  Alcotest.(check bool) "unrelated block" true
    (Gb.rewrite_with_library ~library:[ ("d", p "q + w") ] (p "x^2 + 1") = None)

(* properties -------------------------------------------------------------------------- *)

let gen_poly =
  let open QCheck.Gen in
  let gen_mono =
    list_size (int_range 0 2) (pair (oneofl [ "x"; "y" ]) (int_range 1 2))
    >|= Mono.of_list
  in
  list_size (int_range 1 4) (pair (int_range (-5) 5) gen_mono)
  >|= fun ts -> P.of_terms (List.map (fun (c, m) -> (Z.of_int c, m)) ts)

let arb_gens =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 3) gen_poly)
    ~print:(fun l -> String.concat "; " (List.map P.to_string l))

let prop_groebner_property =
  prop "all S-polynomials of a basis reduce to zero" ~count:40 arb_gens
    (fun gens ->
      let qgens = List.map (Qp.of_poly Qp.grlex) gens in
      match Gb.basis ~max_steps:500 qgens with
      | exception Failure _ -> QCheck.assume_fail ()
      | gb ->
        List.for_all
          (fun gi ->
            List.for_all
              (fun gj ->
                Qp.is_zero gi || Qp.is_zero gj
                || Qp.is_zero (Gb.reduce gb (Gb.s_polynomial gi gj)))
              gb)
          gb)

let prop_generators_are_members =
  prop "generators belong to their own ideal" ~count:40 arb_gens (fun gens ->
      let qgens = List.map (Qp.of_poly Qp.grlex) gens in
      match Gb.basis ~max_steps:500 qgens with
      | exception Failure _ -> QCheck.assume_fail ()
      | gb ->
        List.for_all
          (fun g -> Qp.is_zero g || Gb.ideal_member gb g)
          qgens)

let prop_rewrite_sound =
  (* substituting the block definitions back must recover the input *)
  prop "library rewrite is sound" ~count:60
    (QCheck.make
       QCheck.Gen.(pair gen_poly gen_poly)
       ~print:(fun (a, b) -> P.to_string a ^ " | " ^ P.to_string b))
    (fun (target, block) ->
      QCheck.assume (not (P.is_zero block) && not (P.is_const block));
      match Gb.rewrite_with_library ~library:[ ("blk", block) ] target with
      | None -> true
      | Some (_, nf) -> P.equal target (P.subst "blk" block nf))

let () =
  Alcotest.run "groebner"
    [
      ( "qpoly",
        [
          Alcotest.test_case "lex order" `Quick test_lex_order;
          Alcotest.test_case "roundtrip" `Quick test_qpoly_roundtrip;
          Alcotest.test_case "monic" `Quick test_qpoly_monic;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "univariate" `Quick test_reduce_univariate;
          Alcotest.test_case "s-polynomial" `Quick test_s_polynomial;
        ] );
      ( "buchberger",
        [
          Alcotest.test_case "S-polys reduce to zero" `Quick
            test_basis_spolys_reduce_to_zero;
          Alcotest.test_case "ideal membership" `Quick test_ideal_membership;
          Alcotest.test_case "graph ideal" `Quick test_basis_of_product_relations;
        ] );
      ( "library rewriting",
        [
          Alcotest.test_case "perfect square" `Quick test_rewrite_perfect_square;
          Alcotest.test_case "table 14.2" `Quick test_rewrite_table_14_2;
          Alcotest.test_case "no progress" `Quick test_rewrite_no_progress;
        ] );
      ( "properties",
        [ prop_groebner_property; prop_generators_are_members; prop_rewrite_sound ] );
    ]
