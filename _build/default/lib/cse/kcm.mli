(** The kernel-cube matrix (KCM) formulation of multi-polynomial CSE from
    Hosangadi et al.

    Rows are kernel instances (a polynomial together with one of its
    co-kernels), columns are the distinct signed cubes appearing in any
    kernel; entry (r, c) is set when cube c occurs in kernel r.  A
    {e rectangle} — a set of rows sharing a set of columns — identifies a
    multi-term sub-expression (the column cubes) occurring once per row;
    extracting a {e prime} rectangle (one that cannot be enlarged) with a
    good value function is the exact counterpart of the greedy
    intersection heuristic in {!Extract}. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly
module Monomial := Polysynth_poly.Monomial

type t

type rectangle = {
  rows : int list;  (** kernel-instance indices *)
  body : Poly.t;  (** the shared sub-expression (>= 2 terms) *)
  value : int;  (** estimated operation saving *)
}

val build : Poly.t list -> t

val num_rows : t -> int
val num_cols : t -> int

val row_kernel : t -> int -> Monomial.t * Poly.t
(** Co-kernel and kernel of a row.  @raise Invalid_argument out of range. *)

val prime_rectangles : ?max_rectangles:int -> t -> rectangle list
(** Prime rectangles with at least two rows and two columns, best value
    first; [max_rectangles] (default 64) bounds the output.  Seeds are the
    single-row column sets and all pairwise row intersections, closed under
    the (rows of all columns / columns of all rows) Galois connection, so
    every reported rectangle is prime. *)

val candidates : ?max_rectangles:int -> Poly.t list -> Poly.t list
(** The rectangle bodies, best first — drop-in candidate blocks for the
    extraction loop. *)
