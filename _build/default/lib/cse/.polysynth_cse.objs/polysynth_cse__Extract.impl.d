lib/cse/extract.ml: Kcm Kernel List Map Polysynth_expr Polysynth_poly Polysynth_zint Printf Set Stdlib String
