lib/cse/kcm.ml: Array Hashtbl Int Kernel List Map Polysynth_expr Polysynth_poly Polysynth_zint Set Stdlib
