lib/cse/kernel.ml: Array List Polysynth_poly Set
