lib/cse/extract.mli: Polysynth_expr Polysynth_poly
