lib/cse/kernel.mli: Polysynth_poly
