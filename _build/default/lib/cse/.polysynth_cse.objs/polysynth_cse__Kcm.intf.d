lib/cse/kcm.mli: Polysynth_poly Polysynth_zint
