module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag

module IntSet = Set.Make (Int)

type cube = Z.t * Monomial.t

let cube_compare (c1, m1) (c2, m2) =
  let c = Monomial.compare m1 m2 in
  if c <> 0 then c else Z.compare c1 c2

module CubeMap = Map.Make (struct
  type t = cube

  let compare = cube_compare
end)

type t = {
  rows : (Monomial.t * Poly.t) array;  (** co-kernel, kernel *)
  row_cols : IntSet.t array;  (** column indices present in each row *)
  cols : cube array;
}

let build polys =
  let instances =
    List.concat_map (fun p -> Kernel.kernels p) polys
  in
  let rows = Array.of_list instances in
  (* assign column indices to distinct cubes *)
  let col_index = ref CubeMap.empty in
  let next = ref 0 in
  let index_of cube =
    match CubeMap.find_opt cube !col_index with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      col_index := CubeMap.add cube i !col_index;
      i
  in
  let row_cols =
    Array.map
      (fun (_, kernel) ->
        List.fold_left
          (fun acc (c, m) -> IntSet.add (index_of (c, m)) acc)
          IntSet.empty (Poly.terms kernel))
      rows
  in
  let cols = Array.make !next (Z.zero, Monomial.one) in
  CubeMap.iter (fun cube i -> cols.(i) <- cube) !col_index;
  { rows; row_cols; cols }

let num_rows t = Array.length t.rows
let num_cols t = Array.length t.cols

let row_kernel t i =
  if i < 0 || i >= Array.length t.rows then
    invalid_arg "Kcm.row_kernel: out of range";
  t.rows.(i)

type rectangle = { rows : int list; body : Poly.t; value : int }

let body_of_cols t cols =
  Poly.of_terms (List.map (fun i -> t.cols.(i)) (IntSet.elements cols))

let rows_of_cols t cols =
  (* all rows whose column set contains [cols] *)
  let out = ref [] in
  Array.iteri
    (fun i rc -> if IntSet.subset cols rc then out := i :: !out)
    t.row_cols;
  List.rev !out

let cols_of_rows t rows =
  match rows with
  | [] -> IntSet.empty
  | first :: rest ->
    List.fold_left
      (fun acc i -> IntSet.inter acc t.row_cols.(i))
      t.row_cols.(first) rest

let rectangle_of_cols t cols =
  (* close under the Galois connection: rows of cols, then cols of rows *)
  let rows = rows_of_cols t cols in
  let cols = cols_of_rows t rows in
  (rows, cols)

let value_of t rows cols =
  let body = body_of_cols t cols in
  let ops = Dag.total_ops (Dag.tree_counts (Expr.of_poly body)) in
  (List.length rows - 1) * ops

let prime_rectangles ?(max_rectangles = 64) t =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let consider cols =
    if IntSet.cardinal cols >= 2 then begin
      let rows, cols = rectangle_of_cols t cols in
      if List.length rows >= 2 && IntSet.cardinal cols >= 2 then begin
        let key = (rows, IntSet.elements cols) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let body = body_of_cols t cols in
          out := { rows; body; value = value_of t rows cols } :: !out
        end
      end
    end
  in
  let n = Array.length t.row_cols in
  for i = 0 to n - 1 do
    consider t.row_cols.(i)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      consider (IntSet.inter t.row_cols.(i) t.row_cols.(j))
    done
  done;
  let ranked =
    List.stable_sort (fun a b -> Stdlib.compare b.value a.value) !out
  in
  List.filteri (fun i _ -> i < max_rectangles) ranked

let candidates ?max_rectangles polys =
  let t = build polys in
  let rects = prime_rectangles ?max_rectangles t in
  let rec dedup seen = function
    | [] -> []
    | r :: rest ->
      if List.exists (Poly.equal r.body) seen then dedup seen rest
      else r.body :: dedup (r.body :: seen) rest
  in
  dedup [] rects
