(** Kernel/co-kernel extraction for polynomials (Section 14.2.1, after
    Hosangadi et al.).

    For a polynomial [P] and a cube [c], the quotient [P/c] (keeping only
    the terms divisible by [c]) is a {e kernel} when it is cube-free and has
    at least two terms; [c] is the corresponding {e co-kernel}.  Kernels are
    the candidate multi-term factors that factoring and CSE work with. *)

module Poly := Polysynth_poly.Poly
module Monomial := Polysynth_poly.Monomial

val largest_cube : Poly.t -> Monomial.t
(** The biggest cube (product of variables) dividing every term;
    [Monomial.one] for the zero polynomial. *)

val is_cube_free : Poly.t -> bool

val cube_free_part : Poly.t -> Poly.t
(** [p = monomial(largest_cube p) * cube_free_part p]. *)

val divide_cube : Poly.t -> Monomial.t -> Poly.t
(** [divide_cube p c]: drop the terms not divisible by [c] and divide the
    rest — the quotient used to form kernels. *)

val kernels : Poly.t -> (Monomial.t * Poly.t) list
(** All (co-kernel, kernel) pairs of the polynomial, including the trivial
    pair [(largest_cube p, cube_free_part p)] when the cube-free part has at
    least two terms.  Pairs are distinct and deterministically ordered. *)
