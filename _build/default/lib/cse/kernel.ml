module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

let largest_cube p =
  match Poly.terms p with
  | [] -> Monomial.one
  | (_, m) :: rest ->
    List.fold_left (fun acc (_, m') -> Monomial.gcd acc m') m rest

let is_cube_free p = Monomial.is_one (largest_cube p)

let cube_free_part p =
  match Monomial.div Monomial.one (largest_cube p) with
  | Some _ -> p (* largest cube is 1 *)
  | None ->
    let c = largest_cube p in
    Poly.of_terms
      (List.map
         (fun (k, m) ->
           match Monomial.div m c with
           | Some m' -> (k, m')
           | None -> assert false)
         (Poly.terms p))

let divide_cube p c =
  Poly.of_terms
    (List.filter_map
       (fun (k, m) ->
         match Monomial.div m c with
         | Some m' -> Some (k, m')
         | None -> None)
       (Poly.terms p))

module PolySet = Set.Make (struct
  type t = Monomial.t * Poly.t

  let compare (c1, k1) (c2, k2) =
    let c = Monomial.compare c1 c2 in
    if c <> 0 then c else Poly.compare k1 k2
end)

(* Recursive kernelling.  [vars] is the indexed literal order; at level
   [j] only literals of index >= j are divided out, and a candidate whose
   extracted cube re-introduces an earlier literal is skipped because the
   same kernel was already produced along that literal's branch. *)
let kernels p =
  if Poly.is_zero p then []
  else begin
    let vars = Array.of_list (Poly.vars p) in
    let index_of v =
      let rec find i = if vars.(i) = v then i else find (i + 1) in
      find 0
    in
    let acc = ref PolySet.empty in
    let consider cokernel kernel =
      if Poly.num_terms kernel >= 2 then
        acc := PolySet.add (cokernel, kernel) !acc
    in
    let rec explore j cokernel pol =
      consider cokernel pol;
      Array.iteri
        (fun k v ->
          if k >= j then begin
            let in_terms =
              List.length
                (List.filter
                   (fun (_, m) -> Monomial.mentions v m)
                   (Poly.terms pol))
            in
            if in_terms >= 2 then begin
              let f = divide_cube pol (Monomial.var v) in
              if Poly.num_terms f >= 2 then begin
                let c = largest_cube f in
                let f1 = divide_cube f c in
                let earlier_literal =
                  List.exists (fun v' -> index_of v' < k) (Monomial.vars c)
                in
                if not earlier_literal then
                  explore k
                    (Monomial.mul cokernel (Monomial.mul (Monomial.var v) c))
                    f1
              end
            end
          end)
        vars
    in
    let c0 = largest_cube p in
    let p0 = divide_cube p c0 in
    explore 0 c0 p0;
    PolySet.elements !acc
  end
