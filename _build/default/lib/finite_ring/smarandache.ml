let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let val2_factorial k =
  if k < 0 then invalid_arg "Smarandache.val2_factorial: negative input";
  k - popcount k

let lambda m =
  if m <= 0 then invalid_arg "Smarandache.lambda: non-positive width";
  let rec search k = if val2_factorial k >= m then k else search (k + 1) in
  search 1
