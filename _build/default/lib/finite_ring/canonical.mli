(** Canonical forms of polynomial functions over finite rings of the form
    [Z_2^n1 x ... x Z_2^nd -> Z_2^m] (Section 14.3.1 of the paper, after
    Chen 1996).

    Every polynomial function has a unique representative
    [F = sum_k c_k * Y_k1(x_1)...Y_kd(x_d)] with [k_i < mu_i] and
    [0 <= c_k < 2^m / gcd(2^m, prod k_i!)], where [Y_k] is the falling
    factorial and [mu_i = min(2^n_i, lambda)] with [lambda] the least
    integer whose factorial is divisible by [2^m].

    Besides being canonical (two polynomials represent the same bit-vector
    function iff their reduced forms are structurally equal), the form tends
    to expose shared [Y_k(x)] building blocks across the polynomials of a
    system, which the CSE stage can then merge. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly
module Monomial := Polysynth_poly.Monomial

(** {1 Ring context} *)

type ctx

val make_ctx : out_width:int -> ?var_widths:(string * int) list -> unit -> ctx
(** [out_width] is [m]; variables absent from [var_widths] default to
    [out_width] bits.  @raise Invalid_argument on non-positive widths. *)

val out_width : ctx -> int
val var_width : ctx -> string -> int
val lambda : ctx -> int
val mu : ctx -> string -> int

(** {1 Falling-factorial representation}

    A falling-basis polynomial reuses {!Poly.t} structure, but a monomial
    exponent [k] on variable [x] denotes [Y_k(x)], not [x^k]. *)

type falling

val falling_terms : falling -> (Z.t * Monomial.t) list
val falling_of_terms : (Z.t * Monomial.t) list -> falling

val to_falling : Poly.t -> falling
(** Exact basis change via Stirling numbers of the second kind. *)

val of_falling : falling -> Poly.t
(** Exact inverse basis change via signed Stirling numbers of the first
    kind. *)

(** {1 Canonical reduction} *)

val vanishing_term : ctx -> Monomial.t -> bool
(** True when some [k_i >= mu_i], i.e. the falling term is the zero function
    on the ring. *)

val term_modulus : ctx -> Monomial.t -> Z.t
(** [2^m / gcd(2^m, prod k_i!)]: the modulus at which the coefficient of the
    given falling term repeats. *)

val canonicalize : ctx -> Poly.t -> falling
(** The unique reduced falling form of the function computed by the
    polynomial. *)

val canonical_poly : ctx -> Poly.t -> Poly.t
(** [of_falling (canonicalize ctx p)]: the canonical form expanded back to
    the power basis. *)

val equal_functions : ctx -> Poly.t -> Poly.t -> bool
(** Decision procedure: do the two polynomials compute the same bit-vector
    function on the ring? *)

val eval_mod : ctx -> Poly.t -> (string -> Z.t) -> Z.t
(** Evaluate and reduce into [[0, 2^m)]. *)
