lib/finite_ring/canonical.ml: Fun List Polysynth_poly Polysynth_zint Smarandache Stdlib Stirling
