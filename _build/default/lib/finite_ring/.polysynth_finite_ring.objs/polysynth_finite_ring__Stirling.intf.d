lib/finite_ring/stirling.mli: Polysynth_zint
