lib/finite_ring/stirling.ml: Array List Polysynth_zint
