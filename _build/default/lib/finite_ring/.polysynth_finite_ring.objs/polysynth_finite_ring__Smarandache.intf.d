lib/finite_ring/smarandache.mli:
