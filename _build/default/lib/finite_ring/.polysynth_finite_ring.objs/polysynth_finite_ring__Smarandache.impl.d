lib/finite_ring/smarandache.ml:
