lib/finite_ring/canonical.mli: Polysynth_poly Polysynth_zint
