(** The Smarandache-style threshold used by canonical forms over [Z_2^m]:
    [lambda m] is the least [k] such that [2^m] divides [k!].

    For example [lambda 16 = 18] because [v2(18!) = 16] while
    [v2(17!) = 15]. *)

val lambda : int -> int
(** @raise Invalid_argument on a non-positive width. *)

val val2_factorial : int -> int
(** [val2_factorial k] is the 2-adic valuation of [k!]
    (Legendre: [k - popcount k]). @raise Invalid_argument on negative [k]. *)
