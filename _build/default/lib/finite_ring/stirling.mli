(** Stirling-number conversions between the power basis [x^n] and the
    falling-factorial basis [Y_k(x) = x(x-1)...(x-k+1)].

    [x^n = sum_k second n k * Y_k(x)] and
    [Y_n(x) = sum_k first_signed n k * x^k]. *)

val second : int -> int -> Polysynth_zint.Zint.t
(** Stirling numbers of the second kind [S(n, k)]; zero outside
    [0 <= k <= n].  @raise Invalid_argument on negative arguments. *)

val first_signed : int -> int -> Polysynth_zint.Zint.t
(** Signed Stirling numbers of the first kind [s(n, k)]; zero outside
    [0 <= k <= n].  @raise Invalid_argument on negative arguments. *)
