module Q = Polysynth_rat.Qint

type t = { rows : int; cols : int; data : Q.t array array }

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Qmatrix.make: bad dimensions";
  { rows; cols; data = Array.init rows (fun i -> Array.init cols (f i)) }

let of_lists rows_list =
  match rows_list with
  | [] -> invalid_arg "Qmatrix.of_lists: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 || List.exists (fun r -> List.length r <> cols) rows_list then
      invalid_arg "Qmatrix.of_lists: ragged rows";
    let data = Array.of_list (List.map Array.of_list rows_list) in
    { rows = Array.length data; cols; data }

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.(i).(j)

let identity n =
  make n n (fun i j -> if i = j then Q.one else Q.zero)

let transpose m = make m.cols m.rows (fun i j -> m.data.(j).(i))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Qmatrix.mul: dimension mismatch";
  make a.rows b.cols (fun i j ->
      let rec dot k acc =
        if k >= a.cols then acc
        else dot (k + 1) (Q.add acc (Q.mul a.data.(i).(k) b.data.(k).(j)))
      in
      dot 0 Q.zero)

(* Gauss-Jordan on the augmented matrix [a | b]; returns x or None. *)
let solve a b =
  if a.rows <> a.cols then invalid_arg "Qmatrix.solve: matrix not square";
  if b.rows <> a.rows then invalid_arg "Qmatrix.solve: dimension mismatch";
  let n = a.rows and bw = b.cols in
  let aug =
    Array.init n (fun i ->
        Array.init (n + bw) (fun j ->
            if j < n then a.data.(i).(j) else b.data.(i).(j - n)))
  in
  let exception Singular in
  try
    for col = 0 to n - 1 do
      let pivot_row =
        let rec find i =
          if i >= n then raise Singular
          else if not (Q.is_zero aug.(i).(col)) then i
          else find (i + 1)
        in
        find col
      in
      if pivot_row <> col then begin
        let tmp = aug.(col) in
        aug.(col) <- aug.(pivot_row);
        aug.(pivot_row) <- tmp
      end;
      let pivot = aug.(col).(col) in
      for j = col to n + bw - 1 do
        aug.(col).(j) <- Q.div aug.(col).(j) pivot
      done;
      for i = 0 to n - 1 do
        if i <> col && not (Q.is_zero aug.(i).(col)) then begin
          let factor = aug.(i).(col) in
          for j = col to n + bw - 1 do
            aug.(i).(j) <- Q.sub aug.(i).(j) (Q.mul factor aug.(col).(j))
          done
        end
      done
    done;
    Some (make n bw (fun i j -> aug.(i).(n + j)))
  with Singular -> None

let inverse a = solve a (identity a.rows)

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
    let ok = ref true in
    for i = 0 to a.rows - 1 do
      for j = 0 to a.cols - 1 do
        if not (Q.equal a.data.(i).(j) b.data.(i).(j)) then ok := false
      done
    done;
    !ok
  end

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Q.pp fmt m.data.(i).(j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
