lib/linalg/qmatrix.mli: Format Polysynth_rat
