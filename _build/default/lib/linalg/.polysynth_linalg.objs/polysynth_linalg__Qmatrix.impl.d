lib/linalg/qmatrix.ml: Array Format List Polysynth_rat
