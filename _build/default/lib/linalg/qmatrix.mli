(** Dense exact-rational matrices.

    Just enough linear algebra to solve the least-squares normal equations of
    the Savitzky-Golay workload generator exactly (no floating point anywhere
    in the flow).  Matrices are immutable. *)

type t

val make : int -> int -> (int -> int -> Polysynth_rat.Qint.t) -> t
(** [make rows cols f] builds the matrix with entry [f i j] at row [i],
    column [j].  @raise Invalid_argument on non-positive dimensions. *)

val of_lists : Polysynth_rat.Qint.t list list -> t
(** @raise Invalid_argument on ragged or empty input. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Polysynth_rat.Qint.t

val identity : int -> t
val transpose : t -> t

val mul : t -> t -> t
(** @raise Invalid_argument on dimension mismatch. *)

val solve : t -> t -> t option
(** [solve a b] solves [a * x = b] for square non-singular [a] by
    Gauss-Jordan elimination with partial (non-zero) pivoting; [None] when
    [a] is singular.  @raise Invalid_argument on dimension mismatch. *)

val inverse : t -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
