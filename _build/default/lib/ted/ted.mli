(** Taylor Expansion Diagrams (Ciesielski, Kalla & Askar) — the canonical
    word-level DAG representation the paper's related work uses for
    data-flow transformations.

    A TED decomposes a polynomial with respect to a fixed variable order:
    [f = f|_(v=0) + v * (df/dv)-style linear cofactor], recursively.  With
    hash-consing, two polynomials have the same node exactly when they are
    equal, so the structure is canonical for the given order; shared
    sub-functions across a polynomial system appear as shared nodes, and
    reading the diagram back as an expression yields a Horner-style
    decomposition whose sharing mirrors the diagram ("decomposition cuts",
    as in Gomez-Prado et al.).

    All nodes live in a manager; node ids are only meaningful within it. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr

type manager
type t = private int  (** node id, hash-consed within a manager *)

val create : ?order:string list -> unit -> manager
(** [order] fixes the decomposition variable order; variables not listed
    are appended in lexicographic order as they appear. *)

val leaf : manager -> Z.t -> t
val zero : manager -> t
val one : manager -> t

val of_poly : manager -> Poly.t -> t
val to_poly : manager -> t -> Poly.t

val add : manager -> t -> t -> t
val mul : manager -> t -> t -> t
val neg : manager -> t -> t

val equal : t -> t -> bool
(** Physical id equality; by canonicity this decides polynomial
    equality within one manager. *)

val num_nodes : manager -> int
(** Total nodes allocated in the manager (a measure of sharing). *)

val decompose : manager -> t -> Expr.t
(** Read the diagram back as a Horner-style expression
    ([const + v * linear] at every node); shared nodes produce identical
    sub-expressions, which downstream CSE merges. *)

val pp : manager -> Format.formatter -> t -> unit
