lib/ted/ted.ml: Array Hashtbl List Option Polysynth_expr Polysynth_poly Polysynth_zint String
