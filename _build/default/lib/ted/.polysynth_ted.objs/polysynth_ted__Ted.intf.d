lib/ted/ted.mli: Format Polysynth_expr Polysynth_poly Polysynth_zint
