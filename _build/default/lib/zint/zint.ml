(* Sign-magnitude bignums.  [mag] is little-endian in base 2^30 with no
   leading (high-order) zero limb; [sign] is 0 exactly when [mag] is empty. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows; peel limbs with arithmetic that stays
       within the native range. *)
    let rec limbs acc n =
      if n = 0 then List.rev acc
      else limbs ((n land base_mask) :: acc) (n lsr base_bits)
    in
    let m = if n < 0 then -(n + 1) else n in
    (* magnitude of n is m+1 when negative: handle via int64-free trick *)
    if n < 0 then begin
      let digs = limbs [] m in
      let arr = Array.of_list digs in
      let arr = if Array.length arr = 0 then [| 0 |] else arr in
      (* add 1 back to the magnitude *)
      let len = Array.length arr in
      let out = Array.make (len + 1) 0 in
      Array.blit arr 0 out 0 len;
      let rec carry i =
        if out.(i) = base_mask then begin out.(i) <- 0; carry (i + 1) end
        else out.(i) <- out.(i) + 1
      in
      carry 0;
      normalize sign out
    end
    else normalize sign (Array.of_list (limbs [] m))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign z = z.sign
let is_zero z = z.sign = 0
let is_negative z = z.sign < 0

let is_one z = z.sign = 1 && Array.length z.mag = 1 && z.mag.(0) = 1

let is_even z = z.sign = 0 || z.mag.(0) land 1 = 0

let neg z = if z.sign = 0 then z else { z with sign = -z.sign }
let abs z = if z.sign < 0 then { z with sign = 1 } else z

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let hash z =
  Array.fold_left (fun acc d -> (acc * 65599 + d) land max_int) (z.sign + 2) z.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* magnitude addition *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* magnitude subtraction, requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let p = (ai * b.(j)) + r.(i + j) + !carry in
      r.(i + j) <- p land base_mask;
      carry := p lsr base_bits
    done;
    let rec flush k c =
      if c <> 0 then begin
        let s = r.(k) + c in
        r.(k) <- s land base_mask;
        flush (k + 1) (s lsr base_bits)
      end
    in
    flush (i + lb) !carry
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a n = mul a (of_int n)

let num_bits z =
  let n = Array.length z.mag in
  if n = 0 then 0
  else begin
    let top = z.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

let bit_at mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Magnitude division by binary long division: simple and adequate for the
   moderate operand sizes arising in polynomial synthesis. *)
let divmod_mag a b =
  let nb = num_bits { sign = 1; mag = a } in
  let q = Array.make (Array.length a) 0 in
  let r = ref zero in
  let bz = { sign = 1; mag = b } in
  for i = nb - 1 downto 0 do
    (* r := 2r + bit i of a *)
    let doubled = add !r !r in
    let with_bit =
      if bit_at a i = 1 then add doubled one else doubled
    in
    if compare with_bit bz >= 0 then begin
      r := sub with_bit bz;
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
    else r := with_bit
  done;
  (normalize 1 q, !r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if compare_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    let q = if a.sign * b.sign < 0 then neg q else q in
    let r = if a.sign < 0 then neg r else r in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Zint.divexact: inexact division";
  q

let divides d a =
  if is_zero d then is_zero a else is_zero (rem a d)

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  go (abs a) (abs b)

let lcm a b =
  if is_zero a || is_zero b then zero else abs (mul (div a (gcd a b)) b)

let pow z e =
  if e < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc base) (mul base base) (e lsr 1)
    else go acc (mul base base) (e lsr 1)
  in
  go one z e

let pow2 m =
  if m < 0 then invalid_arg "Zint.pow2: negative exponent";
  pow two m

let factorial n =
  if n < 0 then invalid_arg "Zint.factorial: negative input";
  let rec go acc k = if k > n then acc else go (mul_int acc k) (k + 1) in
  go one 1

let val2 z =
  if is_zero z then invalid_arg "Zint.val2: zero";
  let rec limb i = if z.mag.(i) = 0 then limb (i + 1) else i in
  let i = limb 0 in
  let rec bit v acc = if v land 1 = 1 then acc else bit (v lsr 1) (acc + 1) in
  (i * base_bits) + bit z.mag.(i) 0

let erem_pow2 z m = snd (ediv_rem z (pow2 m))

let to_int_opt z =
  (* Magnitudes up to 2^62 - 1 always fit; min_int (magnitude exactly 2^62,
     negative sign) is the single 63-bit value that also fits. *)
  let bits = num_bits z in
  if bits <= 62 then begin
    let v =
      Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) z.mag 0
    in
    Some (if z.sign < 0 then -v else v)
  end
  else if bits = 63 && z.sign < 0 then begin
    let is_pow2_62 =
      Array.for_all (fun d -> d = 0) (Array.sub z.mag 0 (Array.length z.mag - 1))
      && z.mag.(Array.length z.mag - 1) = 1 lsl (62 - (Array.length z.mag - 1) * base_bits)
    in
    if is_pow2_62 then Some Stdlib.min_int else None
  end
  else None

let to_int_exn z =
  match to_int_opt z with
  | Some n -> n
  | None -> failwith "Zint.to_int_exn: value out of native int range"

let billion = of_int 1_000_000_000

let to_string z =
  if is_zero z then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc v =
      if is_zero v then acc
      else
        let q, r = divmod v billion in
        chunks (to_int_exn r :: acc) q
    in
    match chunks [] (abs z) with
    | [] -> assert false
    | first :: rest ->
      if z.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Zint.of_string: empty string";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | '0' .. '9' -> (false, 0)
    | _ -> invalid_arg "Zint.of_string: malformed literal"
  in
  if start >= len then invalid_arg "Zint.of_string: malformed literal";
  let acc = ref zero in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
    | _ -> invalid_arg "Zint.of_string: malformed literal"
  done;
  if negative then neg !acc else !acc

let pp fmt z = Format.pp_print_string fmt (to_string z)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
