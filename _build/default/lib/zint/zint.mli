(** Arbitrary-precision signed integers.

    The canonical-form and factorization algorithms of the synthesis flow
    manipulate constants such as [2^m], [lambda!] and scaled filter
    coefficients exactly; native [int] overflows for realistic bit-widths, so
    this module provides a self-contained bignum implementation
    (sign-magnitude, base [2^30] limbs).

    All values are immutable.  [compare], [equal] and [hash] are structural
    and consistent with each other. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt z] is [Some n] when [z] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_even : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division, as for native [int]: the quotient rounds toward zero
    and the remainder has the sign of the dividend, with
    [a = q * b + r] and [|r| < |b|].
    @raise Division_by_zero when the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: the remainder is always non-negative. *)

val divexact : t -> t -> t
(** Division known to be exact.
    @raise Invalid_argument if the division leaves a remainder. *)

val divides : t -> t -> bool
(** [divides d a] is [true] when [d] divides [a] ([d] non-zero). *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on a negative exponent. *)

val pow2 : int -> t
(** [pow2 m] is [2^m].  @raise Invalid_argument on negative [m]. *)

val factorial : int -> t
(** @raise Invalid_argument on negative input. *)

val val2 : t -> int
(** 2-adic valuation: the largest [k] with [2^k] dividing the value.
    @raise Invalid_argument on zero. *)

val erem_pow2 : t -> int -> t
(** [erem_pow2 z m] is [z mod 2^m] reduced to [[0, 2^m)]. *)

val num_bits : t -> int
(** Bit length of the magnitude; [num_bits zero = 0]. *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
