lib/zint/zint.mli: Format
