lib/zint/zint.ml: Array Buffer Char Format List Printf Stdlib String
