module Z = Polysynth_zint.Zint

let csd_digits c =
  if Z.sign c <= 0 then invalid_arg "Mcm.csd_digits: non-positive constant";
  (* non-adjacent form, least-significant first *)
  let rec go n shift acc =
    if Z.is_zero n then List.rev acc
    else if Z.is_even n then go (Z.div n Z.two) (shift + 1) acc
    else begin
      let m4 = Z.to_int_exn (Z.erem_pow2 n 2) in
      let d = if m4 = 1 then 1 else -1 in
      let n' = Z.div (Z.sub n (Z.of_int d)) Z.two in
      go n' (shift + 1) ((d, shift) :: acc)
    end
  in
  go c 0 []

(* A digit of a partial decomposition: sign * 2^shift * term, where term 0
   is the group operand itself and term i>0 is the i-th shared partial. *)
type digit = { sign : int; shift : int; term : int }

(* a shared partial term: base1 + pattern_sign * 2^delta * base2 *)
type partial = { t1 : int; t2 : int; psign : int; delta : int }

(* normalized two-digit pattern *)
let pattern_of d1 d2 =
  let lo, hi = if d1.shift <= d2.shift then (d1, d2) else (d2, d1) in
  { t1 = lo.term; t2 = hi.term; psign = lo.sign * hi.sign;
    delta = hi.shift - lo.shift }

module PatMap = Map.Make (struct
  type t = partial

  let compare = Stdlib.compare
end)

(* Hartley-style extraction: repeatedly materialize the most frequent
   two-digit pattern across the group's digit strings. *)
let share_group digit_lists =
  let partials = ref [] in
  let num_partials = ref 0 in
  let lists = ref digit_lists in
  let changed = ref true in
  while !changed do
    changed := false;
    (* count each pattern's (non-overlapping, greedy) occurrences *)
    let counts = ref PatMap.empty in
    List.iter
      (fun digits ->
        let arr = Array.of_list digits in
        let n = Array.length arr in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let p = pattern_of arr.(i) arr.(j) in
            counts :=
              PatMap.update p
                (function None -> Some 1 | Some k -> Some (k + 1))
                !counts
          done
        done)
      !lists;
    let best =
      PatMap.fold
        (fun p k best ->
          match best with
          | Some (_, kb) when kb >= k -> best
          | _ when k >= 2 -> Some (p, k)
          | other -> other)
        !counts None
    in
    match best with
    | None -> ()
    | Some (p, _) ->
      incr num_partials;
      let pid = !num_partials in
      partials := !partials @ [ p ];
      (* replace non-overlapping occurrences in every digit string *)
      let replace digits =
        let arr = Array.of_list digits in
        let used = Array.make (Array.length arr) false in
        let out = ref [] in
        let n = Array.length arr in
        for i = 0 to n - 1 do
          if not used.(i) then begin
            let found = ref false in
            for j = i + 1 to n - 1 do
              if (not !found) && not used.(j) then
                if pattern_of arr.(i) arr.(j) = p then begin
                  found := true;
                  used.(i) <- true;
                  used.(j) <- true;
                  let lo =
                    if arr.(i).shift <= arr.(j).shift then arr.(i) else arr.(j)
                  in
                  (* the pair equals lo.sign * 2^lo.shift * P *)
                  out := { sign = lo.sign; shift = lo.shift; term = pid } :: !out
                end
            done;
            if not !found && not used.(i) then begin
              used.(i) <- true;
              out := arr.(i) :: !out
            end
          end
        done;
        List.rev !out
      in
      lists := List.map replace !lists;
      changed := true
  done;
  (!partials, !lists)

(* ---- netlist rewriting ------------------------------------------------------ *)

type builder = {
  mutable cells : Netlist.cell list;  (* reversed *)
  mutable next : int;
}

let emit b op fanin =
  let id = b.next in
  b.next <- id + 1;
  b.cells <- { Netlist.id; op; fanin } :: b.cells;
  id

let emit_shifted b base shift =
  if shift = 0 then base else emit b (Netlist.Shl shift) [ base ]

(* value of a digit string over resolved term ids *)
let emit_digit_sum b term_ids digits =
  match digits with
  | [] -> emit b (Netlist.Constant Z.zero) []
  | _ ->
    let pos, neg = List.partition (fun d -> d.sign > 0) digits in
    let sum_side side =
      match side with
      | [] -> None
      | first :: rest ->
        let start = emit_shifted b term_ids.(first.term) first.shift in
        Some
          (List.fold_left
             (fun acc d ->
               emit b Netlist.Add2
                 [ acc; emit_shifted b term_ids.(d.term) d.shift ])
             start rest)
    in
    (match sum_side pos, sum_side neg with
     | Some p, Some n -> emit b Netlist.Sub2 [ p; n ]
     | Some p, None -> p
     | None, Some n -> emit b Netlist.Negate [ n ]
     | None, None -> assert false)

let optimize (n : Netlist.t) =
  (* group Cmult cells by operand *)
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun cell ->
      match cell.Netlist.op with
      | Netlist.Cmult c when Z.sign c > 0 && not (Z.is_one c) ->
        let operand = List.hd cell.Netlist.fanin in
        let prev =
          match Hashtbl.find_opt groups operand with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace groups operand (prev @ [ (cell.Netlist.id, c) ])
      | _ -> ())
    n.Netlist.cells;
  (* plan sharing per group *)
  let plans = Hashtbl.create 8 in
  Hashtbl.iter
    (fun operand members ->
      let digit_lists =
        List.map (fun (_, c) -> csd_digits c)
          (List.map (fun (id, c) -> (id, c)) members)
      in
      let digit_lists =
        List.map
          (List.map (fun (s, k) -> { sign = s; shift = k; term = 0 }))
          digit_lists
      in
      let partials, final = share_group digit_lists in
      Hashtbl.replace plans operand (members, partials, final))
    groups;
  let b = { cells = []; next = 0 } in
  let id_map = Hashtbl.create 64 in
  let resolve i = Hashtbl.find id_map i in
  let emitted_groups = Hashtbl.create 8 in
  Array.iter
    (fun cell ->
      let open Netlist in
      (* if this cell's id belongs to a planned group, expand *)
      let in_group =
        match cell.op with
        | Cmult c when Z.sign c > 0 && not (Z.is_one c) ->
          Hashtbl.fold
            (fun operand (members, _, _) acc ->
              if List.mem_assoc cell.id members then Some operand else acc)
            plans None
        | _ -> None
      in
      match in_group with
      | Some operand ->
        let members, partials, finals = Hashtbl.find plans operand in
        (* materialize the shared partial terms once per group *)
        let term_ids =
          match Hashtbl.find_opt emitted_groups operand with
          | Some t -> t
          | None ->
            let term_ids = Array.make (List.length partials + 1) 0 in
            term_ids.(0) <- resolve operand;
            List.iteri
              (fun i p ->
                let base1 = term_ids.(p.t1) in
                let base2 = emit_shifted b term_ids.(p.t2) p.delta in
                let id =
                  if p.psign > 0 then emit b Add2 [ base1; base2 ]
                  else emit b Sub2 [ base1; base2 ]
                in
                term_ids.(i + 1) <- id)
              partials;
            Hashtbl.replace emitted_groups operand term_ids;
            term_ids
        in
        let index =
          let rec find i = function
            | [] -> assert false
            | (id, _) :: rest -> if id = cell.id then i else find (i + 1) rest
          in
          find 0 members
        in
        let digits = List.nth finals index in
        Hashtbl.replace id_map cell.id (emit_digit_sum b term_ids digits)
      | None ->
        let new_id =
          emit b cell.op (List.map resolve cell.fanin)
        in
        Hashtbl.replace id_map cell.id new_id)
    n.Netlist.cells;
  {
    Netlist.cells = Array.of_list (List.rev b.cells);
    outputs = List.map (fun (name, i) -> (name, resolve i)) n.Netlist.outputs;
    width = n.Netlist.width;
  }
