module Z = Polysynth_zint.Zint

type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let emit ?(module_name = "polysynth") ?(vectors = 16) ?(seed = 1)
    (n : Netlist.t) =
  let w = n.Netlist.width in
  let rng = make_rng seed in
  let inputs = List.map Verilog.legalize (Netlist.inputs n) in
  let raw_inputs = Netlist.inputs n in
  let outputs = List.map (fun (name, _) -> Verilog.legalize name) n.Netlist.outputs in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "`timescale 1ns/1ps\n";
  add "module %s_tb;\n" (Verilog.legalize module_name);
  List.iter (fun v -> add "  reg  signed [%d:0] %s;\n" (w - 1) v) inputs;
  List.iter (fun o -> add "  wire signed [%d:0] %s;\n" (w - 1) o) outputs;
  add "  integer errors = 0;\n";
  add "  %s dut (%s);\n"
    (Verilog.legalize module_name)
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf ".%s(%s)" p p) (inputs @ outputs)));
  add "  initial begin\n";
  for _ = 1 to vectors do
    let assignment =
      List.map
        (fun v ->
          let hi = next rng (1 lsl 30) and lo = next rng (1 lsl 30) in
          let value =
            Z.erem_pow2
              (Z.add (Z.mul (Z.of_int hi) (Z.pow2 30)) (Z.of_int lo))
              w
          in
          (v, value))
        raw_inputs
    in
    List.iter
      (fun (v, value) ->
        add "    %s = %d'd%s;\n" (Verilog.legalize v) w (Z.to_string value))
      assignment;
    add "    #1;\n";
    let env v =
      match List.assoc_opt v assignment with Some x -> x | None -> Z.zero
    in
    let expected = Netlist.eval n env in
    List.iter
      (fun (name, _) ->
        let value = List.assoc name expected in
        add
          "    if (%s !== %d'd%s) begin errors = errors + 1; $display(\"FAIL \
           %s: got %%0d expected %s\", %s); end\n"
          (Verilog.legalize name) w (Z.to_string value) (Verilog.legalize name)
          (Z.to_string value) (Verilog.legalize name))
      n.Netlist.outputs
  done;
  add "    if (errors == 0) $display(\"PASS: all %d vectors\");\n" vectors;
  add "    else $display(\"FAIL: %%0d mismatches\", errors);\n";
  add "    $finish;\n";
  add "  end\n";
  add "endmodule\n";
  Buffer.contents buf
