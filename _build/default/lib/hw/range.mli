(** Value-range (interval) analysis of a netlist over the integers.

    Treating the inputs as unsigned [width]-bit values (or custom
    intervals), computes the exact reachable interval of every cell output
    {e before} wrap-around, and from it the bit-width each intermediate
    wire would need to avoid overflow.  This answers the practical RTL
    question the paper's fixed-width model raises: how much precision do
    the intermediate building blocks of a decomposition need? *)

module Z := Polysynth_zint.Zint

type interval = { lo : Z.t; hi : Z.t }

val analyze :
  ?input_range:(string -> interval) -> Netlist.t -> interval array
(** Interval of every cell, indexed by cell id.  The default input range
    is unsigned full-scale: [[0, 2^width - 1]]. *)

val required_width : interval -> int
(** Bits of a two's-complement representation holding every value of the
    interval (at least 1). *)

val max_required_width :
  ?input_range:(string -> interval) -> Netlist.t -> int
(** The widest intermediate the decomposition produces. *)

val growth :
  ?input_range:(string -> interval) -> Netlist.t -> int
(** [max_required_width] minus the nominal datapath width (0 when nothing
    outgrows the datapath). *)
