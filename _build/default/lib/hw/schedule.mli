(** Resource-constrained operation scheduling.

    After a decomposition is chosen, high-level synthesis maps its operator
    DAG onto a limited number of functional units over clock steps.  This
    module provides ASAP/ALAP analyses and a priority list scheduler
    (least-slack first), which exposes the area/latency trade-off of a
    decomposition: heavily shared building blocks serialize and need more
    steps on narrow resource budgets. *)

type resources = {
  multipliers : int;  (** general multipliers available per step *)
  adders : int;  (** adder/subtractor/constant-multiplier units per step *)
}

val unlimited : resources

type latency_model = {
  mult_cycles : int;  (** >= 1 *)
  add_cycles : int;  (** >= 1; used for adds, subs and constant mults *)
}

val default_latency : latency_model
(** Two-cycle multipliers, single-cycle adders. *)

type schedule = {
  start_step : int array;  (** indexed by cell id; inputs/constants at 0 *)
  latency : int;  (** first step at which every output is available *)
  steps_used : int;
}

val asap : ?latency_model:latency_model -> Netlist.t -> int array
(** Earliest start step of every cell. *)

val critical_path_latency : ?latency_model:latency_model -> Netlist.t -> int
(** Latency with unlimited resources. *)

val list_schedule :
  ?latency_model:latency_model -> resources -> Netlist.t -> schedule
(** Priority list scheduling; ties broken deterministically by cell id.
    @raise Invalid_argument when a resource class has fewer than one
    unit. *)

val is_valid : ?latency_model:latency_model -> resources -> Netlist.t -> schedule -> bool
(** Checker used by the tests: dependences respected, per-step resource
    usage within bounds. *)
