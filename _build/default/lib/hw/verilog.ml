module Z = Polysynth_zint.Zint

let legalize name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf '_';
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "_" else Buffer.contents buf

let emit ?(module_name = "polysynth") (n : Netlist.t) =
  let open Netlist in
  let m = n.width in
  let buf = Buffer.create 1024 in
  let inputs = Netlist.inputs n in
  let out_names = List.map (fun (name, _) -> legalize name) n.outputs in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" (legalize module_name));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  input  signed [%d:0] %s,\n" (m - 1) (legalize v)))
    inputs;
  List.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "  output signed [%d:0] %s%s\n" (m - 1) name
           (if i = List.length out_names - 1 then "" else ",")))
    out_names;
  Buffer.add_string buf ");\n";
  let wire id = Printf.sprintf "n%d" id in
  Array.iter
    (fun cell ->
      let arg k = wire (List.nth cell.fanin k) in
      let rhs =
        match cell.op with
        | Input v -> legalize v
        | Constant c ->
          let v = Z.erem_pow2 c m in
          Printf.sprintf "%d'd%s" m (Z.to_string v)
        | Negate -> Printf.sprintf "-%s" (arg 0)
        | Add2 -> Printf.sprintf "%s + %s" (arg 0) (arg 1)
        | Sub2 -> Printf.sprintf "%s - %s" (arg 0) (arg 1)
        | Mult2 -> Printf.sprintf "%s * %s" (arg 0) (arg 1)
        | Cmult c ->
          let v = Z.erem_pow2 c m in
          Printf.sprintf "%d'd%s * %s" m (Z.to_string v) (arg 0)
        | Shl k -> Printf.sprintf "%s <<< %d" (arg 0) k
      in
      Buffer.add_string buf
        (Printf.sprintf "  wire signed [%d:0] %s = %s;\n" (m - 1) (wire cell.id)
           rhs))
    n.cells;
  List.iter2
    (fun (_, id) name ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" name (wire id)))
    n.outputs out_names;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let emit_prog ?module_name ~width prog =
  emit ?module_name (Netlist.of_prog ~width prog)
