(** Technology cost model: the stand-in for the paper's Synopsys Design
    Compiler runs.

    Area is reported in gate equivalents and delay in abstract gate-delay
    units.  The default model uses textbook datapath shapes: an array
    multiplier quadratic in the width, carry-lookahead-style adders linear
    in the width with logarithmic delay, and constant multipliers
    synthesized as CSD (canonical signed digit) shift-add networks whose
    size follows the number of non-zero digits of the constant.  Absolute
    numbers differ from a real standard-cell flow, but relative comparisons
    between decompositions — which is what Table 14.3 reports — are driven
    by operator counts and DAG depth, which are exact here. *)

module Z := Polysynth_zint.Zint

type model = {
  mult_area : int -> int;
  cmult_area : int -> Z.t -> int;
  add_area : int -> int;
  neg_area : int -> int;
  mult_delay : int -> float;
  cmult_delay : int -> Z.t -> float;
  add_delay : int -> float;
  neg_delay : int -> float;
  fanout_delay : float;
      (** extra delay per additional load on a cell's output; this is what
          makes widely shared building blocks slower than duplicated
          logic, reproducing the area-vs-delay trade of Table 14.3 *)
}

val default : model

val csd_digits : Z.t -> int
(** Number of non-zero digits in the canonical signed-digit (non-adjacent
    form) representation; 0 for zero, 1 for powers of two. *)

type report = {
  area : int;  (** total gate equivalents *)
  delay : float;  (** critical path through the netlist *)
  num_mults : int;  (** general multipliers *)
  num_cmults : int;  (** constant multipliers *)
  num_adds : int;  (** adders and subtractors *)
}

val total_operators : report -> int

val of_netlist : ?model:model -> Netlist.t -> report

val of_prog : ?model:model -> width:int -> Polysynth_expr.Prog.t -> report

val pp_report : Format.formatter -> report -> unit
