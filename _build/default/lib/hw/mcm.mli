(** Multiple-constant multiplication (MCM) optimization.

    Constant multiplications dominate polynomial datapaths, and when one
    value feeds several of them (e.g. the shared [x*y] node of a
    Savitzky-Golay bank multiplied by 4, 12 and 36) their shift-add
    networks can share partial terms.  This pass rewrites every group of
    [Cmult] cells with a common operand into an explicit network of
    shifts, adders and subtractors, sharing sub-patterns across the group
    with Hartley-style common-subexpression extraction on the CSD digit
    strings.  Single constant multiplications are lowered too (cost
    neutral: the cost model already prices a lone [Cmult] as its CSD
    adder count). *)

module Z := Polysynth_zint.Zint

val csd_digits : Z.t -> (int * int) list
(** Canonical-signed-digit decomposition of a positive constant:
    [(sign, shift)] pairs with sign in {-1, +1}, increasing shift, such
    that [c = sum sign * 2^shift].  @raise Invalid_argument on
    non-positive input. *)

val optimize : Netlist.t -> Netlist.t
(** Rewrite all constant multiplications as shared shift-add networks.
    The result computes the same outputs ({!Netlist.eval}-equivalent). *)
