module Z = Polysynth_zint.Zint

type interval = { lo : Z.t; hi : Z.t }

let point v = { lo = v; hi = v }

let add_iv a b = { lo = Z.add a.lo b.lo; hi = Z.add a.hi b.hi }

let neg_iv a = { lo = Z.neg a.hi; hi = Z.neg a.lo }

let sub_iv a b = add_iv a (neg_iv b)

let mul_iv a b =
  let products =
    [ Z.mul a.lo b.lo; Z.mul a.lo b.hi; Z.mul a.hi b.lo; Z.mul a.hi b.hi ]
  in
  {
    lo = List.fold_left Z.min (List.hd products) (List.tl products);
    hi = List.fold_left Z.max (List.hd products) (List.tl products);
  }

let analyze ?input_range (n : Netlist.t) =
  let default_input _ =
    { lo = Z.zero; hi = Z.sub (Z.pow2 n.Netlist.width) Z.one }
  in
  let input_range = Option.value input_range ~default:default_input in
  let ranges = Array.make (Array.length n.Netlist.cells) (point Z.zero) in
  Array.iter
    (fun cell ->
      let arg k = ranges.(List.nth cell.Netlist.fanin k) in
      let iv =
        match cell.Netlist.op with
        | Netlist.Input v -> input_range v
        | Netlist.Constant c -> point c
        | Netlist.Negate -> neg_iv (arg 0)
        | Netlist.Add2 -> add_iv (arg 0) (arg 1)
        | Netlist.Sub2 -> sub_iv (arg 0) (arg 1)
        | Netlist.Mult2 -> mul_iv (arg 0) (arg 1)
        | Netlist.Cmult c -> mul_iv (point c) (arg 0)
        | Netlist.Shl k -> mul_iv (point (Z.pow2 k)) (arg 0)
      in
      ranges.(cell.Netlist.id) <- iv)
    n.Netlist.cells;
  ranges

let required_width iv =
  (* two's complement: need hi <= 2^(w-1) - 1 and lo >= -2^(w-1) *)
  let rec search w =
    let top = Z.sub (Z.pow2 (w - 1)) Z.one in
    let bottom = Z.neg (Z.pow2 (w - 1)) in
    if Z.compare iv.hi top <= 0 && Z.compare iv.lo bottom >= 0 then w
    else search (w + 1)
  in
  search 1

let max_required_width ?input_range n =
  let ranges = analyze ?input_range n in
  Array.fold_left (fun acc iv -> Stdlib.max acc (required_width iv)) 1 ranges

let growth ?input_range n =
  Stdlib.max 0 (max_required_width ?input_range n - n.Netlist.width)
