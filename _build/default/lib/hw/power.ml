module Z = Polysynth_zint.Zint

type report = {
  dynamic : float;
  leakage : float;
  total : float;
  per_cell_activity : float array;
}

(* deterministic xorshift, as elsewhere in the project *)
type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let hamming_distance a b w =
  (* both already reduced into [0, 2^w) *)
  let rec go i acc =
    if i >= w then acc
    else
      let bit z =
        Z.to_int_exn (Z.erem_pow2 (Z.div z (Z.pow2 i)) 1)
      in
      go (i + 1) (acc + if bit a <> bit b then 1 else 0)
  in
  go 0 0

let cell_values (n : Netlist.t) env =
  let values = Array.make (Array.length n.Netlist.cells) Z.zero in
  let clamp v = Z.erem_pow2 v n.Netlist.width in
  Array.iter
    (fun cell ->
      let arg k = values.(List.nth cell.Netlist.fanin k) in
      let v =
        match cell.Netlist.op with
        | Netlist.Input v -> env v
        | Netlist.Constant c -> c
        | Netlist.Negate -> Z.neg (arg 0)
        | Netlist.Add2 -> Z.add (arg 0) (arg 1)
        | Netlist.Sub2 -> Z.sub (arg 0) (arg 1)
        | Netlist.Mult2 -> Z.mul (arg 0) (arg 1)
        | Netlist.Cmult c -> Z.mul c (arg 0)
        | Netlist.Shl k -> Z.mul (Z.pow2 k) (arg 0)
      in
      values.(cell.Netlist.id) <- clamp v)
    n.Netlist.cells;
  values

let cell_area (model : Cost.model) width op =
  match op with
  | Netlist.Input _ | Netlist.Constant _ -> 0
  | Netlist.Negate -> model.Cost.neg_area width
  | Netlist.Add2 | Netlist.Sub2 -> model.Cost.add_area width
  | Netlist.Mult2 -> model.Cost.mult_area width
  | Netlist.Cmult c -> model.Cost.cmult_area width c
  | Netlist.Shl _ -> 0

let estimate ?(samples = 64) ?(seed = 1) (n : Netlist.t) =
  if samples < 1 then invalid_arg "Power.estimate: samples < 1";
  let w = n.Netlist.width in
  let rng = make_rng seed in
  let inputs = Netlist.inputs n in
  let random_env () =
    let bindings =
      List.map
        (fun v ->
          (* two limbs so widths above 30 still get full-range values *)
          let hi = next rng (1 lsl 30) and lo = next rng (1 lsl 30) in
          let value =
            Z.erem_pow2 (Z.add (Z.mul (Z.of_int hi) (Z.pow2 30)) (Z.of_int lo)) w
          in
          (v, value))
        inputs
    in
    fun v ->
      match List.assoc_opt v bindings with Some x -> x | None -> Z.zero
  in
  let num_cells = Array.length n.Netlist.cells in
  let toggles = Array.make num_cells 0 in
  let prev = ref (cell_values n (random_env ())) in
  for _ = 1 to samples do
    let current = cell_values n (random_env ()) in
    Array.iteri
      (fun i v -> toggles.(i) <- toggles.(i) + hamming_distance !prev.(i) v w)
      current;
    prev := current
  done;
  let per_cell_activity =
    Array.map (fun t -> float_of_int t /. float_of_int samples) toggles
  in
  let model = Cost.default in
  let dynamic =
    Array.fold_left
      (fun acc cell ->
        acc
        +. per_cell_activity.(cell.Netlist.id)
           *. float_of_int (cell_area model w cell.Netlist.op))
      0.0 n.Netlist.cells
  in
  let total_area =
    Array.fold_left
      (fun acc cell -> acc + cell_area model w cell.Netlist.op)
      0 n.Netlist.cells
  in
  let leakage = 0.01 *. float_of_int total_area in
  { dynamic; leakage; total = dynamic +. leakage; per_cell_activity }

let pp_report fmt r =
  Format.fprintf fmt "power: dynamic=%.1f leakage=%.1f total=%.1f" r.dynamic
    r.leakage r.total
