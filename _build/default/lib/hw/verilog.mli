(** Structural Verilog emission for a synthesized decomposition.

    Mirrors the paper's hand-off of each decomposition to a logic-synthesis
    tool: the generated module computes every output of the polynomial
    system with wrap-around [width]-bit arithmetic, one wire per operator
    cell.  The module is self-contained synthesizable Verilog-2001. *)

val emit : ?module_name:string -> Netlist.t -> string

val emit_prog :
  ?module_name:string -> width:int -> Polysynth_expr.Prog.t -> string

val legalize : string -> string
(** Make an arbitrary signal name a legal Verilog identifier (used for
    inputs/outputs whose names contain characters like [~]). *)
