type staging = {
  stage_of : int array;
  num_stages : int;
  pipeline_registers : int;
  achieved_period : float;
}

let cell_delay (model : Cost.model) width op =
  match (op : Netlist.op) with
  | Netlist.Input _ | Netlist.Constant _ | Netlist.Shl _ -> 0.0
  | Netlist.Negate -> model.Cost.neg_delay width
  | Netlist.Add2 | Netlist.Sub2 -> model.Cost.add_delay width
  | Netlist.Mult2 -> model.Cost.mult_delay width
  | Netlist.Cmult c -> model.Cost.cmult_delay width c

let cut ?(model = Cost.default) ~target_period (n : Netlist.t) =
  if target_period <= 0.0 then invalid_arg "Stage.cut: non-positive period";
  let cells = n.Netlist.cells in
  let num = Array.length cells in
  let stage_of = Array.make num 0 in
  let arrival = Array.make num 0.0 in
  let w = n.Netlist.width in
  Array.iter
    (fun cell ->
      let i = cell.Netlist.id in
      let d = cell_delay model w cell.Netlist.op in
      (* candidate stage: the latest fanin stage *)
      let s0 =
        List.fold_left
          (fun acc src -> Stdlib.max acc stage_of.(src))
          0 cell.Netlist.fanin
      in
      (* arrival within stage s0: inputs from earlier stages arrive at 0
         (registered), same-stage inputs at their arrival time *)
      let input_arrival s =
        List.fold_left
          (fun acc src ->
            if stage_of.(src) < s then acc else Stdlib.max acc arrival.(src))
          0.0 cell.Netlist.fanin
      in
      let a0 = input_arrival s0 +. d in
      if a0 <= target_period || input_arrival s0 = 0.0 then begin
        (* keep it in s0; a lone slow operator stays even when it blows
           the period (it cannot be split) *)
        stage_of.(i) <- s0;
        arrival.(i) <- a0
      end
      else begin
        stage_of.(i) <- s0 + 1;
        arrival.(i) <- d
      end)
    cells;
  let num_stages =
    1 + Array.fold_left Stdlib.max 0 stage_of
  in
  (* registers: for each value, the number of boundaries it crosses up to
     its furthest consumer *)
  let furthest = Array.make num (-1) in
  Array.iter
    (fun cell ->
      List.iter
        (fun src ->
          furthest.(src) <- Stdlib.max furthest.(src) stage_of.(cell.Netlist.id))
        cell.Netlist.fanin)
    cells;
  List.iter
    (fun (_, i) -> furthest.(i) <- Stdlib.max furthest.(i) (num_stages - 1))
    n.Netlist.outputs;
  let pipeline_registers = ref 0 in
  Array.iter
    (fun cell ->
      let i = cell.Netlist.id in
      if furthest.(i) > stage_of.(i) then
        pipeline_registers := !pipeline_registers + (furthest.(i) - stage_of.(i)))
    cells;
  let achieved_period = Array.fold_left Stdlib.max 0.0 arrival in
  { stage_of; num_stages; pipeline_registers = !pipeline_registers; achieved_period }

let is_valid ?(model = Cost.default) (n : Netlist.t) s =
  let cells = n.Netlist.cells in
  let w = n.Netlist.width in
  let ok = ref true in
  (* monotone stages along edges *)
  Array.iter
    (fun cell ->
      List.iter
        (fun src ->
          if s.stage_of.(src) > s.stage_of.(cell.Netlist.id) then ok := false)
        cell.Netlist.fanin)
    cells;
  (* per-stage critical path <= achieved_period *)
  let arrival = Array.make (Array.length cells) 0.0 in
  Array.iter
    (fun cell ->
      let i = cell.Netlist.id in
      let d = cell_delay model w cell.Netlist.op in
      let a =
        List.fold_left
          (fun acc src ->
            if s.stage_of.(src) < s.stage_of.(i) then acc
            else Stdlib.max acc arrival.(src))
          0.0 cell.Netlist.fanin
        +. d
      in
      arrival.(i) <- a;
      if a > s.achieved_period +. 1e-9 then ok := false)
    cells;
  !ok
