lib/hw/cost.mli: Format Netlist Polysynth_expr Polysynth_zint
