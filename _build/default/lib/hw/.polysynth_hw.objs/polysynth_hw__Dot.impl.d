lib/hw/dot.ml: Array Buffer List Netlist Polysynth_zint Printf String
