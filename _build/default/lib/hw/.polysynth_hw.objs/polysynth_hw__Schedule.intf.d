lib/hw/schedule.mli: Netlist
