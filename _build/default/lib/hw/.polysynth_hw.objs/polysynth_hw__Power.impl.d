lib/hw/power.ml: Array Cost Format List Netlist Polysynth_zint
