lib/hw/fsmd.ml: Array Bind Buffer List Netlist Polysynth_zint Printf Schedule Stdlib String Verilog
