lib/hw/fsmd.mli: Netlist Polysynth_zint Schedule
