lib/hw/testbench.ml: Buffer List Netlist Polysynth_zint Printf String Verilog
