lib/hw/cost.ml: Array Float Format List Netlist Polysynth_zint Stdlib
