lib/hw/cemit.mli: Netlist
