lib/hw/verilog.mli: Netlist Polysynth_expr
