lib/hw/cemit.ml: Array Buffer List Netlist Polysynth_zint Printf String Verilog
