lib/hw/range.ml: Array List Netlist Option Polysynth_zint Stdlib
