lib/hw/mcm.ml: Array Hashtbl List Map Netlist Polysynth_zint Stdlib
