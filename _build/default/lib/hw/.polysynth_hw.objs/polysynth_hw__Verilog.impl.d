lib/hw/verilog.ml: Array Buffer List Netlist Polysynth_zint Printf String
