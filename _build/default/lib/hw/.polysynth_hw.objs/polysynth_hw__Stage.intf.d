lib/hw/stage.mli: Cost Netlist
