lib/hw/mcm.mli: Netlist Polysynth_zint
