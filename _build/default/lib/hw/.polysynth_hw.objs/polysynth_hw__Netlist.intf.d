lib/hw/netlist.mli: Polysynth_expr Polysynth_zint
