lib/hw/bind.ml: Array Hashtbl List Netlist Schedule Stdlib
