lib/hw/stage.ml: Array Cost List Netlist Stdlib
