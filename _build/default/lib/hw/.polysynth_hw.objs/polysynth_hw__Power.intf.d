lib/hw/power.mli: Format Netlist
