lib/hw/testbench.mli: Netlist
