lib/hw/schedule.ml: Array List Netlist Stdlib
