lib/hw/bind.mli: Netlist Schedule
