lib/hw/dot.mli: Netlist
