lib/hw/range.mli: Netlist Polysynth_zint
