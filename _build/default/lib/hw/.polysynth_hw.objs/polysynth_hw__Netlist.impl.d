lib/hw/netlist.ml: Array Hashtbl List Polysynth_expr Polysynth_zint String
