type binding = {
  unit_of : (int * int) array;
  register_of : int array;
  num_multipliers : int;
  num_adders : int;
  num_registers : int;
  mux_inputs : int;
}

type unit_class = Free | Mult_unit | Add_unit

let class_of op =
  match (op : Netlist.op) with
  | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate | Netlist.Shl _ ->
    Free
  | Netlist.Mult2 -> Mult_unit
  | Netlist.Add2 | Netlist.Sub2 | Netlist.Cmult _ -> Add_unit

let class_code = function Free -> 0 | Mult_unit -> 1 | Add_unit -> 2

let duration (lm : Schedule.latency_model) op =
  match class_of op with
  | Free -> 0
  | Mult_unit -> lm.Schedule.mult_cycles
  | Add_unit -> lm.Schedule.add_cycles

let bind ?(latency_model = Schedule.default_latency) _resources
    (n : Netlist.t) (s : Schedule.schedule) =
  let cells = n.Netlist.cells in
  let num = Array.length cells in
  if Array.length s.Schedule.start_step <> num then
    invalid_arg "Bind.bind: schedule does not match the netlist";
  let lm = latency_model in
  (* ---- functional units: greedy reuse in (start step, id) order ------- *)
  let unit_of = Array.make num (0, 0) in
  let assign cls =
    (* busy-until time per allocated unit of this class *)
    let units : int ref list ref = ref [] in
    let order =
      Array.to_list cells
      |> List.filter (fun c -> class_of c.Netlist.op = cls)
      |> List.sort (fun a b ->
             let sa = s.Schedule.start_step.(a.Netlist.id)
             and sb = s.Schedule.start_step.(b.Netlist.id) in
             if sa <> sb then Stdlib.compare sa sb
             else Stdlib.compare a.Netlist.id b.Netlist.id)
    in
    List.iter
      (fun cell ->
        let t = s.Schedule.start_step.(cell.Netlist.id) in
        let fin = t + duration lm cell.Netlist.op in
        let rec find i = function
          | [] ->
            units := !units @ [ ref fin ];
            i
          | u :: rest ->
            if !u <= t then begin
              u := fin;
              i
            end
            else find (i + 1) rest
        in
        let idx = find 0 !units in
        unit_of.(cell.Netlist.id) <- (class_code cls, idx))
      order;
    List.length !units
  in
  let num_multipliers = assign Mult_unit in
  let num_adders = assign Add_unit in
  (* ---- registers: left-edge on lifetimes ------------------------------- *)
  (* a value is alive from its finish step to the latest start step of a
     consumer; it needs a register iff that interval is non-empty *)
  let finish i = s.Schedule.start_step.(i) + duration lm cells.(i).Netlist.op in
  let last_use = Array.make num (-1) in
  Array.iter
    (fun cell ->
      List.iter
        (fun src ->
          last_use.(src) <-
            Stdlib.max last_use.(src) s.Schedule.start_step.(cell.Netlist.id))
        cell.Netlist.fanin)
    cells;
  (* outputs stay alive to the end *)
  List.iter
    (fun (_, i) -> last_use.(i) <- Stdlib.max last_use.(i) s.Schedule.latency)
    n.Netlist.outputs;
  let needs_register i =
    match class_of cells.(i).Netlist.op with
    | Free -> false (* wires/constants/inputs are always available *)
    | Mult_unit | Add_unit -> last_use.(i) > finish i || last_use.(i) < 0
  in
  let intervals =
    Array.to_list cells
    |> List.filter_map (fun c ->
           let i = c.Netlist.id in
           if needs_register i && last_use.(i) >= 0 then
             Some (i, finish i, last_use.(i))
           else None)
    |> List.sort (fun (_, a, _) (_, b, _) -> Stdlib.compare a b)
  in
  let register_of = Array.make num (-1) in
  let registers : int ref list ref = ref [] in
  List.iter
    (fun (i, start, stop) ->
      let rec find k = function
        | [] ->
          registers := !registers @ [ ref stop ];
          k
        | r :: rest -> if !r < start then begin r := stop; k end else find (k + 1) rest
      in
      register_of.(i) <- find 0 !registers)
    intervals;
  (* ---- mux inputs: distinct sources per (unit, port) -------------------- *)
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun cell ->
      match class_of cell.Netlist.op with
      | Free -> ()
      | Mult_unit | Add_unit ->
        List.iteri
          (fun port src ->
            let key = (unit_of.(cell.Netlist.id), port) in
            let prev =
              match Hashtbl.find_opt tbl key with Some s -> s | None -> []
            in
            if not (List.mem src prev) then
              Hashtbl.replace tbl key (src :: prev))
          cell.Netlist.fanin)
    cells;
  let mux_inputs = Hashtbl.fold (fun _ srcs acc -> acc + List.length srcs) tbl 0 in
  {
    unit_of;
    register_of;
    num_multipliers;
    num_adders;
    num_registers = List.length !registers;
    mux_inputs;
  }

let is_consistent (n : Netlist.t) (s : Schedule.schedule) b =
  let cells = n.Netlist.cells in
  let num = Array.length cells in
  let lm = Schedule.default_latency in
  let ok = ref true in
  (* units: no temporal overlap on the same physical unit *)
  for i = 0 to num - 1 do
    for j = i + 1 to num - 1 do
      let ci = cells.(i) and cj = cells.(j) in
      if
        class_of ci.Netlist.op <> Free
        && b.unit_of.(i) = b.unit_of.(j)
        && class_of ci.Netlist.op = class_of cj.Netlist.op
      then begin
        let si = s.Schedule.start_step.(i)
        and sj = s.Schedule.start_step.(j) in
        let fi = si + duration lm ci.Netlist.op
        and fj = sj + duration lm cj.Netlist.op in
        if si < fj && sj < fi then ok := false
      end
    done
  done;
  (* registers: overlapping lifetimes never share *)
  let finish i = s.Schedule.start_step.(i) + duration lm cells.(i).Netlist.op in
  let last_use = Array.make num (-1) in
  Array.iter
    (fun cell ->
      List.iter
        (fun src ->
          last_use.(src) <-
            Stdlib.max last_use.(src) s.Schedule.start_step.(cell.Netlist.id))
        cell.Netlist.fanin)
    cells;
  List.iter
    (fun (_, i) -> last_use.(i) <- Stdlib.max last_use.(i) s.Schedule.latency)
    n.Netlist.outputs;
  for i = 0 to num - 1 do
    for j = i + 1 to num - 1 do
      if
        b.register_of.(i) >= 0
        && b.register_of.(i) = b.register_of.(j)
        && finish i < last_use.(j)
        && finish j < last_use.(i)
      then ok := false
    done
  done;
  !ok
