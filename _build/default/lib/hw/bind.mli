(** Resource binding: map a scheduled netlist onto concrete functional
    units and registers.

    After {!Schedule} assigns start steps, binding decides which physical
    multiplier/adder executes each operation (greedy reuse in step order)
    and allocates registers for values that must survive across steps
    (left-edge algorithm on lifetime intervals).  The report quantifies
    the resource side of a decomposition: fewer operations generally mean
    fewer units, but heavy sharing lengthens lifetimes and can cost
    registers and multiplexing. *)

type binding = {
  unit_of : (int * int) array;
      (** per cell id: (unit class, unit index); class 0 = free/wire,
          1 = multiplier, 2 = adder *)
  register_of : int array;
      (** per cell id: register index holding its result, or [-1] when
          the value never crosses a step boundary *)
  num_multipliers : int;
  num_adders : int;
  num_registers : int;
  mux_inputs : int;
      (** total distinct sources over all unit input ports: a proxy for
          steering-logic cost *)
}

val bind :
  ?latency_model:Schedule.latency_model ->
  Schedule.resources ->
  Netlist.t ->
  Schedule.schedule ->
  binding
(** @raise Invalid_argument if the schedule does not belong to the
    netlist (array sizes differ). *)

val is_consistent : Netlist.t -> Schedule.schedule -> binding -> bool
(** Checker: no two operations share a unit in overlapping time, unit
    counts within the declared totals, every multi-step value has a
    register, and no two values with overlapping lifetimes share one. *)
