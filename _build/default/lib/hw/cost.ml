module Z = Polysynth_zint.Zint

type model = {
  mult_area : int -> int;
  cmult_area : int -> Z.t -> int;
  add_area : int -> int;
  neg_area : int -> int;
  mult_delay : int -> float;
  cmult_delay : int -> Z.t -> float;
  add_delay : int -> float;
  neg_delay : int -> float;
  fanout_delay : float;
      (** extra delay per additional load on a cell's output: the wire and
          input-capacitance cost of sharing a sub-expression widely *)
}

(* non-adjacent form: digits in {-1, 0, 1}, no two adjacent non-zero *)
let csd_digits c =
  let rec go n acc =
    if Z.is_zero n then acc
    else if Z.is_even n then go (Z.div n Z.two) acc
    else begin
      (* n odd: digit is 2 - (n mod 4), i.e. +1 or -1 *)
      let m4 = Z.to_int_exn (Z.erem_pow2 n 2) in
      let d = if m4 = 1 then Z.one else Z.minus_one in
      go (Z.div (Z.sub n d) Z.two) (acc + 1)
    end
  in
  go (Z.abs c) 0

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  if n <= 1 then 0 else go 0 1

let default =
  {
    (* array multiplier: ~m*m full-adder cells at ~6 gate equivalents *)
    mult_area = (fun m -> 6 * m * m);
    (* CSD shift-add network: (digits - 1) adders; shifts are wiring *)
    cmult_area =
      (fun m c ->
        let d = csd_digits c in
        if d <= 1 then 0 else (d - 1) * 7 * m);
    (* carry-lookahead adder *)
    add_area = (fun m -> 7 * m);
    (* two's-complement negation: inverters plus increment *)
    neg_area = (fun m -> 2 * m);
    (* array multiplier critical path ~ 2m full adders *)
    mult_delay = (fun m -> 0.8 *. float_of_int (2 * m));
    cmult_delay =
      (fun m c ->
        let d = csd_digits c in
        if d <= 1 then 0.0
        else
          float_of_int (log2_ceil d)
          *. (1.0 +. (0.35 *. float_of_int (log2_ceil m))));
    add_delay = (fun m -> 1.0 +. (0.35 *. float_of_int (log2_ceil m)));
    neg_delay = (fun m -> 0.5 +. (0.2 *. float_of_int (log2_ceil m)));
    fanout_delay = 0.7;
  }

type report = {
  area : int;
  delay : float;
  num_mults : int;
  num_cmults : int;
  num_adds : int;
}

let total_operators r = r.num_mults + r.num_cmults + r.num_adds

let of_netlist ?(model = default) (n : Netlist.t) =
  let m = n.Netlist.width in
  let num_cells = Array.length n.Netlist.cells in
  let arrival = Array.make num_cells 0.0 in
  let fanout = Array.make num_cells 0 in
  Array.iter
    (fun cell ->
      List.iter
        (fun i -> fanout.(i) <- fanout.(i) + 1)
        cell.Netlist.fanin)
    n.Netlist.cells;
  let report = ref { area = 0; delay = 0.0; num_mults = 0; num_cmults = 0; num_adds = 0 } in
  Array.iter
    (fun cell ->
      let open Netlist in
      let fanin_arrival =
        List.fold_left
          (fun acc i -> Float.max acc arrival.(i))
          0.0 cell.fanin
      in
      let cell_area, cell_delay, kind =
        match cell.op with
        | Input _ | Constant _ -> (0, 0.0, `Free)
        | Negate -> (model.neg_area m, model.neg_delay m, `Free)
        | Add2 | Sub2 -> (model.add_area m, model.add_delay m, `Add)
        | Mult2 -> (model.mult_area m, model.mult_delay m, `Mult)
        | Cmult c -> (model.cmult_area m c, model.cmult_delay m c, `Cmult)
        | Shl _ -> (0, 0.0, `Free)
      in
      let load =
        model.fanout_delay *. float_of_int (Stdlib.max 0 (fanout.(cell.id) - 1))
      in
      arrival.(cell.id) <- fanin_arrival +. cell_delay +. load;
      let r = !report in
      report :=
        {
          area = r.area + cell_area;
          delay = Float.max r.delay arrival.(cell.id);
          num_mults = (r.num_mults + match kind with `Mult -> 1 | _ -> 0);
          num_cmults = (r.num_cmults + match kind with `Cmult -> 1 | _ -> 0);
          num_adds = (r.num_adds + match kind with `Add -> 1 | _ -> 0);
        })
    n.Netlist.cells;
  !report

let of_prog ?model ~width prog =
  of_netlist ?model (Netlist.of_prog ~width prog)

let pp_report fmt r =
  Format.fprintf fmt
    "area=%d delay=%.1f (mult=%d cmult=%d add=%d)"
    r.area r.delay r.num_mults r.num_cmults r.num_adds
