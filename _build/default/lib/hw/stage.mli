(** Pipeline staging: cut a combinational netlist at register boundaries
    so that every stage meets a target clock period.

    Greedy ASAP staging over the topological order: a cell moves to the
    next stage when appending it would exceed the period.  The report
    gives the pipeline depth, the register cost of the cut (one register
    per value per crossed boundary) and the period actually achieved —
    the other side of the paper's area/delay trade for sharing-heavy
    decompositions, whose deep chains pipeline into more stages. *)

type staging = {
  stage_of : int array;  (** per cell id, starting at 0 *)
  num_stages : int;
  pipeline_registers : int;
      (** sum over values of the number of stage boundaries they cross *)
  achieved_period : float;
      (** max per-stage critical path; can exceed the target only when a
          single operator is slower than the target *)
}

val cut :
  ?model:Cost.model -> target_period:float -> Netlist.t -> staging
(** @raise Invalid_argument on a non-positive target. *)

val is_valid : ?model:Cost.model -> Netlist.t -> staging -> bool
(** Checker: stages never decrease along an edge, and every stage's
    internal critical path is at most [achieved_period]. *)
