(** Switching-activity power estimation — the paper's stated future work
    ("we would like to investigate the use of algebraic transformations in
    low-power synthesis of arithmetic datapaths").

    Dynamic power of a cell is modelled as (toggle activity of its output)
    x (its area, as a capacitance proxy).  Activity is measured by
    bit-accurate simulation of the netlist on a deterministic stream of
    random input vectors: for consecutive vectors, the Hamming distance of
    each cell's output value is accumulated.  Deterministic in the seed. *)

type report = {
  dynamic : float;  (** sum over cells of activity x area, in
                        gate-equivalent toggle units *)
  leakage : float;  (** proportional to total area *)
  total : float;
  per_cell_activity : float array;  (** average toggles per transition,
                                        indexed by cell id *)
}

val estimate : ?samples:int -> ?seed:int -> Netlist.t -> report
(** [samples] (default 64) is the number of input transitions simulated;
    [seed] (default 1) drives the deterministic input generator. *)

val pp_report : Format.formatter -> report -> unit
