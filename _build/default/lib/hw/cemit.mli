(** C code emission: the software counterpart of the Verilog back-end.

    The generated function computes every output of the decomposition with
    wrap-around [width]-bit unsigned arithmetic (C unsigned overflow is
    defined, so masking after every operation gives exactly the bit-vector
    semantics of {!Netlist.eval}).  Widths up to 64 bits are supported.

    With [self_check], the file also contains a [main] that evaluates a
    deterministic set of input vectors against expected values baked in at
    emission time (computed by the reference simulator) and exits non-zero
    on any mismatch — so compiling and running the output is an end-to-end
    semantic check of the decomposition. *)

val emit :
  ?func_name:string ->
  ?self_check:int ->
  ?seed:int ->
  Netlist.t ->
  string
(** [func_name] defaults to "polysynth"; [self_check] (a vector count)
    adds the self-checking [main]; [seed] (default 1) drives the vector
    generator.  @raise Invalid_argument when the width exceeds 64 bits. *)
