module Z = Polysynth_zint.Zint

let of_netlist ?(graph_name = "polysynth") (n : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  Buffer.add_string buf "  rankdir=BT;\n";
  let output_names id =
    List.filter_map
      (fun (name, oid) -> if oid = id then Some name else None)
      n.Netlist.outputs
  in
  Array.iter
    (fun cell ->
      let open Netlist in
      let label, shape =
        match cell.op with
        | Input v -> (v, "plaintext")
        | Constant c -> (Z.to_string c, "plaintext")
        | Negate -> ("-", "circle")
        | Add2 -> ("+", "circle")
        | Sub2 -> ("\xe2\x88\x92", "circle")
        | Mult2 -> ("*", "box")
        | Cmult c -> ("*" ^ Z.to_string c, "box")
        | Shl k -> ("<<" ^ string_of_int k, "plaintext")
      in
      let outs = output_names cell.id in
      let label =
        match outs with
        | [] -> label
        | names -> label ^ "\\n[" ^ String.concat "," names ^ "]"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" cell.id label shape);
      List.iter
        (fun src ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" src cell.id))
        cell.fanin)
    n.Netlist.cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
