module Z = Polysynth_zint.Zint

type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let emit ?(func_name = "polysynth") ?self_check ?(seed = 1) (n : Netlist.t) =
  let w = n.Netlist.width in
  if w > 64 then invalid_arg "Cemit.emit: width exceeds 64 bits";
  let fname = Verilog.legalize func_name in
  let inputs = Netlist.inputs n in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#include <stdint.h>\n";
  add "#include <stdio.h>\n\n";
  add "typedef uint64_t word;\n";
  if w = 64 then add "#define POLYSYNTH_MASK UINT64_MAX\n\n"
  else add "#define POLYSYNTH_MASK ((((word)1) << %d) - 1)\n\n" w;
  add "/* %d-bit wrap-around datapath; every operation is reduced mod 2^%d */\n"
    w w;
  let params =
    List.map (fun v -> Printf.sprintf "word %s" (Verilog.legalize v)) inputs
    @ List.map
        (fun (name, _) -> Printf.sprintf "word *%s" (Verilog.legalize name))
        n.Netlist.outputs
  in
  add "void %s(%s) {\n" fname (String.concat ", " params);
  let wire i = Printf.sprintf "n%d" i in
  let const_literal c =
    (* constants are emitted reduced into the word range *)
    "UINT64_C(" ^ Z.to_string (Z.erem_pow2 c 64) ^ ")"
  in
  Array.iter
    (fun cell ->
      let open Netlist in
      let arg k = wire (List.nth cell.fanin k) in
      let rhs =
        match cell.op with
        | Input v -> Verilog.legalize v
        | Constant c -> const_literal c
        | Negate -> Printf.sprintf "(word)(-%s)" (arg 0)
        | Add2 -> Printf.sprintf "%s + %s" (arg 0) (arg 1)
        | Sub2 -> Printf.sprintf "%s - %s" (arg 0) (arg 1)
        | Mult2 -> Printf.sprintf "%s * %s" (arg 0) (arg 1)
        | Cmult c -> Printf.sprintf "%s * %s" (const_literal c) (arg 0)
        | Shl k -> Printf.sprintf "%s << %d" (arg 0) k
      in
      add "  word %s = (%s) & POLYSYNTH_MASK;\n" (wire cell.id) rhs)
    n.Netlist.cells;
  List.iter
    (fun (name, id) -> add "  *%s = %s;\n" (Verilog.legalize name) (wire id))
    n.Netlist.outputs;
  add "}\n";
  (match self_check with
   | None -> ()
   | Some vectors ->
     let rng = make_rng seed in
     add "\nint main(void) {\n";
     add "  int errors = 0;\n";
     List.iter
       (fun (name, _) -> add "  word %s;\n" (Verilog.legalize name))
       n.Netlist.outputs;
     for _ = 1 to vectors do
       let assignment =
         List.map
           (fun v ->
             let hi = next rng (1 lsl 30) and lo = next rng (1 lsl 30) in
             let value =
               Z.erem_pow2
                 (Z.add (Z.mul (Z.of_int hi) (Z.pow2 30)) (Z.of_int lo))
                 w
             in
             (v, value))
           inputs
       in
       let env v =
         match List.assoc_opt v assignment with Some x -> x | None -> Z.zero
       in
       let expected = Netlist.eval n env in
       let args =
         List.map (fun (_, value) -> "UINT64_C(" ^ Z.to_string value ^ ")")
           assignment
         @ List.map
             (fun (name, _) -> "&" ^ Verilog.legalize name)
             n.Netlist.outputs
       in
       add "  %s(%s);\n" fname (String.concat ", " args);
       List.iter
         (fun (name, _) ->
           let value = List.assoc name expected in
           add
             "  if (%s != UINT64_C(%s)) { errors++; printf(\"FAIL %s: got \
              %%llu expected %s\\n\", (unsigned long long)%s); }\n"
             (Verilog.legalize name) (Z.to_string value)
             (Verilog.legalize name) (Z.to_string value)
             (Verilog.legalize name))
         n.Netlist.outputs
     done;
     add "  if (errors == 0) printf(\"PASS\\n\");\n";
     add "  return errors == 0 ? 0 : 1;\n";
     add "}\n");
  Buffer.contents buf
