(** Self-checking Verilog testbench generation.

    Pairs with {!Verilog.emit}: the testbench instantiates the generated
    module, drives it with a deterministic stream of random vectors, and
    compares every output against the expected value computed by the
    bit-accurate reference simulator ({!Netlist.eval}).  The generated
    file is self-contained Verilog-2001 and prints PASS/FAIL. *)

val emit :
  ?module_name:string -> ?vectors:int -> ?seed:int -> Netlist.t -> string
(** [module_name] must match the one given to {!Verilog.emit} (default
    "polysynth"); [vectors] (default 16) test vectors are generated from
    [seed] (default 1). *)
