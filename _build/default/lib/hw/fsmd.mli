(** FSM-with-datapath construction: the sequential implementation of a
    scheduled, bound netlist.

    Where {!Verilog} emits the fully parallel (combinational) datapath,
    this module time-multiplexes the operations of a {!Schedule} onto the
    bound functional units: every unit result is latched into a register
    allocated by the left-edge algorithm, operands are steered from
    registers/inputs/constants through the free cells (shifts,
    negations), and a state counter sequences the steps.

    The module carries its own cycle-accurate interpreter
    ({!simulate}), so the construction is checked against the
    combinational reference ({!Netlist.eval}) in the test suite, and a
    sequential Verilog-2001 emitter. *)

module Z := Polysynth_zint.Zint

type source =
  | From_register of int
  | From_input of string
  | From_constant of Z.t
  | Shifted of int * source
  | Negated of source

type micro_op = {
  step : int;  (** state in which the operation starts *)
  op : Netlist.op;  (** Mult2 / Add2 / Sub2 / Cmult only *)
  unit_class : int;  (** 1 = multiplier, 2 = adder, as in {!Bind} *)
  unit_index : int;
  sources : source list;
  dest_register : int;
  latched_at : int;  (** state at whose end the result is written *)
}

type t = {
  micro_ops : micro_op list;  (** sorted by step *)
  num_states : int;
  num_registers : int;
  output_sources : (string * source) list;
  width : int;
}

val build :
  ?latency_model:Schedule.latency_model ->
  Schedule.resources ->
  Netlist.t ->
  t
(** Schedules and binds internally, then constructs the FSMD. *)

val simulate : t -> (string -> Z.t) -> (string * Z.t) list
(** Cycle-accurate execution; agrees with {!Netlist.eval} of the netlist
    the FSMD was built from. *)

val to_verilog : ?module_name:string -> t -> string
(** Sequential Verilog: [clk]/[rst] inputs, a state counter, one always
    block; [done_o] rises when the outputs are valid. *)
