(** Graphviz DOT export of a netlist, for visual inspection of the sharing
    a decomposition achieves. *)

val of_netlist : ?graph_name:string -> Netlist.t -> string
(** One node per cell (operators as shapes, inputs/constants as plain
    nodes), one edge per fanin connection, output cells labelled with
    their output names. *)
