module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

type result = {
  groups : (Z.t * Poly.t) list;
  residual : Poly.t;
}

module Zset = Set.Make (Z)

let candidate_gcds coeffs =
  let coeffs = List.map Z.abs coeffs in
  let rec pairs acc = function
    | [] -> acc
    | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b ->
            let g = Z.gcd a b in
            (* keep only GCDs that equal one of the pair: extracting a
               strictly smaller common divisor adds constant multipliers
               instead of removing them (Section 14.4.1) *)
            if Z.is_one g || Z.is_zero g then acc
            else if Z.equal g a || Z.equal g b then Zset.add g acc
            else acc)
          acc rest
      in
      pairs acc rest
  in
  Zset.elements (pairs Zset.empty coeffs) |> List.rev

let extract p =
  (* only coefficients involved in a multiplication participate: the
     constant addend is always cheapest implemented directly *)
  let is_mult_term (_, m) = not (Monomial.is_one m) in
  let mult_terms, const_terms = List.partition is_mult_term (Poly.terms p) in
  let gcds =
    candidate_gcds (List.map fst mult_terms)
  in
  let rec extract_loop remaining groups = function
    | [] -> (List.rev groups, remaining)
    | g :: rest ->
      let covered, uncovered =
        List.partition (fun (c, _) -> Z.divides g c) remaining
      in
      if List.length covered >= 2 then begin
        let block =
          Poly.of_terms (List.map (fun (c, m) -> (Z.divexact c g, m)) covered)
        in
        extract_loop uncovered ((g, block) :: groups) rest
      end
      else extract_loop remaining groups rest
  in
  let groups, left = extract_loop mult_terms [] gcds in
  { groups; residual = Poly.add (Poly.of_terms left) (Poly.of_terms const_terms) }

let recompose { groups; residual } =
  List.fold_left
    (fun acc (g, b) -> Poly.add acc (Poly.mul_scalar g b))
    residual groups

let blocks r = List.map snd r.groups
