(** The canonical (falling-factorial) form as a structured expression.

    Each falling term [c * Y_k1(x_1)...Y_kd(x_d)] becomes a flat product of
    the shared base blocks [Y_2(v) = v*(v-1)] and the remaining linear
    chain factors [(v - 2), (v - 3), ...]; the canonical operand ordering
    of products then makes common prefixes such as [Y_2(x)*Y_2(y)] collapse
    in the DAG — exactly why the canonical form helps CSE (Section
    14.3.1). *)

module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr
module Canonical := Polysynth_finite_ring.Canonical

val rep : Canonical.ctx -> Blocktab.t -> Poly.t -> Expr.t
(** Expression of the canonical form of the polynomial.  Note that it is
    equal to the input only {e as a bit-vector function} on the ring (not
    as a polynomial over the integers). *)

val term_factors :
  Canonical.ctx -> Blocktab.t -> Polysynth_zint.Zint.t -> Polysynth_poly.Monomial.t -> Expr.t
(** Expression of one falling term (exposed for tests). *)
