(** Common coefficient extraction — Algorithm 6 of the paper.

    Kernel/co-kernel factoring treats numeric coefficients as opaque
    literals, so it cannot see that [8x + 16y + 24z = 8(x + 2y + 3z)].  CCE
    fixes this with arithmetic on the coefficients themselves: compute the
    pairwise GCDs of the coefficients involved in multiplications, keep a
    GCD only when it equals one of its pair (extracting a strictly smaller
    divisor like [gcd 24 30 = 6] would not reduce the number of constant
    multiplications), and extract the surviving divisors from largest to
    smallest.  The multi-term quotients ("blocks") this exposes are the raw
    material for algebraic division. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

type result = {
  groups : (Z.t * Poly.t) list;
      (** [(g, b)] pairs meaning [g * b] with [g > 1] and [b] multi-term, in
          extraction order (decreasing [g]) *)
  residual : Poly.t;
      (** terms left untouched, including the constant addend *)
}

val extract : Poly.t -> result
(** [p = sum g_i * b_i + residual]. *)

val recompose : result -> Poly.t
(** Inverse of {!extract} (used as a test oracle). *)

val blocks : result -> Poly.t list
(** The extracted quotient blocks [b_i]. *)

val candidate_gcds : Z.t list -> Z.t list
(** The filtered, decreasing GCD list of Algorithm 6 (exposed for tests):
    pairwise GCDs of the input, keeping [g] only when [g > 1] and [g]
    equals one of the two coefficients that produced it. *)
