(** The end-to-end synthesis flow of Algorithm 7 ([Poly_Synth]) and the
    benchmark drivers around it.

    Given a polynomial system over a bit-vector ring, the proposed flow
    builds the representation lists (canonical and square-free forms, CCE,
    cube extraction, algebraic division by the exposed linear blocks),
    searches the combinations with CSE-aware cost, and returns the best
    decomposition together with its estimated hardware cost. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Dag := Polysynth_expr.Dag
module Cost := Polysynth_hw.Cost
module Canonical := Polysynth_finite_ring.Canonical

type method_name = Direct | Horner | Factor_cse | Proposed

val method_label : method_name -> string

type report = {
  method_name : method_name;
  prog : Prog.t;
  counts : Dag.counts;  (** post-CSE MULT/ADD counts *)
  cost : Cost.report;  (** estimated hardware area and delay *)
  labels : string list;  (** chosen representation per polynomial
                             (Proposed only; empty otherwise) *)
}

val run :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  method_name ->
  Poly.t list ->
  report

val synthesize :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  Poly.t list ->
  report
(** [run Proposed]. *)

val compare_methods :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  Poly.t list ->
  report list
(** All four methods on the same system, in declaration order of
    {!method_name}. *)

val verify : ?ctx:Canonical.ctx -> Poly.t list -> Prog.t -> bool
(** Does the program compute the system?  Exact polynomial equality when no
    ring context is given; equality of bit-vector functions (via canonical
    forms) when one is. *)
