(** Discovery of linear building blocks: the divisor candidates for
    algebraic division (Section 14.4.3).

    The paper restricts algebraic divisors to the {e linear} expressions
    exposed by the other transformations, because linear blocks cannot be
    decomposed further (they must be implemented anyway) and are cheap in
    hardware.  Candidates come from:
    - the quotient blocks of common coefficient extraction;
    - the (primitive parts of) kernels found by cube extraction;
    - linear square-free factors and perfect-power roots
      ([x^2 + 2xy + y^2] contributes [x + y]).

    All candidates are normalized (primitive, positive leading coefficient)
    and deduplicated, then ranked by how many polynomials of the system they
    divide usefully. *)

module Poly := Polysynth_poly.Poly

val normalize : Poly.t -> Poly.t
(** Primitive part with positive leading coefficient. *)

val is_linear : Poly.t -> bool
(** Total degree 1 (any number of variables, constant addend allowed). *)

val discover : ?max_blocks:int -> Poly.t list -> Poly.t list
(** Linear building blocks of the system, best-ranked first; [max_blocks]
    (default 16) bounds the list. *)

val usefulness : Poly.t list -> Poly.t -> int
(** Ranking key: the number of system polynomials on which division by the
    block makes progress (non-zero quotient). *)
