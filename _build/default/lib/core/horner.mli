(** Multivariate Horner decomposition (the MATLAB baseline of the paper's
    experiments).

    Recursively factors the most frequently occurring variable:
    [p = v * q + r] with [r] free of [v], then recurses into [q] and [r]. *)

module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr

val rep : Poly.t -> Expr.t
(** Horner-form expression of the polynomial (equal to it as a function). *)

val best_variable : Poly.t -> string option
(** The variable occurring in the most terms (ties broken alphabetically);
    [None] when no variable occurs in two or more terms. *)
