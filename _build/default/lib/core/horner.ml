module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr

let best_variable p =
  let count v =
    List.length
      (List.filter (fun (_, m) -> Monomial.mentions v m) (Poly.terms p))
  in
  let ranked =
    List.map (fun v -> (count v, v)) (Poly.vars p)
    |> List.filter (fun (c, _) -> c >= 2)
    |> List.stable_sort (fun (a, va) (b, vb) ->
           if a <> b then Stdlib.compare b a else String.compare va vb)
  in
  match ranked with [] -> None | (_, v) :: _ -> Some v

let rec rep p =
  if Poly.is_zero p || Poly.is_const p then Expr.of_poly p
  else
    match best_variable p with
    | None -> Expr.of_poly p
    | Some v ->
      let coeffs = Poly.coeffs_in v p in
      let r = match List.assoc_opt 0 coeffs with Some c -> c | None -> Poly.zero in
      let q =
        Poly.of_coeffs_in v
          (List.filter_map
             (fun (k, c) -> if k = 0 then None else Some (k - 1, c))
             coeffs)
      in
      Expr.add [ Expr.mul [ Expr.var v; rep q ]; rep r ]
