module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Extract = Polysynth_cse.Extract

let is_generated_var v =
  let prefix = Extract.block_prefix in
  String.length v >= String.length prefix
  && String.sub v 0 (String.length prefix) = prefix

(* Refine every flat body (building blocks and outputs of a cube/kernel
   extraction) with the algebraic toolbox: CCE grouping, content
   extraction, perfect powers and division by the linear blocks discovered
   across all the bodies.  Divisors are restricted to input variables so
   that block definitions cannot become cyclic. *)
let refine_bodies ~blocks ~outputs =
  let all_bodies = List.map snd blocks @ List.map snd outputs in
  let table = Blocktab.create () in
  let divisors =
    Blocks.discover all_bodies
    |> List.filter (fun d ->
           List.for_all (fun v -> not (is_generated_var v)) (Poly.vars d))
  in
  let session = Algdiv.make_session table ~divisors in
  let refined_blocks =
    List.map (fun (n, b) -> (n, Algdiv.decompose session b)) blocks
  in
  let refined_outputs =
    List.map (fun (n, b) -> (n, Algdiv.decompose session b)) outputs
  in
  let used =
    List.concat_map (fun (_, e) -> Expr.vars e) (refined_blocks @ refined_outputs)
    |> List.sort_uniq String.compare
  in
  let divisor_bindings =
    List.filter (fun (n, _) -> List.mem n used) (Blocktab.bindings table)
  in
  { Prog.bindings = divisor_bindings @ refined_blocks; outputs = refined_outputs }

(* Variant 1 — CCE first: decompose every polynomial by common coefficient
   extraction, then run variable-only cube/kernel extraction over all the
   quotient blocks and residuals together so that blocks shared across
   polynomials are found. *)
let decompose_cce_first polys =
  let cce = List.map Cce.extract polys in
  let pieces =
    List.concat_map
      (fun r -> List.map snd r.Cce.groups @ [ r.Cce.residual ])
      cce
  in
  let extraction = Extract.run ~mode:Extract.Vars_only pieces in
  let refined =
    refine_bodies ~blocks:extraction.Extract.blocks
      ~outputs:extraction.Extract.output_bodies
  in
  let piece_exprs = List.map snd refined.Prog.outputs in
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> invalid_arg "Integrated.decompose: piece mismatch"
      | x :: rest ->
        let first, remaining = take (n - 1) rest in
        (x :: first, remaining)
  in
  let outputs, leftover =
    List.fold_left
      (fun (acc, pieces_left) r ->
        let n = List.length r.Cce.groups + 1 in
        let own, rest = take n pieces_left in
        let block_exprs, residual_expr =
          match List.rev own with
          | res :: blocks_rev -> (List.rev blocks_rev, res)
          | [] -> assert false
        in
        let expr =
          Expr.add
            (List.map2
               (fun (g, _) be -> Expr.mul [ Expr.const g; be ])
               r.Cce.groups block_exprs
            @ [ residual_expr ])
        in
        (expr :: acc, rest))
      ([], piece_exprs) cce
  in
  assert (leftover = []);
  let outputs =
    List.mapi
      (fun i e -> (Printf.sprintf "P%d" (i + 1), e))
      (List.rev outputs)
  in
  { Prog.bindings = refined.Prog.bindings; outputs }

(* Variant 2 — cubes first: variable-only extraction across the original
   system, then algebraic refinement of every body. *)
let decompose_cubes_first polys =
  let extraction = Extract.run ~mode:Extract.Vars_only polys in
  refine_bodies ~blocks:extraction.Extract.blocks
    ~outputs:extraction.Extract.output_bodies

(* Variant 3 — refine the literal-mode extraction: run the kernel/co-kernel
   extraction exactly as the baseline does (coefficients as literals), then
   apply the algebraic refinement to every extracted body.  This is the
   paper's core argument in miniature: algebraic manipulation composes
   with, and strictly refines, the symbolic CSE of [13]. *)
let refine_literal_extraction ?strategy polys =
  let extraction = Extract.run ~mode:Extract.Coeff_literals ?strategy polys in
  refine_bodies ~blocks:extraction.Extract.blocks
    ~outputs:extraction.Extract.output_bodies

let decompose polys = decompose_cce_first polys

let variants polys =
  [
    ("integrated-cce-first", decompose_cce_first polys);
    ("integrated-cubes-first", decompose_cubes_first polys);
    ("integrated-refine", refine_literal_extraction polys);
    ( "integrated-kcm",
      refine_literal_extraction ~strategy:Extract.Kcm_rectangles polys );
  ]
