(** The CCE + common-cube-extraction stage of Algorithm 7 applied to the
    whole system.

    Each polynomial is first decomposed by common coefficient extraction
    ([P = sum g_i * b_i + r]); the resulting quotient blocks and residuals
    — now free of extractable coefficients — are run through variable-only
    kernel/cube extraction together, so that blocks shared {e across}
    polynomials are found (identical CCE blocks from different polynomials
    collapse in the shared DAG).  This is the whole-system counterpart of
    the per-polynomial representations in {!Represent}; the pipeline keeps
    whichever scores better. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog

val decompose : Poly.t list -> Prog.t
(** [decompose_cce_first]. *)

val decompose_cce_first : Poly.t list -> Prog.t
(** CCE on every polynomial, then variable-only extraction over all the
    pieces.  Outputs are named [P1, P2, ...] in input order; the program
    expands back to the input system exactly. *)

val decompose_cubes_first : Poly.t list -> Prog.t
(** Variable-only extraction over the original system, then CCE inside
    every extracted body.  Same naming and exactness contract. *)

val refine_literal_extraction :
  ?strategy:Polysynth_cse.Extract.strategy -> Poly.t list -> Prog.t
(** The baseline's literal-mode kernel/co-kernel extraction (greedy by
    default; [Kcm_rectangles] for the exact prime-rectangle formulation),
    refined algebraically inside every extracted body.  Same naming and
    exactness contract. *)

val variants : Poly.t list -> (string * Prog.t) list
(** All integrated orderings, labelled. *)
