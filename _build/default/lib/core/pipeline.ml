module Poly = Polysynth_poly.Poly
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Canonical = Polysynth_finite_ring.Canonical

type method_name = Direct | Horner | Factor_cse | Proposed

let method_label = function
  | Direct -> "direct"
  | Horner -> "horner"
  | Factor_cse -> "factor+cse"
  | Proposed -> "proposed"

type report = {
  method_name : method_name;
  prog : Prog.t;
  counts : Dag.counts;
  cost : Cost.report;
  labels : string list;
}

let report_of method_name options prog labels =
  {
    method_name;
    prog;
    counts = Prog.counts prog;
    cost =
      Cost.of_prog ~model:options.Search.model ~width:options.Search.width prog;
    labels;
  }

let run ?ctx ?options ~width method_name polys =
  let options =
    match options with
    | Some o -> o
    | None -> Search.default_options ~width
  in
  match method_name with
  | Direct -> report_of Direct options (Baselines.direct polys) []
  | Horner -> report_of Horner options (Baselines.horner polys) []
  | Factor_cse -> report_of Factor_cse options (Baselines.factor_cse polys) []
  | Proposed ->
    let representations = Represent.build ?ctx polys in
    let selection = Search.select options representations in
    let from_search =
      {
        method_name = Proposed;
        prog = selection.Search.prog;
        counts = selection.Search.counts;
        cost = selection.Search.cost;
        labels = selection.Search.labels;
      }
    in
    (* the whole-system CCE + cube-extraction decompositions compete with
       the per-polynomial combination search; keep the best under the same
       objective the search used *)
    let key r = Search.score options r.prog in
    List.fold_left
      (fun best (label, prog) ->
        let candidate =
          { (report_of Proposed options prog []) with labels = [ label ] }
        in
        if key candidate < key best then candidate else best)
      from_search (Integrated.variants polys)

let synthesize ?ctx ?options ~width polys =
  run ?ctx ?options ~width Proposed polys

let compare_methods ?ctx ?options ~width polys =
  List.map
    (fun m -> run ?ctx ?options ~width m polys)
    [ Direct; Horner; Factor_cse; Proposed ]

let verify ?ctx polys prog =
  let produced = Prog.to_polys prog in
  let rec check i = function
    | [] -> true
    | p :: rest ->
      let name = Printf.sprintf "P%d" (i + 1) in
      (match List.assoc_opt name produced with
       | None -> false
       | Some q ->
         let ok =
           match ctx with
           | Some ctx -> Canonical.equal_functions ctx p q
           | None -> Poly.equal p q
         in
         ok && check (i + 1) rest)
  in
  check 0 polys
