module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Extract = Polysynth_cse.Extract

let direct polys = Prog.of_exprs (List.map Expr.of_poly polys)

let horner polys = Prog.of_exprs (List.map Horner.rep polys)

let factor_cse polys =
  (Extract.run ~mode:Extract.Coeff_literals ~signs:false polys).Extract.prog
