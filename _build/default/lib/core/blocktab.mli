(** Naming table for shared building blocks.

    Divisor blocks get names [d1, d2, ...] (as in the paper's worked
    examples); falling-factorial base blocks [Y_2(x) = x*(x-1)] get names
    derived from their variable.  Every block definition refers only to the
    input variables, so the bindings can be emitted in registration order. *)

module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr

type t

val create : unit -> t

val divisor_var : t -> Poly.t -> string
(** Register (or look up) a divisor block for the given normalized
    polynomial; its definition is the direct expression of the polynomial
    (divisors are linear, so the direct form is already optimal). *)

val y2_var : t -> string -> string
(** Register (or look up) the block [Y_2(v) = v*(v - 1)]. *)

val bindings : t -> (string * Expr.t) list
(** All registered definitions, in registration order. *)

val defs : t -> (string * Poly.t) list
(** Polynomial value of each block (for verification). *)

val lookup_divisor : t -> Poly.t -> string option
