module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Kernel = Polysynth_cse.Kernel
module Squarefree = Polysynth_factor.Squarefree
module Linear_factors = Polysynth_factor.Linear_factors

let normalize p =
  if Poly.is_zero p then p
  else
    let pp = Poly.primitive_part p in
    pp

let is_linear p =
  (not (Poly.is_zero p)) && (not (Poly.is_const p)) && Poly.degree p = 1

module PolySet = Set.Make (Poly)

let add_candidate acc p =
  let n = normalize p in
  if is_linear n && Poly.num_terms n >= 2 then PolySet.add n acc else acc

let candidates_of_poly acc p =
  if Poly.is_zero p || Poly.is_const p then acc
  else begin
    (* CCE quotient blocks *)
    let cce = Cce.extract p in
    let acc =
      List.fold_left add_candidate acc (Cce.blocks cce)
    in
    (* kernels (their primitive parts drop the coefficient content that
       CCE extracts separately) *)
    let acc =
      List.fold_left
        (fun acc (_, k) -> add_candidate acc k)
        acc (Kernel.kernels p)
    in
    (* square-free structure of the polynomial and of the CCE blocks:
       linear factors and linear perfect-power roots *)
    let squarefree_sources = p :: Cce.blocks cce in
    let acc =
      List.fold_left
        (fun acc q ->
          if Poly.is_zero q || Poly.is_const q then acc
          else begin
            let { Squarefree.factors; _ } = Squarefree.squarefree q in
            let acc = List.fold_left (fun acc (s, _) -> add_candidate acc s) acc factors in
            match Squarefree.perfect_power_root q with
            | Some (root, _) -> add_candidate acc root
            | None -> acc
          end)
        acc squarefree_sources
    in
    (* rational-root linear factors of univariate polynomials: blocks like
       (2x - 3) that neither kernels nor square-free structure expose *)
    match Poly.vars p with
    | [ v ] ->
      let factors, _ = Linear_factors.linear_factors v p in
      List.fold_left (fun acc (f, _) -> add_candidate acc f) acc factors
    | [] | _ :: _ :: _ -> acc
  end

let usefulness system d =
  List.length
    (List.filter
       (fun p ->
         (not (Poly.is_zero p))
         &&
         let q, _ = Poly.div_rem p d in
         not (Poly.is_zero q))
       system)

let discover ?(max_blocks = 16) system =
  let cands =
    List.fold_left candidates_of_poly PolySet.empty system
  in
  let ranked =
    PolySet.elements cands
    |> List.map (fun d -> (usefulness system d, d))
    |> List.filter (fun (u, _) -> u > 0)
    |> List.stable_sort (fun (a, da) (b, db) ->
           if a <> b then Stdlib.compare b a else Poly.compare da db)
  in
  List.filteri (fun i _ -> i < max_blocks) (List.map snd ranked)
