module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr
module Canonical = Polysynth_finite_ring.Canonical

(* Y_k(v) as a flat factor list: Y_1 = [v]; Y_k = [Y2-block; (v-2); ...;
   (v-k+1)] for k >= 2 *)
let falling_factors table v k =
  if k = 1 then [ Expr.var v ]
  else begin
    let y2 = Expr.var (Blocktab.y2_var table v) in
    y2
    :: List.init (k - 2) (fun i ->
           Expr.sub (Expr.var v) (Expr.int (i + 2)))
  end

let term_factors _ctx table c mono =
  let factors =
    List.concat_map
      (fun (v, k) -> falling_factors table v k)
      (Monomial.to_list mono)
  in
  Expr.mul (Expr.const c :: factors)

let rep ctx table p =
  let falling = Canonical.canonicalize ctx p in
  Expr.add
    (List.map
       (fun (c, mono) -> term_factors ctx table c mono)
       (Canonical.falling_terms falling))
