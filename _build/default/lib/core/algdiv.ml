module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag
module Kernel = Polysynth_cse.Kernel
module Squarefree = Polysynth_factor.Squarefree

module PolyMap = Map.Make (Poly)

type session = {
  table : Blocktab.t;
  divs : Poly.t list;
  mutable memo : Expr.t PolyMap.t;
}

let make_session table ~divisors = { table; divs = divisors; memo = PolyMap.empty }

let divisors s = s.divs

let cost e = Dag.total_ops (Dag.tree_counts e)

let cheapest candidates =
  match candidates with
  | [] -> invalid_arg "Algdiv.cheapest: no candidates"
  | first :: rest ->
    List.fold_left
      (fun best cand -> if cost cand < cost best then cand else best)
      first rest

(* expression for a possibly non-normalized linear root: strip the content
   onto a constant factor and reference the divisor block *)
let root_expr s root =
  let n = Blocks.normalize root in
  if Blocks.is_linear n then begin
    let const_ratio =
      match Poly.div_exact root n with
      | Some c -> Poly.to_const_opt c
      | None -> None
    in
    match const_ratio with
    | Some c ->
      Expr.mul [ Expr.const c; Expr.var (Blocktab.divisor_var s.table n) ]
    | None -> Expr.of_poly root
  end
  else Expr.of_poly root

(* Recursion is bounded: a polynomial reached [max_depth] levels down is
   rendered directly.  Datapath polynomials are shallow, and without a
   bound the 6-divisor branching on random degree-4 systems visits
   thousands of intermediate polynomials, each paying a square-free
   factorization. *)
let max_depth = 4

(* cheap necessary condition for p = root^k: the leading coefficient must
   itself be a perfect power *)
let could_be_perfect_power p =
  (not (Poly.is_const p))
  && Poly.degree p >= 2
  && Poly.num_terms p <= 12
  &&
  let lc = Z.abs (fst (Poly.leading p)) in
  Z.is_one lc
  || List.exists
       (fun k -> Squarefree.integer_root lc k <> None)
       [ 2; 3; 5; 7 ]

let rec decompose ?(depth = 0) s p =
  match PolyMap.find_opt p s.memo with
  | Some e -> e
  | None ->
    (* break potential cycles defensively: memoize the direct form first,
       then overwrite with the winner *)
    s.memo <- PolyMap.add p (Expr.of_poly p) s.memo;
    let result = choose depth s p in
    s.memo <- PolyMap.add p result s.memo;
    result

and choose depth s p =
  if Poly.is_zero p || Poly.is_const p then Expr.of_poly p
  else begin
    let deeper = decompose ~depth:(depth + 1) s in
    let direct = Expr.of_poly p in
    let content_candidate =
      let pp = Poly.primitive_part p in
      match Poly.div_exact p pp with
      | Some c ->
        (match Poly.to_const_opt c with
         | Some c when not (Z.is_one (Z.abs c)) && Poly.num_terms p >= 2 ->
           [ Expr.mul [ Expr.const c; deeper pp ] ]
         | Some _ | None -> [])
      | None -> []
    in
    let power_candidate =
      if not (could_be_perfect_power p) then []
      else
        match Squarefree.perfect_power_root p with
        | Some (root, k) when not (Poly.is_const root) ->
          [ Expr.pow (root_expr s root) k ]
        | Some _ | None -> []
    in
    let structural_candidates =
      if depth >= max_depth then []
      else begin
        let division_candidates =
          List.filter_map
            (fun d ->
              let q, r = Poly.div_rem p d in
              if Poly.is_zero q then None
              else begin
                let dv = Blocktab.divisor_var s.table d in
                Some
                  (Expr.add [ Expr.mul [ Expr.var dv; deeper q ]; deeper r ])
              end)
            s.divs
        in
        let cce_candidate =
          let r = Cce.extract p in
          match r.Cce.groups with
          | [] -> []
          | groups ->
            [ Expr.add
                (List.map
                   (fun (g, b) -> Expr.mul [ Expr.const g; deeper b ])
                   groups
                @ [ deeper r.Cce.residual ]) ]
        in
        let kernel_candidate =
          let ks =
            Kernel.kernels p
            |> List.filter (fun (ck, _) -> not (Monomial.is_one ck))
            |> List.stable_sort (fun (ck1, k1) (ck2, k2) ->
                   let score (ck, k) = Poly.num_terms k * Monomial.degree ck in
                   Stdlib.compare (score (ck2, k2)) (score (ck1, k1)))
          in
          match ks with
          | [] -> []
          | (ck, k) :: _ ->
            let rest = Poly.sub p (Poly.mul_term Z.one ck k) in
            [ Expr.add
                [ Expr.mul (Expr.of_poly (Poly.monomial ck) :: [ deeper k ]);
                  deeper rest ] ]
        in
        division_candidates @ cce_candidate @ kernel_candidate
      end
    in
    cheapest
      ((direct :: content_candidate) @ power_candidate @ structural_candidates)
  end
