module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr

type entry = { name : string; poly : Poly.t; def : Expr.t }

type t = { mutable entries : entry list; mutable counter : int }

let create () = { entries = []; counter = 0 }

let find tab poly =
  List.find_opt (fun e -> Poly.equal e.poly poly) tab.entries

let divisor_var tab poly =
  match find tab poly with
  | Some e -> e.name
  | None ->
    tab.counter <- tab.counter + 1;
    let name = Printf.sprintf "d%d" tab.counter in
    tab.entries <-
      tab.entries @ [ { name; poly; def = Expr.of_poly poly } ];
    name

let y2_var tab v =
  let poly = Poly.mul (Poly.var v) (Poly.sub (Poly.var v) Poly.one) in
  match find tab poly with
  | Some e -> e.name
  | None ->
    let name = Printf.sprintf "y2_%s" v in
    let def =
      Expr.mul [ Expr.var v; Expr.sub (Expr.var v) Expr.one ]
    in
    tab.entries <- tab.entries @ [ { name; poly; def } ];
    name

let bindings tab = List.map (fun e -> (e.name, e.def)) tab.entries

let defs tab = List.map (fun e -> (e.name, e.poly)) tab.entries

let lookup_divisor tab poly =
  Option.map (fun e -> e.name) (find tab poly)
