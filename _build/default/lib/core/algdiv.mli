(** Algebraic division by linear building blocks (Section 14.4.3) and the
    recursive decomposition it drives.

    Given the divisor set exposed by CCE, cube extraction and square-free
    factorization, [decompose] rewrites a polynomial as the cheapest of:
    - its direct sum-of-products form;
    - integer content times a decomposed primitive part;
    - a perfect power of a (typically linear) root;
    - [d * Q + R] for a divisor [d], with [Q] and [R] decomposed
      recursively — this is the move that turns
      [13x^2 + 26xy + 13y^2 + 7x - 7y + 11] into [13*d1^2 + 7*d2 + 11];
    - co-kernel factoring [c * K + rest] with [K] decomposed recursively.

    Divisors used by the chosen form are registered in the block table and
    appear as variables in the result. *)

module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr

type session

val make_session : Blocktab.t -> divisors:Poly.t list -> session

val decompose : ?depth:int -> session -> Poly.t -> Expr.t
(** Best decomposition found; expands back to the input polynomial (with
    block variables replaced by their definitions).  [depth] is the
    internal recursion level (structural rewrites stop after 4 levels);
    callers normally omit it. *)

val divisors : session -> Poly.t list
