lib/core/baselines.ml: Horner List Polysynth_cse Polysynth_expr Polysynth_poly
