lib/core/algdiv.mli: Blocktab Polysynth_expr Polysynth_poly
