lib/core/search.mli: Polysynth_expr Polysynth_hw Represent
