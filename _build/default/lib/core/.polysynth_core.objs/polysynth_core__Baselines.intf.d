lib/core/baselines.mli: Polysynth_expr Polysynth_poly
