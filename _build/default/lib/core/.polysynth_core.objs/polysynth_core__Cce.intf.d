lib/core/cce.mli: Polysynth_poly Polysynth_zint
