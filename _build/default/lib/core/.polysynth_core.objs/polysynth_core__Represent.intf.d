lib/core/represent.mli: Blocktab Polysynth_expr Polysynth_finite_ring Polysynth_poly
