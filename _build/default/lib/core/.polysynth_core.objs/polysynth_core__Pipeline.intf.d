lib/core/pipeline.mli: Polysynth_expr Polysynth_finite_ring Polysynth_hw Polysynth_poly Search
