lib/core/blocks.mli: Polysynth_poly
