lib/core/blocktab.mli: Polysynth_expr Polysynth_poly
