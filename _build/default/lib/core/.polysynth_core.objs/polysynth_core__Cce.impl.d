lib/core/cce.ml: List Polysynth_poly Polysynth_zint Set
