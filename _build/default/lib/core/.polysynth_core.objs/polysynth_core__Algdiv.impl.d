lib/core/algdiv.ml: Blocks Blocktab Cce List Map Polysynth_cse Polysynth_expr Polysynth_factor Polysynth_poly Polysynth_zint Stdlib
