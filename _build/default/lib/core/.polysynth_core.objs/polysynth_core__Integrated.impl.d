lib/core/integrated.ml: Algdiv Blocks Blocktab Cce List Polysynth_cse Polysynth_expr Polysynth_poly Polysynth_zint Printf String
