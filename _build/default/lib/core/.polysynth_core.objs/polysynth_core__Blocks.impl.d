lib/core/blocks.ml: Cce List Polysynth_cse Polysynth_factor Polysynth_poly Polysynth_zint Set Stdlib
