lib/core/search.ml: Array Blocktab List Polysynth_expr Polysynth_hw Printf Represent String
