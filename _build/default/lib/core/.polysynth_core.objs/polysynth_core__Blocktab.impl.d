lib/core/blocktab.ml: List Option Polysynth_expr Polysynth_poly Printf
