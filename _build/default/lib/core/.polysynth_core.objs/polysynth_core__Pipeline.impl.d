lib/core/pipeline.ml: Baselines Integrated List Polysynth_expr Polysynth_finite_ring Polysynth_hw Polysynth_poly Printf Represent Search
