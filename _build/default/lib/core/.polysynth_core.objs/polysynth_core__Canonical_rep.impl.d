lib/core/canonical_rep.ml: Blocktab List Polysynth_expr Polysynth_finite_ring Polysynth_poly Polysynth_zint
