lib/core/integrated.mli: Polysynth_cse Polysynth_expr Polysynth_poly
