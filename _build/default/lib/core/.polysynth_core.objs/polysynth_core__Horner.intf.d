lib/core/horner.mli: Polysynth_expr Polysynth_poly
