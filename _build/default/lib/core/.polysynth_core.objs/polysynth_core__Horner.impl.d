lib/core/horner.ml: List Polysynth_expr Polysynth_poly Stdlib String
