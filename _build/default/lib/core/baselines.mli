(** The comparison points of the paper's experiments: direct
    implementation, multivariate Horner decomposition (MATLAB), and
    factoring with kernel/co-kernel CSE (the JuanCSE flow of reference
    [13], with coefficients treated as literals). *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog

val direct : Poly.t list -> Prog.t
val horner : Poly.t list -> Prog.t
val factor_cse : Poly.t list -> Prog.t
