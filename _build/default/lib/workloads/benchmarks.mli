(** The benchmark suite of Table 14.3.

    The paper's sources (Savitzky-Golay filter tables, a quadratic filter
    from Mathews-Sicuranza, a MiBench automotive kernel, and the
    multivariate cosine wavelet of Hosangadi et al.) give only summary
    characteristics: number of bit-vector variables, polynomial order,
    output width and number of polynomials.  The SG systems are generated
    by an exact least-squares fit (see {!Savitzky_golay}); the remaining
    three are synthetic systems with exactly the published characteristics
    and the structural redundancy (symmetric quadratic kernels, truncated
    trigonometric series) that the respective application domains
    exhibit — the property the optimizations exploit. *)

module Poly := Polysynth_poly.Poly

type t = {
  name : string;  (** e.g. "SG 3x2" *)
  polys : Poly.t list;
  num_vars : int;
  degree : int;
  width : int;  (** output bit-vector size m *)
}

val all : unit -> t list
(** The eight systems of Table 14.3, in the paper's row order:
    SG 3x2, SG 4x2, SG 4x3, SG 5x2, SG 5x3, Quad, Mibench, MVCS. *)

val by_name : string -> t option

val characteristics_ok : t -> bool
(** Self-check: the generated system has the declared number of variables,
    degree and polynomial count. *)
