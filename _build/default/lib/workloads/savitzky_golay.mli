(** Two-dimensional Savitzky-Golay filter systems.

    A 2-D SG filter fits a bivariate polynomial of the given degree to the
    samples of a [window x window] neighbourhood by exact least squares.
    Writing the fitted surface as [p(x,y) = sum_k z_k q_k(x,y)], each window
    position [k] contributes one {e effective kernel polynomial}
    [q_k(x, y)] of the fit degree — so the "SG wxd" system has [window^2]
    polynomials of degree [d] in two variables, exactly the benchmark
    characteristics of Table 14.3.  The shifted/symmetric structure of the
    [q_k] is what gives these systems their common sub-expressions.

    The least-squares solve is exact (rational linear algebra); the
    resulting rational coefficients are scaled by their common denominator
    to give the integer polynomial system a bit-vector datapath computes. *)

module Poly := Polysynth_poly.Poly

val offsets : int -> int list
(** Window coordinates: consecutive symmetric integers for odd windows
    ([-1; 0; 1]), doubled half-integers for even ones ([-3; -1; 1; 3]).
    @raise Invalid_argument when the window is smaller than 2. *)

val system : window:int -> degree:int -> Poly.t list
(** The [window^2] kernel polynomials in variables ["x"], ["y"], in
    row-major window order, scaled to integer coefficients.
    @raise Invalid_argument when [degree] is too large for the window to
    determine the fit. *)
