module Z = Polysynth_zint.Zint
module Q = Polysynth_rat.Qint
module M = Polysynth_linalg.Qmatrix
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

let offsets window =
  if window < 2 then invalid_arg "Savitzky_golay.offsets: window too small";
  if window land 1 = 1 then
    let h = window / 2 in
    List.init window (fun i -> i - h)
  else
    (* doubled half-integer offsets keep the arithmetic exact in Z *)
    List.init window (fun i -> (2 * i) - (window - 1))

(* monomial basis x^i y^j with i + j <= degree, in a fixed order *)
let basis degree =
  List.concat_map
    (fun i -> List.init (degree - i + 1) (fun j -> (i, j)))
    (List.init (degree + 1) Fun.id)

let qpow base e = Q.of_zint (Z.pow (Z.of_int base) e)

let system ~window ~degree =
  let off = offsets window in
  let points =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) off) off
  in
  let b = basis degree in
  let nb = List.length b in
  if nb > List.length points then
    invalid_arg "Savitzky_golay.system: degree too large for window";
  (* design matrix A: one row per window point, one column per basis
     monomial evaluated at the point *)
  let a =
    M.make (List.length points) nb (fun r c ->
        let u, v = List.nth points r in
        let i, j = List.nth b c in
        Q.mul (qpow u i) (qpow v j))
  in
  let ata = M.mul (M.transpose a) a in
  let ata_inv =
    match M.inverse ata with
    | Some inv -> inv
    | None -> invalid_arg "Savitzky_golay.system: singular normal equations"
  in
  (* kernel polynomial of window point k: q_k(x,y) = basis(x,y)^T
     (A^T A)^{-1} a_k *)
  let kernel_coeffs k =
    let a_k = M.make nb 1 (fun r _ -> M.get a k r) in
    let w = M.mul ata_inv a_k in
    List.mapi (fun c (i, j) -> ((i, j), M.get w c 0)) b
  in
  let rational_systems =
    List.mapi (fun k _ -> kernel_coeffs k) points
  in
  (* common denominator across the whole system *)
  let denom =
    List.fold_left
      (fun acc coeffs ->
        List.fold_left (fun acc (_, q) -> Z.lcm acc (Q.den q)) acc coeffs)
      Z.one rational_systems
  in
  List.map
    (fun coeffs ->
      Poly.of_terms
        (List.filter_map
           (fun ((i, j), q) ->
             let c = Q.to_zint_exn (Q.mul q (Q.of_zint denom)) in
             if Z.is_zero c then None
             else
               Some
                 ( c,
                   Monomial.of_list
                     ((if i = 0 then [] else [ ("x", i) ])
                     @ (if j = 0 then [] else [ ("y", j) ])) ))
           coeffs))
    rational_systems
