(** Seeded random polynomial systems for property-based testing and
    stress runs.  Generation is deterministic in the seed (no global
    state). *)

module Poly := Polysynth_poly.Poly

type config = {
  num_polys : int;
  num_vars : int;  (** drawn from ["x0"; "x1"; ...] *)
  max_terms : int;
  max_degree : int;
  max_coeff : int;
  sharing : bool;
      (** when set, polynomials are built from a small pool of shared
          linear blocks (so that there is genuine structure to find) *)
}

val default_config : config

val generate : seed:int -> config -> Poly.t list
