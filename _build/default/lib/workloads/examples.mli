(** The worked examples of the paper, verbatim. *)

module Poly := Polysynth_poly.Poly

val table_14_1 : Poly.t list
(** P1 = x^2+6xy+9y^2, P2 = 4xy^2+12y^3, P3 = 2x^2z+6xyz — direct cost
    17 MULT / 4 ADD, proposed decomposition 8 MULT / 1 ADD via
    d1 = x + 3y. *)

val table_14_2 : Poly.t list
(** The four-polynomial system of Table 14.2 (expanded forms) — initial
    cost 51 MULT / 21 ADD, final decomposition 14 MULT / 12 ADD via
    d1 = x+y, d2 = x-y, d3 = x(x-1)y(y-1). *)

val section_14_3_1_f : Poly.t
(** F = 4x^2y^2 - 4x^2y - 4xy^2 + 4xy + 5z^2x - 5zx
      = 4 Y2(x) Y2(y) + 5 Y2(z) Y1(x). *)

val section_14_3_1_g : Poly.t
(** G = 7x^2z^2 - 7x^2z - 7xz^2 + 7zx + 3y^2x - 3yx
      = 7 Y2(x) Y2(z) + 3 Y2(y) Y1(x). *)

val section_14_4_1 : Poly.t
(** P1 = 8x + 16y + 24z + 15a + 30b + 11, the CCE walk-through. *)

val section_14_4_2 : Poly.t list
(** P1 = x^2y + xyz, P2 = ab^2c^3 + b^2c^2x, P3 = axz + x^2z^2b, the cube
    extraction walk-through. *)

val coefficient_factoring_motivation : Poly.t
(** P = 5x^2 + 10y^3 + 15pq = 5(x^2 + 2y^3 + 3pq), the decomposition
    kernel/co-kernel factoring cannot find. *)
