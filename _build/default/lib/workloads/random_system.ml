module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

type config = {
  num_polys : int;
  num_vars : int;
  max_terms : int;
  max_degree : int;
  max_coeff : int;
  sharing : bool;
}

let default_config =
  {
    num_polys = 3;
    num_vars = 3;
    max_terms = 6;
    max_degree = 3;
    max_coeff = 16;
    sharing = true;
  }

(* small deterministic PRNG (xorshift-style) so runs are reproducible *)
type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let var_name i = Printf.sprintf "x%d" i

let random_monomial rng cfg =
  let degree = next rng (cfg.max_degree + 1) in
  let rec build acc left =
    if left = 0 then acc
    else
      let v = var_name (next rng cfg.num_vars) in
      build ((v, 1) :: acc) (left - 1)
  in
  Monomial.of_list (build [] degree)

let random_coeff rng cfg =
  let c = 1 + next rng cfg.max_coeff in
  if next rng 2 = 0 then Z.of_int c else Z.of_int (-c)

let random_linear rng cfg =
  let a = random_coeff rng cfg and b = random_coeff rng cfg in
  let v1 = var_name (next rng cfg.num_vars) in
  let v2 = var_name (next rng cfg.num_vars) in
  Poly.add
    (Poly.mul_scalar a (Poly.var v1))
    (Poly.mul_scalar b (Poly.var v2))

let random_poly rng cfg pool =
  let num_terms = 1 + next rng cfg.max_terms in
  let base =
    Poly.add_list
      (List.init num_terms (fun _ ->
           Poly.term (random_coeff rng cfg) (random_monomial rng cfg)))
  in
  if cfg.sharing && pool <> [] && next rng 2 = 0 then begin
    (* multiply a shared linear block in, or add its square *)
    let block = List.nth pool (next rng (List.length pool)) in
    if next rng 2 = 0 then Poly.mul base block
    else Poly.add base (Poly.mul block block)
  end
  else base

let generate ~seed cfg =
  let rng = make_rng seed in
  let pool =
    if cfg.sharing then List.init 2 (fun _ -> random_linear rng cfg) else []
  in
  List.init cfg.num_polys (fun _ -> random_poly rng cfg pool)
