(** Additional DSP/embedded workloads beyond the paper's Table 14.3 suite,
    used by the ablation benches and the stress tests.

    All are integer polynomial systems with documented provenance:
    truncated series and least-squares fits are computed exactly and scaled
    to integers, like the Savitzky-Golay generator. *)

module Poly := Polysynth_poly.Poly

val fir_direct : taps:int -> Poly.t
(** A power-evaluation FIR model: [sum_k c_k x^k] with symmetric
    window-like integer coefficients — a univariate degree-[taps]
    polynomial, the classic Horner stress case.
    @raise Invalid_argument for [taps < 1]. *)

val chebyshev : degree:int -> Poly.t
(** The Chebyshev polynomial [T_degree(x)] (recurrence
    [T_n = 2x T_{n-1} - T_{n-2}]), used in function-approximation
    datapaths.  @raise Invalid_argument for negative degree. *)

val lighting : unit -> Poly.t list
(** A graphics-style lighting evaluation: three output channels, each a
    degree-3 polynomial in (x, y, z) sharing the quadratic attenuation
    block ("multi-variate polynomial system from graphics
    applications"). *)

val biquad_pair : unit -> Poly.t list
(** Two cascaded biquad-section response polynomials in two variables with
    a shared resonator block. *)

val extended_suite : unit -> Benchmarks.t list
(** The extra systems packaged with benchmark metadata (FIR8, Cheb5,
    Lighting, Biquad). *)
