lib/workloads/savitzky_golay.mli: Polysynth_poly
