lib/workloads/benchmarks.mli: Polysynth_poly
