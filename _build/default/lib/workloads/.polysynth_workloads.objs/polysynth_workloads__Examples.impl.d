lib/workloads/examples.ml: Polysynth_poly
