lib/workloads/random_system.mli: Polysynth_poly
