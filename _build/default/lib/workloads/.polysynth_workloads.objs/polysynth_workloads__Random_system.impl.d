lib/workloads/random_system.ml: List Polysynth_poly Polysynth_zint Printf
