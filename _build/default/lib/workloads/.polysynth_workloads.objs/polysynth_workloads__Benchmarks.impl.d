lib/workloads/benchmarks.ml: List Polysynth_poly Savitzky_golay String
