lib/workloads/savitzky_golay.ml: Fun List Polysynth_linalg Polysynth_poly Polysynth_rat Polysynth_zint
