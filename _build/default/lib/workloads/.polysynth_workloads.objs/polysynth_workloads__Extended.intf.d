lib/workloads/extended.mli: Benchmarks Polysynth_poly
