lib/workloads/extended.ml: Benchmarks List Polysynth_poly Polysynth_zint
