lib/workloads/examples.mli: Polysynth_poly
