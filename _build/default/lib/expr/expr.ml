module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

type t =
  | Const of Z.t
  | Var of string
  | Neg of t
  | Add of t list
  | Mul of t list
  | Pow of t * int

(* ordering: variables and composite terms first, constants last, so that a
   product prints and binarizes as [x*y*...*c] *)
let rank = function
  | Var _ -> 0
  | Pow _ -> 1
  | Mul _ -> 2
  | Add _ -> 3
  | Neg _ -> 4
  | Const _ -> 5

let rec compare a b =
  let ra = rank a and rb = rank b in
  if ra <> rb then Stdlib.compare ra rb
  else
    match a, b with
    | Var x, Var y -> String.compare x y
    | Const x, Const y -> Z.compare x y
    | Neg x, Neg y -> compare x y
    | Pow (x, i), Pow (y, j) ->
      let c = compare x y in
      if c <> 0 then c else Stdlib.compare i j
    | Add xs, Add ys | Mul xs, Mul ys -> compare_list xs ys
    | (Var _ | Const _ | Neg _ | Pow _ | Add _ | Mul _), _ -> assert false

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs ys

let equal a b = compare a b = 0

let rec hash = function
  | Const c -> Z.hash c * 3
  | Var v -> Hashtbl.hash v * 5
  | Neg e -> (hash e * 7) + 1
  | Add es -> List.fold_left (fun acc e -> (acc * 31 + hash e) land max_int) 11 es
  | Mul es -> List.fold_left (fun acc e -> (acc * 37 + hash e) land max_int) 13 es
  | Pow (e, k) -> ((hash e * 41) + k) land max_int

let zero = Const Z.zero
let one = Const Z.one

let const c = if Z.is_negative c then Neg (Const (Z.neg c)) else Const c
let int n = const (Z.of_int n)
let var v = Var v

let neg = function
  | Neg e -> e
  | Const c when Z.is_zero c -> Const c
  | e -> Neg e

let rec add operands =
  (* flatten nested sums, fold all constants, sort what remains *)
  let rec flatten acc = function
    | [] -> acc
    | Add es :: rest -> flatten (flatten acc es) rest
    | Neg (Add es) :: rest -> flatten (flatten acc (List.map neg es)) rest
    | e :: rest -> flatten (e :: acc) rest
  in
  let flat = flatten [] operands in
  let constant, others =
    List.fold_left
      (fun (c, others) e ->
        match e with
        | Const k -> (Z.add c k, others)
        | Neg (Const k) -> (Z.sub c k, others)
        | Var _ | Neg _ | Add _ | Mul _ | Pow _ -> (c, e :: others))
      (Z.zero, []) flat
  in
  let parts =
    List.sort compare others
    @ (if Z.is_zero constant then [] else [ const constant ])
  in
  match parts with
  | [] -> zero
  | [ e ] -> e
  | parts ->
    (* prefer a positive first operand for readability; the set of operands
       is what matters for cost *)
    if List.for_all (fun e -> match e with Neg _ -> true | _ -> false) parts
    then Neg (Add (List.map neg parts))
    else Add parts

and sub a b = add [ a; neg b ]

and mul operands =
  let rec flatten (sign, c, fs) = function
    | [] -> (sign, c, fs)
    | Mul es :: rest -> flatten (flatten (sign, c, fs) es) rest
    | Neg e :: rest -> flatten (flatten (-sign, c, fs) [ e ]) rest
    | Const k :: rest -> flatten (sign, Z.mul c k, fs) rest
    | e :: rest -> flatten (sign, c, e :: fs) rest
  in
  let sign, c, factors = flatten (1, Z.one, []) operands in
  if Z.is_zero c then zero
  else begin
    let sign = if Z.is_negative c then -sign else sign in
    let c = Z.abs c in
    (* group equal factors into powers *)
    let grouped =
      List.sort compare factors
      |> List.fold_left
           (fun acc f ->
             match acc with
             | (g, k) :: rest when equal g f -> (g, k + 1) :: rest
             | _ -> (f, 1) :: acc)
           []
      |> List.rev_map (fun (f, k) -> if k = 1 then f else pow f k)
      |> List.sort compare
    in
    let parts = grouped @ (if Z.is_one c then [] else [ Const c ]) in
    let body =
      match parts with
      | [] -> one
      | [ e ] -> e
      | parts -> Mul parts
    in
    if sign < 0 then neg body else body
  end

and pow base k =
  if k < 0 then invalid_arg "Expr.pow: negative exponent";
  if k = 0 then one
  else if k = 1 then base
  else
    match base with
    | Const c -> Const (Z.pow c k)
    | Neg e -> if k land 1 = 0 then pow e k else neg (pow e k)
    | Pow (e, j) -> pow e (j * k)
    | Var _ | Add _ | Mul _ -> Pow (base, k)

let of_poly p =
  let of_term (c, m) =
    let factors =
      List.map (fun (v, e) -> pow (var v) e) (Monomial.to_list m)
    in
    mul (const c :: factors)
  in
  add (List.map of_term (Poly.terms p))

let rec to_poly = function
  | Const c -> Poly.const c
  | Var v -> Poly.var v
  | Neg e -> Poly.neg (to_poly e)
  | Add es -> Poly.add_list (List.map to_poly es)
  | Mul es -> List.fold_left (fun acc e -> Poly.mul acc (to_poly e)) Poly.one es
  | Pow (e, k) -> Poly.pow (to_poly e) k

let rec eval env = function
  | Const c -> c
  | Var v -> env v
  | Neg e -> Z.neg (eval env e)
  | Add es -> List.fold_left (fun acc e -> Z.add acc (eval env e)) Z.zero es
  | Mul es -> List.fold_left (fun acc e -> Z.mul acc (eval env e)) Z.one es
  | Pow (e, k) -> Z.pow (eval env e) k

let rec subst lookup = function
  | Const _ as e -> e
  | Var v as e -> (match lookup v with Some e' -> e' | None -> e)
  | Neg e -> neg (subst lookup e)
  | Add es -> add (List.map (subst lookup) es)
  | Mul es -> mul (List.map (subst lookup) es)
  | Pow (e, k) -> pow (subst lookup e) k

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var v -> v :: acc
    | Neg e | Pow (e, _) -> go acc e
    | Add es | Mul es -> List.fold_left go acc es
  in
  List.sort_uniq String.compare (go [] e)

let rec size = function
  | Const _ | Var _ -> 1
  | Neg e | Pow (e, _) -> 1 + size e
  | Add es | Mul es -> List.fold_left (fun acc e -> acc + size e) 1 es

(* precedence: 0 sum, 1 product, 2 power/atom *)
let rec pp_prec level fmt e =
  let paren needed body =
    if needed then Format.fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Const c -> Format.pp_print_string fmt (Z.to_string c)
  | Var v -> Format.pp_print_string fmt v
  | Neg e ->
    paren (level > 0) (fun fmt -> Format.fprintf fmt "-%a" (pp_prec 1) e)
  | Add es ->
    paren (level > 0) (fun fmt ->
        List.iteri
          (fun i e ->
            if i = 0 then pp_prec 1 fmt e
            else
              match e with
              | Neg e' -> Format.fprintf fmt " - %a" (pp_prec 1) e'
              | Const _ | Var _ | Add _ | Mul _ | Pow _ ->
                Format.fprintf fmt " + %a" (pp_prec 1) e)
          es)
  | Mul es ->
    paren (level > 1) (fun fmt ->
        List.iteri
          (fun i e ->
            if i > 0 then Format.pp_print_string fmt "*";
            pp_prec 2 fmt e)
          es)
  | Pow (e, k) ->
    Format.fprintf fmt "%a^%d" (pp_prec 3) e k

let pp fmt e = pp_prec 0 fmt e
let to_string e = Format.asprintf "%a" pp e
