(** Straight-line programs: a decomposition of a polynomial system.

    A program is a sequence of named building blocks (the [d_1 = x + y]
    definitions the paper's decompositions introduce) followed by one output
    expression per polynomial of the system.  Bindings may refer to earlier
    bindings by name. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

type t = {
  bindings : (string * Expr.t) list;  (** in dependency order *)
  outputs : (string * Expr.t) list;
}

val of_exprs : Expr.t list -> t
(** No bindings; outputs named [P1, P2, ...]. *)

val inline : t -> (string * Expr.t) list
(** The outputs with every binding substituted away. *)

val to_polys : t -> (string * Poly.t) list
(** Expand each output to its flat polynomial: the correctness contract is
    that a decomposition of a system expands back to the original system. *)

val eval : t -> (string -> Z.t) -> (string * Z.t) list

val to_dag : t -> Dag.t * (string * Dag.id) list
(** Lower to a shared DAG (bindings are built once and shared); returns the
    root of each output. *)

val counts : t -> Dag.counts
(** Post-CSE operator counts of the whole program. *)

val tree_counts : t -> Dag.counts
(** Naive counts with bindings inlined and no sharing: what a direct
    implementation of each output would cost. *)

val rename_fresh : prefix:string -> t -> t
(** Prefix every binding name (avoids collisions when merging programs). *)

val pp : Format.formatter -> t -> unit
