(** Structured arithmetic expressions: the output language of every
    decomposition stage.

    Where {!Polysynth_poly.Poly} is a flat sum-of-products normal form, an
    expression keeps the factored structure a decomposition found (e.g.
    [13*(x+y)^2 + 7*(x-y) + 11]), which is what determines hardware cost.
    Values are normalized just enough to make structurally-equal computations
    compare equal: operand lists are flattened and sorted, constants folded,
    signs pulled out of products. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

type t = private
  | Const of Z.t  (** a non-negative constant *)
  | Var of string
  | Neg of t  (** free in hardware cost: absorbed into adders/subtractors *)
  | Add of t list  (** >= 2 operands, sorted *)
  | Mul of t list  (** >= 2 operands, sorted, at most one trailing constant *)
  | Pow of t * int  (** exponent >= 2 *)

(** {1 Smart constructors} *)

val const : Z.t -> t
val int : int -> t
val var : string -> t
val neg : t -> t
val add : t list -> t
val sub : t -> t -> t
val mul : t list -> t
val pow : t -> int -> t
(** @raise Invalid_argument on a negative exponent. *)

val zero : t
val one : t

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Conversions} *)

val of_poly : Poly.t -> t
(** Direct sum-of-products form (what a naive implementation computes). *)

val to_poly : t -> Poly.t
(** Expand back to the flat normal form.  Every decomposition of a
    polynomial must satisfy [to_poly (decomposition p) = p]; the test suites
    rely on this. *)

val eval : (string -> Z.t) -> t -> Z.t

val subst : (string -> t option) -> t -> t
(** Replace variables; used to inline named building blocks. *)

(** {1 Structure} *)

val vars : t -> string list
(** Sorted, without duplicates. *)

val size : t -> int
(** Number of nodes in the tree. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
