(** Text syntax for straight-line programs (decompositions).

    One definition per line (or [';']-separated):
    {v
      d1 = x + 3*y
      P1 = d1^2          # comments run to end of line
      P2 = 4*y^2*d1
    v}
    Right-hand sides use the polynomial grammar of
    {!Polysynth_poly.Parse} and may reference earlier definitions by
    name.  Names defined but never referenced by a later definition are
    the program's outputs; referenced names become bindings.  This lets a
    user hand a candidate decomposition to the cost model and the
    verifier. *)

exception Parse_error of string

val program : string -> Prog.t
(** @raise Parse_error on malformed input, duplicate definitions,
    forward references, or programs with no outputs. *)
