(** Hash-consed binary operator DAGs: the common-sub-expression engine.

    An expression (or a whole system of them) is lowered to binary
    add/sub/mul nodes; hash-consing merges structurally identical
    computations, so the number of live nodes *is* the post-CSE operator
    count.  N-ary sums and products are binarized over their canonically
    sorted operand lists and powers are lowered to multiplication chains, so
    equal sub-computations (including shared power prefixes like [y^2]
    inside [y^3]) land on the same node.

    Operator counting follows the paper's convention: every multiplication
    — including multiplication by a non-trivial constant — is a MULT;
    every binary addition or subtraction is an ADD; negation is free. *)

module Z := Polysynth_zint.Zint

type t
type id = private int

type node =
  | Nconst of Z.t  (** non-negative *)
  | Nvar of string
  | Nneg of id
  | Nadd of id * id
  | Nsub of id * id
  | Nmul of id * id

val create : unit -> t

val add_expr : ?env:(string -> id option) -> t -> Expr.t -> id
(** Lower an expression into the DAG.  [env] resolves variable names that
    stand for previously-built blocks (named building blocks share their
    nodes through it). *)

val node : t -> id -> node
(** @raise Invalid_argument on an out-of-range id. *)

val num_nodes : t -> int

val live : t -> roots:id list -> id list
(** Ids reachable from the roots, in increasing (topological) order. *)

type counts = {
  mults : int;  (** all multiplications *)
  const_mults : int;  (** of which one operand is a constant *)
  adds : int;  (** additions plus subtractions *)
}

val counts : t -> roots:id list -> counts
val zero_counts : counts
val total_ops : counts -> int

val tree_counts : Expr.t -> counts
(** Operator count of one expression *as a tree* (no sharing at all): the
    cost of a naive direct implementation. *)

val eval : t -> (string -> Z.t) -> id -> Z.t

val pp_node : t -> Format.formatter -> id -> unit
