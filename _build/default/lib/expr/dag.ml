module Z = Polysynth_zint.Zint

type id = int

type node =
  | Nconst of Z.t
  | Nvar of string
  | Nneg of id
  | Nadd of id * id
  | Nsub of id * id
  | Nmul of id * id

let node_hash = function
  | Nconst c -> Z.hash c * 3
  | Nvar v -> Hashtbl.hash v * 5
  | Nneg a -> (a * 7) + 1
  | Nadd (a, b) -> (a * 8191) + (b * 31) + 2
  | Nsub (a, b) -> (a * 8191) + (b * 31) + 3
  | Nmul (a, b) -> (a * 8191) + (b * 31) + 4

let node_equal a b =
  match a, b with
  | Nconst x, Nconst y -> Z.equal x y
  | Nvar x, Nvar y -> String.equal x y
  | Nneg x, Nneg y -> x = y
  | Nadd (x, y), Nadd (x', y')
  | Nsub (x, y), Nsub (x', y')
  | Nmul (x, y), Nmul (x', y') -> x = x' && y = y'
  | (Nconst _ | Nvar _ | Nneg _ | Nadd _ | Nsub _ | Nmul _), _ -> false

module Memo = Hashtbl.Make (struct
  type t = node

  let equal = node_equal
  let hash n = node_hash n land max_int
end)

type t = { mutable nodes : node array; mutable len : int; memo : id Memo.t }

let create () = { nodes = Array.make 64 (Nconst Z.zero); len = 0; memo = Memo.create 64 }

let num_nodes dag = dag.len

let node dag i =
  if i < 0 || i >= dag.len then invalid_arg "Dag.node: id out of range";
  dag.nodes.(i)

let intern dag n =
  match Memo.find_opt dag.memo n with
  | Some id -> id
  | None ->
    if dag.len = Array.length dag.nodes then begin
      let bigger = Array.make (2 * dag.len) (Nconst Z.zero) in
      Array.blit dag.nodes 0 bigger 0 dag.len;
      dag.nodes <- bigger
    end;
    let id = dag.len in
    dag.nodes.(id) <- n;
    dag.len <- dag.len + 1;
    Memo.add dag.memo n id;
    id

(* Commutative operators get canonically ordered operands so that a+b and
   b+a coincide. *)
let mk_add dag a b = intern dag (Nadd (Stdlib.min a b, Stdlib.max a b))
let mk_mul dag a b = intern dag (Nmul (Stdlib.min a b, Stdlib.max a b))
let mk_sub dag a b = intern dag (Nsub (a, b))
let mk_neg dag a = intern dag (Nneg a)

(* balanced pairwise reduction: combine adjacent pairs until one value is
   left.  Depth is logarithmic, and equal operand prefixes of sorted lists
   still meet on shared nodes. *)
let reduce_balanced combine ids =
  let rec round = function
    | [] -> invalid_arg "Dag.reduce_balanced: empty"
    | [ x ] -> x
    | xs ->
      let rec pair_up = function
        | [] -> []
        | [ x ] -> [ x ]
        | a :: b :: rest -> combine a b :: pair_up rest
      in
      round (pair_up xs)
  in
  round ids

let add_expr ?(env = fun _ -> None) dag expr =
  let rec build e =
    match (e : Expr.t) with
    | Expr.Const c -> intern dag (Nconst c)
    | Expr.Var v ->
      (match env v with Some id -> id | None -> intern dag (Nvar v))
    | Expr.Neg e -> mk_neg dag (build e)
    | Expr.Pow (b, k) ->
      (* multiplication chain: shares power prefixes via hash-consing *)
      let base = build b in
      let rec chain acc i = if i >= k then acc else chain (mk_mul dag acc base) (i + 1) in
      chain base 1
    | Expr.Mul factors ->
      (match List.map build factors with
       | [] -> intern dag (Nconst Z.one)
       | ids -> reduce_balanced (mk_mul dag) ids)
    | Expr.Add operands ->
      (* positive operands form a balanced adder tree, negative ones a
         balanced tree subtracted once — the shape a synthesis tool's
         tree-height reduction would build *)
      let pos, negs =
        List.partition_map
          (fun e ->
            match (e : Expr.t) with
            | Expr.Neg e' -> Either.Right e'
            | Expr.Const _ | Expr.Var _ | Expr.Add _ | Expr.Mul _ | Expr.Pow _ ->
              Either.Left e)
          operands
      in
      let pos_ids = List.map build pos and neg_ids = List.map build negs in
      (match pos_ids, neg_ids with
       | [], [] -> intern dag (Nconst Z.zero)
       | [], ns -> mk_neg dag (reduce_balanced (mk_add dag) ns)
       | ps, [] -> reduce_balanced (mk_add dag) ps
       | ps, ns ->
         mk_sub dag
           (reduce_balanced (mk_add dag) ps)
           (reduce_balanced (mk_add dag) ns))
  in
  build expr

let live dag ~roots =
  let seen = Array.make dag.len false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      match dag.nodes.(i) with
      | Nconst _ | Nvar _ -> ()
      | Nneg a -> visit a
      | Nadd (a, b) | Nsub (a, b) | Nmul (a, b) -> visit a; visit b
    end
  in
  List.iter visit roots;
  let out = ref [] in
  for i = dag.len - 1 downto 0 do
    if seen.(i) then out := i :: !out
  done;
  !out

type counts = { mults : int; const_mults : int; adds : int }

let zero_counts = { mults = 0; const_mults = 0; adds = 0 }

let total_ops c = c.mults + c.adds

let counts dag ~roots =
  let is_const i = match dag.nodes.(i) with Nconst _ -> true | _ -> false in
  List.fold_left
    (fun acc i ->
      match dag.nodes.(i) with
      | Nconst _ | Nvar _ | Nneg _ -> acc
      | Nadd _ | Nsub _ -> { acc with adds = acc.adds + 1 }
      | Nmul (a, b) ->
        {
          acc with
          mults = acc.mults + 1;
          const_mults =
            (acc.const_mults + if is_const a || is_const b then 1 else 0);
        })
    zero_counts (live dag ~roots)

let tree_counts expr =
  let rec go acc (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Var _ -> acc
    | Expr.Neg e -> go acc e
    | Expr.Pow (b, k) ->
      let acc = go acc b in
      { acc with mults = acc.mults + (k - 1) }
    | Expr.Mul factors ->
      let acc = List.fold_left go acc factors in
      let n = List.length factors in
      let const_ops =
        List.length
          (List.filter
             (fun f -> match (f : Expr.t) with Expr.Const _ -> true | _ -> false)
             factors)
      in
      {
        acc with
        mults = acc.mults + (n - 1);
        const_mults = acc.const_mults + const_ops;
      }
    | Expr.Add operands ->
      let acc = List.fold_left go acc operands in
      { acc with adds = acc.adds + (List.length operands - 1) }
  in
  go zero_counts expr

let eval dag env root =
  let memo = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt memo i with
    | Some v -> v
    | None ->
      let v =
        match dag.nodes.(i) with
        | Nconst c -> c
        | Nvar v -> env v
        | Nneg a -> Z.neg (go a)
        | Nadd (a, b) -> Z.add (go a) (go b)
        | Nsub (a, b) -> Z.sub (go a) (go b)
        | Nmul (a, b) -> Z.mul (go a) (go b)
      in
      Hashtbl.add memo i v;
      v
  in
  go root

let pp_node dag fmt i =
  match node dag i with
  | Nconst c -> Format.fprintf fmt "n%d = %s" i (Z.to_string c)
  | Nvar v -> Format.fprintf fmt "n%d = %s" i v
  | Nneg a -> Format.fprintf fmt "n%d = -n%d" i a
  | Nadd (a, b) -> Format.fprintf fmt "n%d = n%d + n%d" i a b
  | Nsub (a, b) -> Format.fprintf fmt "n%d = n%d - n%d" i a b
  | Nmul (a, b) -> Format.fprintf fmt "n%d = n%d * n%d" i a b
