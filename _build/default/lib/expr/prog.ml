module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

type t = {
  bindings : (string * Expr.t) list;
  outputs : (string * Expr.t) list;
}

let of_exprs exprs =
  {
    bindings = [];
    outputs = List.mapi (fun i e -> (Printf.sprintf "P%d" (i + 1), e)) exprs;
  }

let inline prog =
  let resolved = Hashtbl.create 8 in
  let lookup v = Hashtbl.find_opt resolved v in
  List.iter
    (fun (name, e) -> Hashtbl.replace resolved name (Expr.subst lookup e))
    prog.bindings;
  List.map (fun (name, e) -> (name, Expr.subst lookup e)) prog.outputs

let to_polys prog =
  List.map (fun (name, e) -> (name, Expr.to_poly e)) (inline prog)

let eval prog env =
  let values = Hashtbl.create 8 in
  let extended v =
    match Hashtbl.find_opt values v with Some x -> x | None -> env v
  in
  List.iter
    (fun (name, e) -> Hashtbl.replace values name (Expr.eval extended e))
    prog.bindings;
  List.map (fun (name, e) -> (name, Expr.eval extended e)) prog.outputs

let to_dag prog =
  let dag = Dag.create () in
  let ids = Hashtbl.create 8 in
  let env v = Hashtbl.find_opt ids v in
  List.iter
    (fun (name, e) -> Hashtbl.replace ids name (Dag.add_expr ~env dag e))
    prog.bindings;
  let roots =
    List.map (fun (name, e) -> (name, Dag.add_expr ~env dag e)) prog.outputs
  in
  (dag, roots)

let counts prog =
  let dag, roots = to_dag prog in
  Dag.counts dag ~roots:(List.map snd roots)

let tree_counts prog =
  List.fold_left
    (fun acc (_, e) ->
      let c = Dag.tree_counts e in
      Dag.
        {
          mults = acc.mults + c.mults;
          const_mults = acc.const_mults + c.const_mults;
          adds = acc.adds + c.adds;
        })
    Dag.zero_counts (inline prog)

let rename_fresh ~prefix prog =
  let rename v = prefix ^ v in
  let bound = List.map fst prog.bindings in
  let lookup v =
    if List.mem v bound then Some (Expr.var (rename v)) else None
  in
  {
    bindings =
      List.map (fun (n, e) -> (rename n, Expr.subst lookup e)) prog.bindings;
    outputs = List.map (fun (n, e) -> (n, Expr.subst lookup e)) prog.outputs;
  }

let pp fmt prog =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (n, e) -> Format.fprintf fmt "%s = %a;@," n Expr.pp e)
    prog.bindings;
  List.iteri
    (fun i (n, e) ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%s = %a;" n Expr.pp e)
    prog.outputs;
  Format.fprintf fmt "@]"
