lib/expr/prog.ml: Dag Expr Format Hashtbl List Polysynth_poly Polysynth_zint Printf
