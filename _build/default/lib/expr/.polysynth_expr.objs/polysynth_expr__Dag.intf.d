lib/expr/dag.mli: Expr Format Polysynth_zint
