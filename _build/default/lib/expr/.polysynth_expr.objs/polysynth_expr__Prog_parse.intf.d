lib/expr/prog_parse.mli: Prog
