lib/expr/expr.ml: Format Hashtbl List Polysynth_poly Polysynth_zint Stdlib String
