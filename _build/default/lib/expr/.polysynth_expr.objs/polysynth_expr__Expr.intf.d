lib/expr/expr.mli: Format Polysynth_poly Polysynth_zint
