lib/expr/prog_parse.ml: Expr List Polysynth_poly Prog String
