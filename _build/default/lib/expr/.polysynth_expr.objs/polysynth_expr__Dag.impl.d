lib/expr/dag.ml: Array Either Expr Format Hashtbl List Polysynth_zint Stdlib String
