lib/expr/prog.mli: Dag Expr Format Polysynth_poly Polysynth_zint
