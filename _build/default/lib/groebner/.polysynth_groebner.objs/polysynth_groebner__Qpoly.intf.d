lib/groebner/qpoly.mli: Polysynth_poly Polysynth_rat Polysynth_zint
