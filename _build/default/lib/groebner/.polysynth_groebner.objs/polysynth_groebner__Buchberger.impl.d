lib/groebner/buchberger.ml: Array List Option Polysynth_expr Polysynth_poly Polysynth_rat Polysynth_zint Qpoly Queue String
