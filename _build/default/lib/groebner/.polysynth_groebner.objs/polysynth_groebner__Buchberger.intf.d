lib/groebner/buchberger.mli: Polysynth_expr Polysynth_poly Qpoly
