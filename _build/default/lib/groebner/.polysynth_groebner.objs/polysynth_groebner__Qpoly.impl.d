lib/groebner/qpoly.ml: List Polysynth_poly Polysynth_rat Polysynth_zint Stdlib String
