(** Multivariate polynomials with rational coefficients under a
    {e configurable} monomial order — the working representation of the
    Buchberger machinery (Gröbner computations need elimination orders,
    which the main {!Polysynth_poly.Poly} type's fixed graded-lex order
    cannot express, and rational coefficients so that reductions are
    always exact). *)

module Z := Polysynth_zint.Zint
module Q := Polysynth_rat.Qint
module Monomial := Polysynth_poly.Monomial
module Poly := Polysynth_poly.Poly

(** {1 Monomial orders} *)

type order = Monomial.t -> Monomial.t -> int

val grlex : order
(** The default graded-lex order of {!Monomial.compare}. *)

val lex : string list -> order
(** Pure lexicographic order with the given variable priority (earlier in
    the list = more significant); variables not listed rank below all
    listed ones, ordered alphabetically.  This is the elimination order
    used to rewrite a polynomial in terms of library blocks. *)

(** {1 Polynomials} *)

type t
(** Terms sorted descending under the order fixed at construction. *)

val of_poly : order -> Poly.t -> t
val zero : order -> t
val const : order -> Q.t -> t
val order_of : t -> order
val is_zero : t -> bool
val terms : t -> (Q.t * Monomial.t) list

val leading : t -> Q.t * Monomial.t
(** @raise Invalid_argument on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Q.t -> t -> t
val mul_term : Q.t -> Monomial.t -> t -> t
val monic : t -> t
val equal : t -> t -> bool

val to_poly : t -> Poly.t * Z.t
(** [(p, d)] with the input equal to [p / d], [p] an integer polynomial
    and [d > 0] the common denominator. *)
