module Z = Polysynth_zint.Zint
module Q = Polysynth_rat.Qint
module Monomial = Polysynth_poly.Monomial
module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr

let reduce basis p =
  let basis = List.filter (fun g -> not (Qpoly.is_zero g)) basis in
  let rec go residue p =
    if Qpoly.is_zero p then residue
    else begin
      let cp, mp = Qpoly.leading p in
      match
        List.find_opt
          (fun g -> Monomial.divides (snd (Qpoly.leading g)) mp)
          basis
      with
      | Some g ->
        let cg, mg = Qpoly.leading g in
        let quot_m = Option.get (Monomial.div mp mg) in
        go residue (Qpoly.sub p (Qpoly.mul_term (Q.div cp cg) quot_m g))
      | None ->
        let head =
          Qpoly.mul_term cp mp (Qpoly.const (Qpoly.order_of p) Q.one)
        in
        go (Qpoly.add residue head) (Qpoly.sub p head)
    end
  in
  go (Qpoly.zero (Qpoly.order_of p)) p

let s_polynomial f g =
  let cf, mf = Qpoly.leading f and cg, mg = Qpoly.leading g in
  let l = Monomial.lcm mf mg in
  let uf = Option.get (Monomial.div l mf) in
  let ug = Option.get (Monomial.div l mg) in
  Qpoly.sub
    (Qpoly.mul_term (Q.inv cf) uf f)
    (Qpoly.mul_term (Q.inv cg) ug g)

let basis ?(max_steps = 2000) generators =
  let generators =
    List.map Qpoly.monic
      (List.filter (fun g -> not (Qpoly.is_zero g)) generators)
  in
  match generators with
  | [] -> []
  | _ ->
    let g = ref (Array.of_list generators) in
    let pairs = Queue.create () in
    let n0 = Array.length !g in
    for i = 0 to n0 - 1 do
      for j = i + 1 to n0 - 1 do
        Queue.add (i, j) pairs
      done
    done;
    let steps = ref 0 in
    while not (Queue.is_empty pairs) do
      incr steps;
      if !steps > max_steps then
        failwith "Buchberger.basis: completion exceeded max_steps";
      let i, j = Queue.pop pairs in
      let gi = !g.(i) and gj = !g.(j) in
      let _, mi = Qpoly.leading gi and _, mj = Qpoly.leading gj in
      (* Buchberger's first criterion: coprime leading monomials reduce
         to zero automatically *)
      if not (Monomial.is_one (Monomial.gcd mi mj)) then begin
        let r = reduce (Array.to_list !g) (s_polynomial gi gj) in
        if not (Qpoly.is_zero r) then begin
          let r = Qpoly.monic r in
          let idx = Array.length !g in
          g := Array.append !g [| r |];
          for k = 0 to idx - 1 do
            Queue.add (k, idx) pairs
          done
        end
      end
    done;
    (* inter-reduce: drop elements whose leading monomial is divisible by
       another's, then reduce each tail by the others *)
    let items = Array.to_list !g in
    let minimal =
      List.filteri
        (fun i gi ->
          let _, mi = Qpoly.leading gi in
          not
            (List.exists
               (fun (j, gj) ->
                 j <> i
                 &&
                 let _, mj = Qpoly.leading gj in
                 Monomial.divides mj mi
                 && (not (Monomial.equal mj mi) || j < i))
               (List.mapi (fun j gj -> (j, gj)) items)))
        items
    in
    List.map
      (fun gi ->
        let others = List.filter (fun gj -> not (Qpoly.equal gj gi)) minimal in
        Qpoly.monic (reduce others gi))
      minimal

let ideal_member gb p = Qpoly.is_zero (reduce gb p)


let rewrite_with_library ~library p =
  if Poly.is_zero p || library = [] then None
  else begin
    let input_vars =
      List.sort_uniq String.compare
        (Poly.vars p @ List.concat_map (fun (_, b) -> Poly.vars b) library)
    in
    let block_vars = List.map fst library in
    (* elimination order: original variables are more significant, so the
       normal form prefers block variables *)
    let ord = Qpoly.lex (input_vars @ block_vars) in
    let generators =
      List.map
        (fun (name, b) -> Qpoly.of_poly ord (Poly.sub (Poly.var name) b))
        library
    in
    let gb = basis generators in
    let nf = reduce gb (Qpoly.of_poly ord p) in
    let zpoly, denom = Qpoly.to_poly nf in
    if not (Z.is_one denom) then None
    else if Poly.equal zpoly p then None
    else Some (Expr.of_poly zpoly, zpoly)
  end
