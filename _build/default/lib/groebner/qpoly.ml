module Z = Polysynth_zint.Zint
module Q = Polysynth_rat.Qint
module Monomial = Polysynth_poly.Monomial
module Poly = Polysynth_poly.Poly

type order = Monomial.t -> Monomial.t -> int

let grlex = Monomial.compare

let lex priority a b =
  (* significance: listed variables by position, then the rest
     alphabetically below them *)
  let rank v =
    let rec find i = function
      | [] -> None
      | v' :: rest -> if String.equal v v' then Some i else find (i + 1) rest
    in
    find 0 priority
  in
  let vars =
    List.sort_uniq
      (fun v1 v2 ->
        match rank v1, rank v2 with
        | Some i, Some j -> Stdlib.compare i j
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> String.compare v1 v2)
      (Monomial.vars a @ Monomial.vars b)
  in
  let rec cmp = function
    | [] -> 0
    | v :: rest ->
      let c = Stdlib.compare (Monomial.degree_of v a) (Monomial.degree_of v b) in
      if c <> 0 then c else cmp rest
  in
  cmp vars

(* terms sorted descending under [ord], no zero coefficients *)
type t = { ord : order; terms : (Q.t * Monomial.t) list }

let zero ord = { ord; terms = [] }

let const ord c =
  if Q.is_zero c then zero ord else { ord; terms = [ (c, Monomial.one) ] }

let order_of p = p.ord

let is_zero p = p.terms = []

let terms p = p.terms

let of_terms ord list =
  let sorted =
    List.stable_sort (fun (_, m1) (_, m2) -> ord m2 m1) list
  in
  let rec combine = function
    | [] -> []
    | (c, m) :: rest ->
      (match combine rest with
       | (c', m') :: tail when Monomial.equal m m' ->
         let s = Q.add c c' in
         if Q.is_zero s then tail else (s, m) :: tail
       | tail -> if Q.is_zero c then tail else (c, m) :: tail)
  in
  { ord; terms = combine sorted }

let of_poly ord p =
  of_terms ord
    (List.map (fun (c, m) -> (Q.of_zint c, m)) (Poly.terms p))

let leading p =
  match p.terms with
  | [] -> invalid_arg "Qpoly.leading: zero polynomial"
  | t :: _ -> t

let add a b = of_terms a.ord (a.terms @ b.terms)

let scale k p =
  if Q.is_zero k then { p with terms = [] }
  else { p with terms = List.map (fun (c, m) -> (Q.mul k c, m)) p.terms }

let sub a b = add a (scale Q.minus_one b)

let mul_term k m p =
  if Q.is_zero k then { p with terms = [] }
  else
    of_terms p.ord
      (List.map (fun (c, m') -> (Q.mul k c, Monomial.mul m m')) p.terms)

let monic p =
  if is_zero p then p else scale (Q.inv (fst (leading p))) p

let equal a b =
  List.length a.terms = List.length b.terms
  && List.for_all2
       (fun (c, m) (c', m') -> Q.equal c c' && Monomial.equal m m')
       a.terms b.terms

let to_poly p =
  let denom =
    List.fold_left (fun acc (c, _) -> Z.lcm acc (Q.den c)) Z.one p.terms
  in
  let zp =
    Poly.of_terms
      (List.map
         (fun (c, m) ->
           (Q.to_zint_exn (Q.mul c (Q.of_zint denom)), m))
         p.terms)
  in
  (zp, denom)
