(** Regeneration of every table and figure of the paper's evaluation, plus
    the ablation studies DESIGN.md calls out.  Each function both returns
    structured rows (for tests) and renders aligned text (for the bench
    harness and the [experiments] executable). *)

(** {1 Table 14.1 — motivating example operator counts} *)

type counts_row = { scheme : string; mults : int; adds : int }

val table_14_1_rows : unit -> counts_row list
(** Direct / Horner / factoring+CSE / proposed on the 3-polynomial
    motivating system.  Direct and Horner are counted without sharing, the
    CSE-based schemes on their shared DAGs, as in the paper. *)

val table_14_2_rows : unit -> counts_row list
(** Initial (direct) and final (proposed) operator counts of the
    Algorithm 7 walk-through system. *)

(** {1 Table 14.3 — benchmark comparison} *)

type bench_row = {
  name : string;
  characteristics : string;  (** "vars/deg/m" *)
  num_polys : int;
  base_area : int;
  base_delay : float;
  prop_area : int;
  prop_delay : float;
  area_improvement_pct : float;
  delay_improvement_pct : float;
}

val table_14_3_rows : ?names:string list -> unit -> bench_row list
(** One row per benchmark (default: all eight of the paper). *)

val average_area_improvement : bench_row list -> float

(** {1 Figure 14.1 — the representation data structure} *)

val fig_14_1_dump : unit -> string
(** Representation lists of every polynomial of the Table 14.2 system, with
    the selected combination marked. *)

(** {1 Ablations} *)

type ablation_row = { variant : string; area : int; delay : float; ops : int }

val ablation_rows : ?names:string list -> unit -> (string * ablation_row list) list
(** Per benchmark: area of each pipeline variant in isolation (direct,
    Horner, factor+CSE baseline, per-polynomial search only, each
    integrated ordering, and the full proposed flow). *)

(** {1 Extended studies (beyond the paper)} *)

val strategy_rows : ?names:string list -> unit -> (string * ablation_row list) list
(** Greedy vs. kernel-cube-matrix extraction baselines per benchmark. *)

val objective_rows : ?names:string list -> unit -> (string * ablation_row list) list
(** The proposed flow optimized for area, delay, power and raw operator
    count (on the small benchmarks by default). *)

val schedule_rows :
  ?names:string list -> unit -> (string * (string * int) list) list
(** Latency of the proposed decomposition under different resource budgets
    (multipliers x adders), per benchmark. *)

val extended_rows : unit -> bench_row list
(** Table 14.3-style comparison over the extended workload suite
    (FIR8, Cheb5, Lighting, Biquad). *)

val mcm_rows : ?names:string list -> unit -> (string * ablation_row list) list
(** The proposed decomposition before and after lowering constant
    multiplications to shared shift-add networks (MCM). *)

val implementation_rows :
  ?names:string list -> unit -> (string * string list) list
(** Sequential (FSMD) and pipelined implementation summaries of the
    proposed decompositions. *)

val render_implementation : (string * string list) list -> string

val render_named_ablation : title:string -> (string * ablation_row list) list -> string
val render_schedule : (string * (string * int) list) list -> string

(** {1 Rendering} *)

val render_counts : title:string -> counts_row list -> string
val render_table_14_3 : bench_row list -> string
val render_ablation : (string * ablation_row list) list -> string
