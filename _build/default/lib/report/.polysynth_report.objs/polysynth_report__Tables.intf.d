lib/report/tables.mli:
