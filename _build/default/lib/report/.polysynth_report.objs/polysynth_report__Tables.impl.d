lib/report/tables.ml: Array Buffer List Polysynth_core Polysynth_cse Polysynth_expr Polysynth_finite_ring Polysynth_hw Polysynth_poly Polysynth_workloads Printf String
