module F = Fp_poly

(* rows of the Frobenius matrix: x^(i*p) mod f, as length-n arrays *)
let frobenius_rows ~p f =
  let n = F.degree f in
  let xp = F.pow_mod ~p [| 0; 1 |] p ~modulus:f in
  let pad a = Array.init n (fun i -> if i < Array.length a then a.(i) else 0) in
  let rec rows acc current i =
    if i >= n then List.rev acc
    else
      let next = snd (F.divmod ~p (F.mul ~p current xp) f) in
      rows (pad current :: acc) next (i + 1)
  in
  rows [] F.one 0

(* nullspace basis of (Q^T - I) over F_p, as polynomials *)
let berlekamp_basis ~p f =
  let n = F.degree f in
  let q_rows = Array.of_list (frobenius_rows ~p f) in
  (* m = Q^T - I: column j of m is row j of Q minus e_j *)
  let m =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let v = q_rows.(j).(i) - if i = j then 1 else 0 in
            let v = v mod p in
            if v < 0 then v + p else v))
  in
  (* gaussian elimination tracking pivot columns *)
  let pivot_of_row = Array.make n (-1) in
  let row = ref 0 in
  for col = 0 to n - 1 do
    if !row < n then begin
      let pivot =
        let rec find i =
          if i >= n then None else if m.(i).(col) <> 0 then Some i else find (i + 1)
        in
        find !row
      in
      match pivot with
      | None -> ()
      | Some pr ->
        let tmp = m.(pr) in
        m.(pr) <- m.(!row);
        m.(!row) <- tmp;
        let inv = F.inv_mod_p ~p m.(!row).(col) in
        for j = 0 to n - 1 do
          m.(!row).(j) <- m.(!row).(j) * inv mod p
        done;
        for i = 0 to n - 1 do
          if i <> !row && m.(i).(col) <> 0 then begin
            let factor = m.(i).(col) in
            for j = 0 to n - 1 do
              let v = (m.(i).(j) - (factor * m.(!row).(j) mod p)) mod p in
              m.(i).(j) <- (if v < 0 then v + p else v)
            done
          end
        done;
        pivot_of_row.(!row) <- col;
        incr row
    end
  done;
  let pivot_cols = Array.to_list (Array.sub pivot_of_row 0 !row) in
  let free_cols =
    List.filter (fun c -> not (List.mem c pivot_cols)) (List.init n Fun.id)
  in
  (* basis vector per free column *)
  List.map
    (fun fc ->
      let v = Array.make n 0 in
      v.(fc) <- 1;
      for r = 0 to !row - 1 do
        let pc = pivot_of_row.(r) in
        if pc >= 0 && m.(r).(fc) <> 0 then v.(pc) <- (p - m.(r).(fc)) mod p
      done;
      (Array.of_list (Array.to_list v) : F.t))
    free_cols

let nullspace_dimension ~p f = List.length (berlekamp_basis ~p (F.monic ~p f))

let factor ~p f =
  if F.degree f < 1 then invalid_arg "Berlekamp.factor: constant input";
  let f = F.monic ~p f in
  let basis = berlekamp_basis ~p f in
  let target = List.length basis in
  let factors = ref [ f ] in
  let split_done () = List.length !factors >= target in
  List.iter
    (fun v ->
      let v =
        (* drop trailing zeros to make it a polynomial *)
        F.add ~p [||] v
      in
      if not (split_done ()) && F.degree v >= 1 then
        for c = 0 to p - 1 do
          if not (split_done ()) then begin
            let v_minus_c = F.sub ~p v (F.of_list ~p [ c ]) in
            factors :=
              List.concat_map
                (fun h ->
                  if F.degree h <= 1 then [ h ]
                  else begin
                    let g = F.gcd ~p v_minus_c h in
                    if F.degree g >= 1 && F.degree g < F.degree h then
                      [ g; fst (F.divmod ~p h g) ]
                    else [ h ]
                  end)
                !factors
          end
        done)
    basis;
  List.sort Stdlib.compare (List.map (F.monic ~p) !factors)
