module Z = Polysynth_zint.Zint

type zpoly = Z.t array

(* ---- dense polynomial arithmetic over Z/m ---------------------------------- *)

let norm ~m a =
  let reduce c = snd (Z.ediv_rem c m) in
  let a = Array.map reduce a in
  let n = Array.length a in
  let rec top i = if i >= 0 && Z.is_zero a.(i) then top (i - 1) else i in
  Array.sub a 0 (top (n - 1) + 1)

let degree a =
  let rec top i = if i >= 0 && Z.is_zero a.(i) then top (i - 1) else i in
  top (Array.length a - 1)

let is_zero a = degree a < 0

let coeff a i = if i < Array.length a then a.(i) else Z.zero

let lc a =
  let d = degree a in
  if d < 0 then invalid_arg "Hensel.lc: zero polynomial" else a.(d)

let add ~m a b =
  norm ~m
    (Array.init
       (Stdlib.max (Array.length a) (Array.length b))
       (fun i -> Z.add (coeff a i) (coeff b i)))

let sub ~m a b =
  norm ~m
    (Array.init
       (Stdlib.max (Array.length a) (Array.length b))
       (fun i -> Z.sub (coeff a i) (coeff b i)))

let mul ~m a b =
  if is_zero a || is_zero b then [||]
  else begin
    let r = Array.make (degree a + degree b + 1) Z.zero in
    for i = 0 to degree a do
      if not (Z.is_zero a.(i)) then
        for j = 0 to degree b do
          r.(i + j) <- Z.add r.(i + j) (Z.mul a.(i) b.(j))
        done
    done;
    norm ~m r
  end

let scale ~m k a = norm ~m (Array.map (Z.mul k) a)

(* inverse of u mod m (m a prime power p^k, p coprime to u): lift the
   F_p inverse by Newton iteration x -> x(2 - ux) *)
let inv_mod ~p ~m u =
  let u0 = Z.to_int_exn (snd (Z.ediv_rem u (Z.of_int p))) in
  let x = ref (Z.of_int (Fp_poly.inv_mod_p ~p u0)) in
  let continue = ref true in
  while !continue do
    let prod = snd (Z.ediv_rem (Z.mul u !x) m) in
    if Z.is_one prod then continue := false
    else begin
      let two_minus = Z.sub Z.two prod in
      x := snd (Z.ediv_rem (Z.mul !x two_minus) m)
    end
  done;
  !x

(* division by a polynomial whose leading coefficient is invertible mod m *)
let divmod ~p ~m a b =
  let db = degree b in
  if db < 0 then raise Division_by_zero;
  let inv_lc = inv_mod ~p ~m (lc b) in
  let r = Array.map (fun c -> snd (Z.ediv_rem c m)) a in
  let da = degree r in
  if da < db then ([||], norm ~m r)
  else begin
    let q = Array.make (da - db + 1) Z.zero in
    for k = da - db downto 0 do
      let c = snd (Z.ediv_rem (Z.mul (coeff r (k + db)) inv_lc) m) in
      if not (Z.is_zero c) then begin
        q.(k) <- c;
        for j = 0 to db do
          r.(k + j) <- snd (Z.ediv_rem (Z.sub r.(k + j) (Z.mul c b.(j))) m)
        done
      end
    done;
    (norm ~m q, norm ~m r)
  end

let of_fp (a : Fp_poly.t) : zpoly = Array.map Z.of_int a

(* ---- the quadratic Hensel step ---------------------------------------------- *)

(* given f = g*h (mod m), s*g + t*h = 1 (mod m), g monic, lc(h) invertible:
   returns (g', h', s', t') with the same relations mod m^2 and
   g' = g, h' = h (mod m) *)
let hensel_step ~p ~m f g h s t =
  let m2 = Z.mul m m in
  let e = sub ~m:m2 f (mul ~m:m2 g h) in
  (* solve g*dh + h*dg = e: dg = (t*e) rem g, dh = s*e + h*((t*e) div g) *)
  let te = mul ~m:m2 t e in
  let q, dg = divmod ~p ~m:m2 te g in
  let dh = add ~m:m2 (mul ~m:m2 s e) (mul ~m:m2 h q) in
  let g' = add ~m:m2 g dg in
  let h' = add ~m:m2 h dh in
  (* lift the Bezout identity *)
  let b =
    sub ~m:m2 (add ~m:m2 (mul ~m:m2 s g') (mul ~m:m2 t h')) [| Z.one |]
  in
  let tb = mul ~m:m2 t b in
  let q2, r2 = divmod ~p ~m:m2 tb g' in
  let t' = sub ~m:m2 t r2 in
  let s' = sub ~m:m2 s (add ~m:m2 (mul ~m:m2 s b) (mul ~m:m2 h' q2)) in
  (g', h', s', t')

(* lift f = g*h from mod p to mod (first power p^(2^i) >= target) *)
let lift_pair ~p ~target f g h =
  let zp = Z.of_int p in
  (* initial Bezout over F_p *)
  let gp = Array.map (fun c -> Z.to_int_exn (snd (Z.ediv_rem c zp))) g in
  let hp = Array.map (fun c -> Z.to_int_exn (snd (Z.ediv_rem c zp))) h in
  let _, s0, t0 =
    Fp_poly.extended_gcd ~p (Fp_poly.add ~p [||] gp) (Fp_poly.add ~p [||] hp)
  in
  let rec go m g h s t =
    if Z.compare m target >= 0 then (m, g, h)
    else begin
      let g', h', s', t' = hensel_step ~p ~m f g h s t in
      go (Z.mul m m) g' h' s' t'
    end
  in
  go zp (norm ~m:zp g) (norm ~m:zp h) (of_fp s0) (of_fp t0)

(* multi-factor lifting by splitting the factor list *)
let lift_factors ~p ~target f facs =
  let zp = Z.of_int p in
  (* the final modulus must be consistent across the tree: precompute it *)
  let final_m =
    let rec go m = if Z.compare m target >= 0 then m else go (Z.mul m m) in
    go zp
  in
  let rec lift f facs =
    (* invariant: f = lc(f) * prod facs (mod p) *)
    match facs with
    | [] -> invalid_arg "Hensel.lift_factors: no factors"
    | [ _ ] ->
      (* the monic version of f mod final_m is the lifted factor *)
      let inv = inv_mod ~p ~m:final_m (lc (norm ~m:final_m f)) in
      [ scale ~m:final_m inv f ]
    | _ ->
      let k = List.length facs / 2 in
      let left = List.filteri (fun i _ -> i < k) facs in
      let right = List.filteri (fun i _ -> i >= k) facs in
      (* g0 = prod left (monic), h0 = f/g0 mod p *)
      let g0 =
        List.fold_left
          (fun acc fac -> mul ~m:zp acc (of_fp fac))
          [| Z.one |] left
      in
      let h0 =
        let fp = norm ~m:zp f in
        fst (divmod ~p ~m:zp fp g0)
      in
      let m, g, h = lift_pair ~p ~target f g0 h0 in
      let g = norm ~m g and h = norm ~m h in
      ignore m;
      lift g left @ lift h right
  in
  (List.map (norm ~m:final_m) (lift (norm ~m:final_m f) facs), final_m)

let pair_lift_check ~p ~m f g h =
  ignore p;
  is_zero (sub ~m f (mul ~m g h))
