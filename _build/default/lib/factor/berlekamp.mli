(** Berlekamp's deterministic factorization of square-free polynomials
    over a small prime field.

    Builds the Frobenius matrix [Q] (row i = [x^(i*p) mod f]), computes
    the Berlekamp subalgebra as the nullspace of [Q^T - I], and splits
    [f] with [gcd(f, v - c)] over the basis vectors [v] and field
    constants [c].  Complexity is polynomial in [deg f] and [p], which is
    why the driver restricts itself to small primes. *)

val factor : p:int -> Fp_poly.t -> Fp_poly.t list
(** Monic irreducible factors (with repetition impossible: the input must
    be square-free and coprime to its derivative mod p) of a non-constant
    polynomial; the list is deterministically ordered.
    @raise Invalid_argument on constant input. *)

val nullspace_dimension : p:int -> Fp_poly.t -> int
(** Dimension of the Berlekamp subalgebra = the number of irreducible
    factors (exposed for tests). *)
