(** Complete factorization of univariate polynomials over the integers
    (Berlekamp + Hensel lifting + Zassenhaus recombination).

    This rounds out the computer-algebra substrate: square-free
    factorization splits multiplicities, {!Berlekamp} factors the
    square-free parts modulo a well-chosen small prime, {!Hensel} lifts
    the modular factors above the Mignotte-style coefficient bound, and a
    subset search recombines them into true integer factors. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

type factorization = {
  unit_part : Z.t;  (** integer content with the overall sign *)
  factors : (Poly.t * int) list;
      (** irreducible (over Q) primitive factors with positive leading
          coefficients and their multiplicities, deterministically
          ordered *)
}

val factor : string -> Poly.t -> factorization
(** [factor v u] factors [u], which must be univariate in [v].
    @raise Invalid_argument on zero or non-univariate input. *)

val expand : factorization -> Poly.t

val is_irreducible : string -> Poly.t -> bool
(** Irreducibility over Q of a non-constant univariate polynomial
    (multiplicities and content ignored). *)

val coefficient_bound : string -> Poly.t -> Z.t
(** The bound [2^(deg+1) * (deg+1) * max|coeff| * |lc|] used to size the
    Hensel modulus (any true factor's coefficients are below it). *)
