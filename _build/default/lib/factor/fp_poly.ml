module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

type t = int array

let trim a =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then a else Array.sub a 0 (hi + 1)

let normc ~p c =
  let r = c mod p in
  if r < 0 then r + p else r

let of_list ~p l = trim (Array.of_list (List.map (normc ~p) l))

let zero : t = [||]
let one : t = [| 1 |]

let is_zero a = Array.length a = 0

let degree a = Array.length a - 1

let lc a =
  if is_zero a then invalid_arg "Fp_poly.lc: zero polynomial";
  a.(Array.length a - 1)

let equal (a : t) b = a = b

let add ~p a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  trim
    (Array.init n (fun i ->
         normc ~p
           ((if i < Array.length a then a.(i) else 0)
           + if i < Array.length b then b.(i) else 0)))

let sub ~p a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  trim
    (Array.init n (fun i ->
         normc ~p
           ((if i < Array.length a then a.(i) else 0)
           - if i < Array.length b then b.(i) else 0)))

let scale ~p k a =
  let k = normc ~p k in
  if k = 0 then zero else trim (Array.map (fun c -> c * k mod p) a)

let mul ~p a b =
  if is_zero a || is_zero b then zero
  else begin
    let r = Array.make (Array.length a + Array.length b - 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri
            (fun j bj -> r.(i + j) <- (r.(i + j) + (ai * bj)) mod p)
            b)
      a;
    trim r
  end

let inv_mod_p ~p c =
  let c = normc ~p c in
  if c = 0 then raise Division_by_zero;
  (* extended euclid on ints *)
  let rec go r0 r1 s0 s1 =
    if r1 = 0 then s0 else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1))
  in
  normc ~p (go p c 0 1)

let divmod ~p a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let inv_lc = inv_mod_p ~p (lc b) in
  let r = Array.copy a in
  let da = degree a in
  if da < db then (zero, trim r)
  else begin
    let q = Array.make (da - db + 1) 0 in
    for k = da - db downto 0 do
      let coeff = r.(k + db) * inv_lc mod p in
      if coeff <> 0 then begin
        q.(k) <- coeff;
        for j = 0 to db do
          r.(k + j) <- normc ~p (r.(k + j) - (coeff * b.(j) mod p))
        done
      end
    done;
    (trim q, trim r)
  end

let monic ~p a = if is_zero a then a else scale ~p (inv_mod_p ~p (lc a)) a

let gcd ~p a b =
  let rec go a b = if is_zero b then a else go b (snd (divmod ~p a b)) in
  monic ~p (go a b)

let extended_gcd ~p a b =
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = divmod ~p r0 r1 in
      go r1 r2 s1 (sub ~p s0 (mul ~p q s1)) t1 (sub ~p t0 (mul ~p q t1))
    end
  in
  let g, s, t = go a b one zero zero one in
  if is_zero g then (g, s, t)
  else begin
    let inv = inv_mod_p ~p (lc g) in
    (scale ~p inv g, scale ~p inv s, scale ~p inv t)
  end

let derivative ~p a =
  if Array.length a <= 1 then zero
  else trim (Array.init (Array.length a - 1) (fun i -> (i + 1) * a.(i + 1) mod p))

let pow_mod ~p base e ~modulus =
  let reduce x = snd (divmod ~p x modulus) in
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (reduce (mul ~p acc b)) (reduce (mul ~p b b)) (e lsr 1)
    else go acc (reduce (mul ~p b b)) (e lsr 1)
  in
  go one (reduce base) e

let eval ~p a x =
  let x = normc ~p x in
  Array.fold_right (fun c acc -> ((acc * x) + c) mod p) a 0

let of_zpoly ~p v q =
  let coeffs = Poly.coeffs_in v q in
  let deg = List.fold_left (fun acc (k, _) -> Stdlib.max acc k) 0 coeffs in
  let arr = Array.make (deg + 1) 0 in
  List.iter
    (fun (k, c) ->
      match Poly.to_const_opt c with
      | Some c -> arr.(k) <- Z.to_int_exn (snd (Z.ediv_rem c (Z.of_int p)))
      | None -> invalid_arg "Fp_poly.of_zpoly: not univariate")
    coeffs;
  trim arr
