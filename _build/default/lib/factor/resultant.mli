(** Resultants and discriminants.

    [res_v(f, g)] is the determinant of the Sylvester matrix of [f] and
    [g] viewed as univariate in [v]; it vanishes exactly when they share
    a non-trivial common factor (used e.g. to detect bad primes in the
    factorization driver and repeated roots).  Entries are polynomials in
    the remaining variables, so determinants are computed with the
    fraction-free Bareiss elimination (all divisions exact over Z). *)

module Poly := Polysynth_poly.Poly

val sylvester : string -> Poly.t -> Poly.t -> Poly.t array array
(** @raise Invalid_argument when either polynomial is zero or both have
    degree 0 in [v]. *)

val determinant : Poly.t array array -> Poly.t
(** Bareiss fraction-free determinant of a square matrix of polynomials.
    @raise Invalid_argument on a non-square or empty matrix. *)

val resultant : string -> Poly.t -> Poly.t -> Poly.t

val discriminant : string -> Poly.t -> Poly.t
(** [(-1)^(n(n-1)/2) * res_v(f, df/dv) / lc_v(f)] — zero exactly when [f]
    has a repeated root in [v].
    @raise Invalid_argument when [f] has degree < 1 in [v]. *)
