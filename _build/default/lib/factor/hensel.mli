(** Hensel lifting: raise a factorization mod p to one mod p^k.

    Works with dense integer-coefficient polynomials reduced into
    [[0, m)] for the current modulus [m]; the driver gives it the monic
    modular factors from {!Berlekamp} and a target exponent derived from
    the coefficient bound. *)

module Z := Polysynth_zint.Zint

type zpoly = Z.t array
(** Dense, least-significant first; no trailing-zero invariant is
    required at the interface. *)

val lift_factors :
  p:int -> target:Z.t -> zpoly -> Fp_poly.t list -> zpoly list * Z.t
(** [lift_factors ~p ~target f facs]: given primitive [f] with
    [f = lc(f) * prod facs (mod p)], the [facs] monic and pairwise coprime
    mod p, returns monic factors mod [m] (and [m] itself) where [m = p^k]
    is the smallest power of [p] that is [>= target], such that
    [f = lc(f) * prod factors (mod m)] and each returned factor reduces to
    its input mod p. *)

val mul : m:Z.t -> zpoly -> zpoly -> zpoly
(** Product reduced into [[0, m)] (used by the recombination step and the
    tests). *)

val pair_lift_check : p:int -> m:Z.t -> zpoly -> zpoly -> zpoly -> bool
(** Test helper: does [f = g * h (mod m)]? *)
