(** Square-free factorization (Section 14.3.2).

    Every [u] in [Z\[x_1..x_n\]] factors uniquely as
    [u = c * s_1 * s_2^2 * ... * s_m^m] with the [s_i] square-free, pairwise
    coprime and primitive with positive leading coefficients.  The synthesis
    flow uses the factored form both as a candidate representation (fewer
    operations when non-trivial powers exist) and as a source of building
    blocks such as [(x + y)] from [x^2 + 2xy + y^2]. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

type factorization = {
  unit_part : Z.t;  (** the integer content, with the overall sign *)
  factors : (Poly.t * int) list;
      (** [(s, k)] pairs with [k >= 1], increasing [k], each [s]
          non-constant *)
}

val squarefree : Poly.t -> factorization
(** @raise Invalid_argument on the zero polynomial. *)

val expand : factorization -> Poly.t
(** Multiply the factorization back out (inverse of {!squarefree}). *)

val is_squarefree : Poly.t -> bool
(** True when no non-constant square divides the polynomial.  Constants are
    square-free. *)

val is_trivial : factorization -> bool
(** True when the factorization is just [1 * u^1] (no structure found). *)

val perfect_power_root : Poly.t -> (Poly.t * int) option
(** [perfect_power_root u = Some (v, k)] with the largest [k >= 2] such that
    [u = v^k] (e.g. [x^2 + 2xy + y^2] gives [(x + y, 2)]); [None] when [u]
    is not a perfect power. *)

val integer_root : Z.t -> int -> Z.t option
(** [integer_root n k] is the exact [k]-th root of [n] when it exists
    ([k >= 1]; negative [n] allowed for odd [k]). *)
