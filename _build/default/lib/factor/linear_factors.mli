(** Rational-root extraction: the linear factors of a univariate view.

    For a polynomial seen as univariate in one variable (with integer
    coefficients), every linear factor [a*v - b] has [b/a] among the
    rational candidates [divisors of trailing coefficient / divisors of
    leading coefficient].  Datapath polynomials are tiny, so trial
    division over the candidate set is exact and fast.  Richer linear
    building blocks found this way (e.g. [2x - 3]) feed algebraic
    division. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly

val roots : string -> Poly.t -> (Z.t * Z.t) list
(** [roots v u] lists the rational roots [b/a] of [u] as univariate in [v]
    (requires the coefficients in [v] to be constants, i.e. [u] univariate;
    pairs are coprime with [a > 0], each listed once regardless of
    multiplicity).
    @raise Invalid_argument if [u] is zero or mentions other variables. *)

val linear_factors : string -> Poly.t -> (Poly.t * int) list * Poly.t
(** [linear_factors v u = (factors, rest)] with
    [u = rest * prod (a_i*v - b_i)^k_i], the factors primitive with positive
    leading coefficient, and [rest] free of rational roots in [v]. *)
