module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

let coeff_in v p k =
  match List.assoc_opt k (Poly.coeffs_in v p) with
  | Some c -> c
  | None -> Poly.zero

let sylvester v f g =
  if Poly.is_zero f || Poly.is_zero g then
    invalid_arg "Resultant.sylvester: zero polynomial";
  let df = Poly.degree_in v f and dg = Poly.degree_in v g in
  if df = 0 && dg = 0 then
    invalid_arg "Resultant.sylvester: both degree zero";
  let n = df + dg in
  Array.init n (fun row ->
      Array.init n (fun col ->
          if row < dg then begin
            (* row of f coefficients, shifted right by [row] *)
            let k = df - (col - row) in
            if col >= row && k >= 0 && k <= df then coeff_in v f k
            else Poly.zero
          end
          else begin
            let row' = row - dg in
            let k = dg - (col - row') in
            if col >= row' && k >= 0 && k <= dg then coeff_in v g k
            else Poly.zero
          end))

let determinant matrix =
  let n = Array.length matrix in
  if n = 0 then invalid_arg "Resultant.determinant: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Resultant.determinant: not square")
    matrix;
  let m = Array.map Array.copy matrix in
  let sign = ref 1 in
  let prev_pivot = ref Poly.one in
  let exception Singular in
  try
    for k = 0 to n - 2 do
      (* find a non-zero pivot in column k *)
      if Poly.is_zero m.(k).(k) then begin
        let rec find i =
          if i >= n then raise Singular
          else if not (Poly.is_zero m.(i).(k)) then i
          else find (i + 1)
        in
        let i = find (k + 1) in
        let tmp = m.(i) in
        m.(i) <- m.(k);
        m.(k) <- tmp;
        sign := - !sign
      end;
      for i = k + 1 to n - 1 do
        for j = k + 1 to n - 1 do
          let num =
            Poly.sub
              (Poly.mul m.(i).(j) m.(k).(k))
              (Poly.mul m.(i).(k) m.(k).(j))
          in
          match Poly.div_exact num !prev_pivot with
          | Some q -> m.(i).(j) <- q
          | None -> assert false (* Bareiss division is always exact *)
        done;
        m.(i).(k) <- Poly.zero
      done;
      prev_pivot := m.(k).(k)
    done;
    let det = m.(n - 1).(n - 1) in
    if !sign < 0 then Poly.neg det else det
  with Singular -> Poly.zero

let resultant v f g = determinant (sylvester v f g)

let discriminant v f =
  let n = Poly.degree_in v f in
  if n < 1 then invalid_arg "Resultant.discriminant: degree < 1";
  let f' = Poly.derivative v f in
  if Poly.is_zero f' then Poly.zero
  else begin
    let r = resultant v f f' in
    let lc = coeff_in v f n in
    let q =
      match Poly.div_exact r lc with
      | Some q -> q
      | None -> assert false (* lc divides res(f, f') *)
    in
    if n * (n - 1) / 2 mod 2 = 1 then Poly.neg q else q
  end
