(** Dense univariate polynomial arithmetic over a small prime field F_p.

    Polynomials are coefficient arrays (least significant first, no
    trailing zeros), with coefficients in [[0, p)].  The prime must stay
    below [2^30] so products fit in a native [int]; the factorization
    driver only ever picks small primes. *)

type t = int array

val of_list : p:int -> int list -> t
val zero : t
val one : t
val is_zero : t -> bool
val degree : t -> int
(** [-1] for zero. *)

val lc : t -> int
(** Leading coefficient.  @raise Invalid_argument on zero. *)

val equal : t -> t -> bool

val add : p:int -> t -> t -> t
val sub : p:int -> t -> t -> t
val mul : p:int -> t -> t -> t
val scale : p:int -> int -> t -> t

val divmod : p:int -> t -> t -> t * t
(** Euclidean division (the divisor's leading coefficient is inverted
    mod p).  @raise Division_by_zero on a zero divisor. *)

val gcd : p:int -> t -> t -> t
(** Monic gcd; [gcd 0 0 = 0]. *)

val extended_gcd : p:int -> t -> t -> t * t * t
(** [(g, s, t)] with [s*a + t*b = g], [g] the monic gcd. *)

val monic : p:int -> t -> t
val derivative : p:int -> t -> t
val pow_mod : p:int -> t -> int -> modulus:t -> t
(** [base^e mod modulus]. *)

val eval : p:int -> t -> int -> int

val inv_mod_p : p:int -> int -> int
(** Inverse in F_p.  @raise Division_by_zero on zero. *)

val of_zpoly : p:int -> string -> Polysynth_poly.Poly.t -> t
(** Reduce an (integer, univariate in the given variable) polynomial
    mod p. *)
