(** Multivariate polynomial GCD over [Z\[x_1, ..., x_n\]].

    Implemented with the classic primitive polynomial-remainder-sequence
    recursion (Cohen 2003): pick a main variable, split content and primitive
    part (whose content computation recurses over the remaining variables),
    run a primitive PRS on the primitive parts.  Adequate for the small,
    low-degree polynomials of datapath synthesis. *)

module Poly := Polysynth_poly.Poly

val gcd : Poly.t -> Poly.t -> Poly.t
(** Greatest common divisor, normalized to a positive leading coefficient
    (graded-lex leading term).  [gcd p 0 = |p|]; [gcd 0 0 = 0]. *)

val gcd_list : Poly.t list -> Poly.t

val pseudo_rem : string -> Poly.t -> Poly.t -> Poly.t
(** [pseudo_rem v a b] is the pseudo-remainder of [a] by [b] viewed as
    univariate polynomials in [v]: the remainder of [lc_v(b)^k * a] divided
    by [b], which requires no coefficient divisions.
    @raise Division_by_zero when [b] has degree 0 in [v] or is zero. *)

val content_in : string -> Poly.t -> Poly.t
(** Content w.r.t. one variable: the GCD of the coefficients of the powers
    of [v] (a polynomial in the remaining variables). *)

val primitive_part_in : string -> Poly.t -> Poly.t
(** [p = content_in v p * primitive_part_in v p]. *)
