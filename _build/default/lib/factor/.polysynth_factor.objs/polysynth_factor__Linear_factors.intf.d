lib/factor/linear_factors.mli: Polysynth_poly Polysynth_zint
