lib/factor/hensel.ml: Array Fp_poly List Polysynth_zint Stdlib
