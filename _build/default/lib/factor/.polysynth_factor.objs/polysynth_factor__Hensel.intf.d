lib/factor/hensel.mli: Fp_poly Polysynth_zint
