lib/factor/berlekamp.mli: Fp_poly
