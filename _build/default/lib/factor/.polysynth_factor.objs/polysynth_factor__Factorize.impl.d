lib/factor/factorize.ml: Array Berlekamp Fp_poly Fun Hensel List Polysynth_poly Polysynth_zint Squarefree Stdlib
