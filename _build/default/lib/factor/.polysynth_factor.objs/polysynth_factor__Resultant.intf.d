lib/factor/resultant.mli: Polysynth_poly
