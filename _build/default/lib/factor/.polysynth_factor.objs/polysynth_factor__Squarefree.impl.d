lib/factor/squarefree.ml: Hashtbl List Mgcd Option Polysynth_poly Polysynth_zint Stdlib
