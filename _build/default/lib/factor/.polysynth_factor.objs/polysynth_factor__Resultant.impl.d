lib/factor/resultant.ml: Array List Polysynth_poly Polysynth_zint
