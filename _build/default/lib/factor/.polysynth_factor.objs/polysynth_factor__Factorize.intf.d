lib/factor/factorize.mli: Polysynth_poly Polysynth_zint
