lib/factor/mgcd.ml: List Polysynth_poly Polysynth_zint
