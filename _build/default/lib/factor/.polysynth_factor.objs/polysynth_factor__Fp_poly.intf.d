lib/factor/fp_poly.mli: Polysynth_poly
