lib/factor/linear_factors.ml: List Polysynth_poly Polysynth_zint Stdlib
