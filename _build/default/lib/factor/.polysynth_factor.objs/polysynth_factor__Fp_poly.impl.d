lib/factor/fp_poly.ml: Array List Polysynth_poly Polysynth_zint Stdlib
