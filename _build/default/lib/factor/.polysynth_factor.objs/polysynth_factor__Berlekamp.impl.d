lib/factor/berlekamp.ml: Array Fp_poly Fun List Stdlib
