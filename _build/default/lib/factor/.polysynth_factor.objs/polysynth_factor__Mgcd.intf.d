lib/factor/mgcd.mli: Polysynth_poly
