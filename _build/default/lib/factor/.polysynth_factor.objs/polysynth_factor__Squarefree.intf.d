lib/factor/squarefree.mli: Polysynth_poly Polysynth_zint
