module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

type factorization = {
  unit_part : Z.t;
  factors : (Poly.t * int) list;
}

let check_univariate v u =
  if Poly.is_zero u then invalid_arg "Factorize: zero polynomial";
  match List.filter (fun v' -> v' <> v) (Poly.vars u) with
  | [] -> ()
  | _ :: _ -> invalid_arg "Factorize: polynomial is not univariate"

let height u =
  List.fold_left (fun acc (c, _) -> Z.max acc (Z.abs c)) Z.zero (Poly.terms u)

let coefficient_bound v u =
  check_univariate v u;
  let n = Poly.degree_in v u in
  let lc_abs = Z.abs (fst (Poly.leading u)) in
  Z.mul
    (Z.mul (Z.pow2 (n + 1)) (Z.of_int (n + 1)))
    (Z.mul (height u) lc_abs)

let small_primes =
  [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71;
    73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227;
    229; 233; 239; 241; 251; 257; 263; 269; 271; 277; 281; 283; 293 ]

let choose_prime v f =
  let lc = fst (Poly.leading f) in
  let good p =
    let zp = Z.of_int p in
    (not (Z.divides zp lc))
    &&
    let fp = Fp_poly.of_zpoly ~p v f in
    let fp' = Fp_poly.derivative ~p fp in
    (not (Fp_poly.is_zero fp'))
    && Fp_poly.degree (Fp_poly.gcd ~p fp fp') = 0
  in
  match List.find_opt good small_primes with
  | Some p -> p
  | None -> failwith "Factorize: no suitable small prime (pathological input)"

let symmetric_residue ~m c =
  let c = snd (Z.ediv_rem c m) in
  if Z.compare (Z.mul Z.two c) m > 0 then Z.sub c m else c

let poly_of_zpoly v (a : Hensel.zpoly) ~m =
  Poly.of_coeffs_in v
    (List.filteri (fun _ _ -> true)
       (List.mapi
          (fun k c -> (k, Poly.const (symmetric_residue ~m c)))
          (Array.to_list a)))

(* all index subsets of size d from 0..n-1, lexicographic *)
let subsets n d =
  let rec go start d =
    if d = 0 then [ [] ]
    else
      List.concat_map
        (fun i -> List.map (fun rest -> i :: rest) (go (i + 1) (d - 1)))
        (List.init (Stdlib.max 0 (n - start)) (fun k -> start + k))
  in
  go 0 d

let factor_squarefree v f =
  (* f primitive, square-free, positive leading coefficient, degree >= 1 *)
  let n = Poly.degree_in v f in
  if n = 1 then [ f ]
  else begin
    let p = choose_prime v f in
    let fp = Fp_poly.of_zpoly ~p v f in
    let modular = Berlekamp.factor ~p fp in
    if List.length modular <= 1 then [ f ]
    else begin
      let target =
        Z.add (Z.mul Z.two (coefficient_bound v f)) Z.one
      in
      let f_dense =
        Array.init (n + 1) (fun k ->
            let coeffs = Poly.coeffs_in v f in
            match List.assoc_opt k coeffs with
            | Some c ->
              (match Poly.to_const_opt c with Some c -> c | None -> Z.zero)
            | None -> Z.zero)
      in
      let lifted, m = Hensel.lift_factors ~p ~target f_dense modular in
      let lifted = Array.of_list lifted in
      let used = Array.make (Array.length lifted) false in
      let found = ref [] in
      let remaining = ref f in
      let alive () =
        List.filter (fun i -> not used.(i))
          (List.init (Array.length lifted) Fun.id)
      in
      let try_subset idxs =
        let lc = fst (Poly.leading !remaining) in
        let product =
          List.fold_left
            (fun acc i -> Hensel.mul ~m acc lifted.(i))
            [| lc |] idxs
        in
        let candidate = Poly.primitive_part (poly_of_zpoly v product ~m) in
        if Poly.degree_in v candidate >= 1 then
          match Poly.div_exact !remaining candidate with
          | Some q ->
            found := candidate :: !found;
            remaining := q;
            List.iter (fun i -> used.(i) <- true) idxs;
            true
          | None -> false
        else false
      in
      let d = ref 1 in
      let continue = ref true in
      while !continue do
        let live = alive () in
        if !d > List.length live / 2 then continue := false
        else begin
          let indices = List.map (fun i -> List.nth live i) in
          let subs = List.map indices (subsets (List.length live) !d) in
          let hit = List.exists try_subset subs in
          if not hit then incr d
        end
      done;
      let leftovers =
        let r = Poly.primitive_part !remaining in
        if Poly.degree_in v r >= 1 then [ r ] else []
      in
      List.sort Poly.compare (leftovers @ !found)
    end
  end


let factor v u =
  check_univariate v u;
  match Poly.to_const_opt u with
  | Some c -> { unit_part = c; factors = [] }
  | None ->
    let sqf = Squarefree.squarefree u in
    let factors =
      List.concat_map
        (fun (s, k) ->
          List.map (fun irr -> (irr, k)) (factor_squarefree v s))
        sqf.Squarefree.factors
    in
    {
      unit_part = sqf.Squarefree.unit_part;
      factors =
        List.sort
          (fun (a, ka) (b, kb) ->
            let c = Poly.compare a b in
            if c <> 0 then c else Stdlib.compare ka kb)
          factors;
    }

let expand { unit_part; factors } =
  List.fold_left
    (fun acc (f, k) -> Poly.mul acc (Poly.pow f k))
    (Poly.const unit_part) factors

let is_irreducible v u =
  check_univariate v u;
  if Poly.is_const u then invalid_arg "Factorize.is_irreducible: constant";
  let f = factor v u in
  match f.factors with [ (_, 1) ] -> true | _ -> false
