(** Exact rational numbers over {!Polysynth_zint.Zint}.

    Values are kept normalized: the denominator is positive and coprime with
    the numerator; zero is [0/1].  Used by the least-squares workload
    generators and the exact linear-algebra substrate. *)

type t

val num : t -> Polysynth_zint.Zint.t
val den : t -> Polysynth_zint.Zint.t
(** [den q] is always positive. *)

val zero : t
val one : t
val minus_one : t

val make : Polysynth_zint.Zint.t -> Polysynth_zint.Zint.t -> t
(** [make num den] normalizes the fraction.
    @raise Division_by_zero when [den] is zero. *)

val of_zint : Polysynth_zint.Zint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero when [den] is zero. *)

val is_zero : t -> bool
val is_integer : t -> bool
val sign : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val to_zint_exn : t -> Polysynth_zint.Zint.t
(** @raise Failure when the value is not an integer. *)

val round_nearest : t -> Polysynth_zint.Zint.t
(** Nearest integer, ties away from zero. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
end
