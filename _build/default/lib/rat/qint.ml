module Z = Polysynth_zint.Zint

type t = { num : Z.t; den : Z.t }

let num q = q.num
let den q = q.den

let make num den =
  if Z.is_zero den then raise Division_by_zero;
  if Z.is_zero num then { num = Z.zero; den = Z.one }
  else begin
    let g = Z.gcd num den in
    let num = Z.divexact num g and den = Z.divexact den g in
    if Z.is_negative den then { num = Z.neg num; den = Z.neg den }
    else { num; den }
  end

let of_zint n = { num = n; den = Z.one }
let of_int n = of_zint (Z.of_int n)
let of_ints a b = make (Z.of_int a) (Z.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let is_zero q = Z.is_zero q.num
let is_integer q = Z.is_one q.den
let sign q = Z.sign q.num

let equal a b = Z.equal a.num b.num && Z.equal a.den b.den

let compare a b = Z.compare (Z.mul a.num b.den) (Z.mul b.num a.den)

let neg q = { q with num = Z.neg q.num }
let abs q = { q with num = Z.abs q.num }

let inv q =
  if is_zero q then raise Division_by_zero;
  if Z.is_negative q.num then { num = Z.neg q.den; den = Z.neg q.num }
  else { num = q.den; den = q.num }

let add a b =
  make (Z.add (Z.mul a.num b.den) (Z.mul b.num a.den)) (Z.mul a.den b.den)

let sub a b =
  make (Z.sub (Z.mul a.num b.den) (Z.mul b.num a.den)) (Z.mul a.den b.den)

let mul a b = make (Z.mul a.num b.num) (Z.mul a.den b.den)

let div a b =
  if is_zero b then raise Division_by_zero;
  make (Z.mul a.num b.den) (Z.mul a.den b.num)

let to_zint_exn q =
  if is_integer q then q.num
  else failwith "Qint.to_zint_exn: not an integer"

let round_nearest q =
  (* |num|/den rounded half away from zero, sign restored afterwards *)
  let two_num = Z.mul Z.two (Z.abs q.num) in
  let quot = Z.div (Z.add two_num q.den) (Z.mul Z.two q.den) in
  if sign q < 0 then Z.neg quot else quot

let to_string q =
  if is_integer q then Z.to_string q.num
  else Z.to_string q.num ^ "/" ^ Z.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
end
