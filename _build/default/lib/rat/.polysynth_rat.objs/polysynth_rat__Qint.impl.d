lib/rat/qint.ml: Format Polysynth_zint
