lib/rat/qint.mli: Format Polysynth_zint
