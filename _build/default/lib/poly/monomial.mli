(** Power products of variables ("cubes" without sign/coefficient in the
    paper's terminology, e.g. [x^2*y]).

    A monomial maps variable names to strictly positive exponents.  The
    ordering is graded lexicographic: higher total degree first, then
    lexicographic on variable names. *)

type t

val one : t
(** The empty power product. *)

val var : ?exp:int -> string -> t
(** [var x] is the monomial [x]; [var ~exp:k x] is [x^k].
    @raise Invalid_argument when [exp <= 0] or the name is empty. *)

val of_list : (string * int) list -> t
(** Duplicates are combined; zero exponents dropped.
    @raise Invalid_argument on a negative exponent. *)

val to_list : t -> (string * int) list
(** Sorted by variable name. *)

val is_one : t -> bool
val degree : t -> int
(** Total degree. *)

val degree_of : string -> t -> int
(** Exponent of the given variable (0 when absent). *)

val vars : t -> string list
(** Sorted variable names. *)

val mentions : string -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** Graded lexicographic order. *)

val hash : t -> int

val mul : t -> t -> t

val divides : t -> t -> bool
(** [divides d m]: every exponent of [d] is at most that of [m]. *)

val div : t -> t -> t option
(** [div m d] is [Some (m/d)] when [d] divides [m]. *)

val gcd : t -> t -> t
val lcm : t -> t -> t

val remove_var : string -> t -> t
(** Drop one variable entirely. *)

val eval : (string -> Polysynth_zint.Zint.t) -> t -> Polysynth_zint.Zint.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
