lib/poly/poly.ml: Buffer Format Hashtbl List Map Monomial Polysynth_zint Stdlib String
