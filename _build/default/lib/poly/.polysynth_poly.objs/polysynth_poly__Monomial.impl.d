lib/poly/monomial.ml: Format Hashtbl List Polysynth_zint Printf Stdlib String
