lib/poly/monomial.mli: Format Polysynth_zint
