lib/poly/parse.mli: Poly
