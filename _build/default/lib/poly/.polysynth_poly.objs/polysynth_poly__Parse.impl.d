lib/poly/parse.ml: List Poly Polysynth_zint Printf String
