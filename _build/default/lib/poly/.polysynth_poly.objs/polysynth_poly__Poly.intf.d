lib/poly/poly.mli: Format Monomial Polysynth_zint
