module Z = Polysynth_zint.Zint

(* Sorted association list variable -> exponent, exponents strictly
   positive.  The invariant is maintained by every smart constructor. *)
type t = (string * int) list

let one = []

let of_list bindings =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) bindings in
  let rec combine = function
    | [] -> []
    | (v, e) :: rest ->
      if e < 0 then invalid_arg "Monomial.of_list: negative exponent";
      (match combine rest with
       | (v', e') :: tail when String.equal v v' -> (v, e + e') :: tail
       | tail -> if e = 0 then tail else (v, e) :: tail)
  in
  combine sorted

let var ?(exp = 1) name =
  if exp <= 0 then invalid_arg "Monomial.var: non-positive exponent";
  if String.length name = 0 then invalid_arg "Monomial.var: empty name";
  [ (name, exp) ]

let to_list m = m

let is_one m = m = []

let degree m = List.fold_left (fun acc (_, e) -> acc + e) 0 m

let degree_of v m =
  match List.assoc_opt v m with Some e -> e | None -> 0

let vars m = List.map fst m

let mentions v m = List.mem_assoc v m

let equal (a : t) (b : t) = a = b

(* Graded lexicographic order: total degree first, ties broken
   lexicographically with alphabetically-earlier variables more significant.
   This is a genuine monomial order (compatible with multiplication, with 1
   minimal), which the polynomial division algorithms rely on. *)
let compare a b =
  let c = Stdlib.compare (degree a) (degree b) in
  if c <> 0 then c
  else
    let rec lex a b =
      match a, b with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | (va, ea) :: ra, (vb, eb) :: rb ->
        let c = String.compare va vb in
        if c < 0 then 1
        else if c > 0 then -1
        else if ea <> eb then Stdlib.compare ea eb
        else lex ra rb
    in
    lex a b

let hash m =
  List.fold_left
    (fun acc (v, e) -> (acc * 131 + Hashtbl.hash v + e) land max_int)
    17 m

let rec mul a b =
  match a, b with
  | [], m | m, [] -> m
  | (va, ea) :: ra, (vb, eb) :: rb ->
    let c = String.compare va vb in
    if c = 0 then (va, ea + eb) :: mul ra rb
    else if c < 0 then (va, ea) :: mul ra b
    else (vb, eb) :: mul a rb

let rec divides d m =
  match d, m with
  | [], _ -> true
  | _ :: _, [] -> false
  | (vd, ed) :: rd, (vm, em) :: rm ->
    let c = String.compare vd vm in
    if c < 0 then false
    else if c > 0 then divides d rm
    else ed <= em && divides rd rm

let div m d =
  if not (divides d m) then None
  else begin
    let rec go m d =
      match m, d with
      | m, [] -> m
      | [], _ :: _ -> assert false
      | (vm, em) :: rm, (vd, ed) :: rd ->
        let c = String.compare vm vd in
        if c < 0 then (vm, em) :: go rm d
        else begin
          assert (c = 0);
          if em = ed then go rm rd else (vm, em - ed) :: go rm rd
        end
    in
    Some (go m d)
  end

let rec gcd a b =
  match a, b with
  | [], _ | _, [] -> []
  | (va, ea) :: ra, (vb, eb) :: rb ->
    let c = String.compare va vb in
    if c = 0 then (va, Stdlib.min ea eb) :: gcd ra rb
    else if c < 0 then gcd ra b
    else gcd a rb

let rec lcm a b =
  match a, b with
  | [], m | m, [] -> m
  | (va, ea) :: ra, (vb, eb) :: rb ->
    let c = String.compare va vb in
    if c = 0 then (va, Stdlib.max ea eb) :: lcm ra rb
    else if c < 0 then (va, ea) :: lcm ra b
    else (vb, eb) :: lcm a rb

let remove_var v m = List.filter (fun (v', _) -> not (String.equal v v')) m

let eval env m =
  List.fold_left (fun acc (v, e) -> Z.mul acc (Z.pow (env v) e)) Z.one m

let to_string m =
  if is_one m then "1"
  else
    String.concat "*"
      (List.map
         (fun (v, e) -> if e = 1 then v else Printf.sprintf "%s^%d" v e)
         m)

let pp fmt m = Format.pp_print_string fmt (to_string m)
