(** Text syntax for polynomials.

    Grammar (whitespace-insensitive):
    {v
      expr   ::= ['-'] term (('+' | '-') term)*
      term   ::= factor ('*' factor)*
      factor ::= atom ['^' nat]
      atom   ::= nat | ident | '(' expr ')'
    v}
    Identifiers match [[A-Za-z_][A-Za-z0-9_]*]; numbers are unsigned decimal
    naturals (sign comes from the grammar).  Example:
    ["4*x^2*y^2 - 4*x*y + 5*(x + 3*y)^2"]. *)

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val poly : string -> Poly.t
(** @raise Parse_error on malformed input. *)

val system : string -> Poly.t list
(** Parses a list of polynomials separated by [';'] or newlines; blank
    entries and [#]-to-end-of-line comments are ignored.
    @raise Parse_error on malformed input. *)
