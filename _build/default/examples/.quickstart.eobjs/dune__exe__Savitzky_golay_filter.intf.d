examples/savitzky_golay_filter.mli:
