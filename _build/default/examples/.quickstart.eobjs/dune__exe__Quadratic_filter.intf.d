examples/quadratic_filter.mli:
