examples/hls_backend.ml: Format List Polysynth_core Polysynth_expr Polysynth_hw Polysynth_poly String
