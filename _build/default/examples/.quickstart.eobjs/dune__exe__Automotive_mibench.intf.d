examples/automotive_mibench.mli:
