examples/hls_backend.mli:
