examples/quickstart.mli:
