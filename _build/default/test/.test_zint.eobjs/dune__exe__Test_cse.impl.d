test/test_cse.ml: Alcotest List Polysynth_cse Polysynth_expr Polysynth_poly Polysynth_zint Printf QCheck QCheck_alcotest Stdlib String
