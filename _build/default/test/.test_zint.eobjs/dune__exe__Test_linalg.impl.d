test/test_linalg.ml: Alcotest Array Format List Polysynth_linalg Polysynth_rat QCheck QCheck_alcotest
