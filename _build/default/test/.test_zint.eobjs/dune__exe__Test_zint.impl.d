test/test_zint.ml: Alcotest List Polysynth_zint Printf QCheck QCheck_alcotest
