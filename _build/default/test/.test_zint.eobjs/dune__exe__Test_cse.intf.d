test/test_cse.mli:
