test/test_rat.ml: Alcotest Polysynth_rat Polysynth_zint QCheck QCheck_alcotest
