test/test_factor.mli:
