test/test_zint.mli:
