test/test_workloads.ml: Alcotest Array Filename In_channel List Polysynth_core Polysynth_poly Polysynth_rat Polysynth_workloads Polysynth_zint Printf QCheck QCheck_alcotest String Sys
