test/test_finite_ring.mli:
