test/test_poly.ml: Alcotest List Polysynth_poly Polysynth_zint QCheck QCheck_alcotest String
