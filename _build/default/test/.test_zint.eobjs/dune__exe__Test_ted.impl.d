test/test_ted.ml: Alcotest List Polysynth_expr Polysynth_poly Polysynth_ted Polysynth_zint Printf QCheck QCheck_alcotest
