test/test_factor.ml: Alcotest List Polysynth_factor Polysynth_poly Polysynth_zint QCheck QCheck_alcotest String
