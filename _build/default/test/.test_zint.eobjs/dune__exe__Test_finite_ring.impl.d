test/test_finite_ring.ml: Alcotest Fun List Polysynth_finite_ring Polysynth_poly Polysynth_zint Printf QCheck QCheck_alcotest String
