test/test_hw.ml: Alcotest Array Filename List Out_channel Polysynth_expr Polysynth_hw Polysynth_poly Polysynth_zint Printf QCheck QCheck_alcotest String Sys Unix
