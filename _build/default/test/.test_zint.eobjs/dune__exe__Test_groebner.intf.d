test/test_groebner.mli:
