test/test_expr.ml: Alcotest List Polysynth_expr Polysynth_poly Polysynth_zint QCheck QCheck_alcotest String
