test/test_ted.mli:
