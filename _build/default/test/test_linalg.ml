module Q = Polysynth_rat.Qint
module M = Polysynth_linalg.Qmatrix

let qi = Q.of_int

let m33 rows = M.of_lists (List.map (List.map qi) rows)

let matrix = Alcotest.testable M.pp M.equal

let test_of_lists () =
  let m = m33 [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "rows" 2 (M.rows m);
  Alcotest.(check int) "cols" 2 (M.cols m);
  Alcotest.(check bool) "entry" true (Q.equal (qi 3) (M.get m 1 0));
  Alcotest.check_raises "ragged" (Invalid_argument "Qmatrix.of_lists: ragged rows")
    (fun () -> ignore (M.of_lists [ [ qi 1 ]; [ qi 1; qi 2 ] ]));
  Alcotest.check_raises "empty" (Invalid_argument "Qmatrix.of_lists: empty")
    (fun () -> ignore (M.of_lists []))

let test_identity_mul () =
  let a = m33 [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check matrix "a * I = a" a (M.mul a (M.identity 2));
  Alcotest.check matrix "I * a = a" a (M.mul (M.identity 2) a);
  let b = m33 [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check matrix "a*b" (m33 [ [ 19; 22 ]; [ 43; 50 ] ]) (M.mul a b);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Qmatrix.mul: dimension mismatch") (fun () ->
      ignore (M.mul a (M.identity 3)))

let test_transpose () =
  let a = m33 [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.check matrix "transpose" (m33 [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ])
    (M.transpose a);
  Alcotest.check matrix "involutive" a (M.transpose (M.transpose a))

let test_solve () =
  (* x + 2y = 5; 3x + 4y = 11  =>  x = 1, y = 2 *)
  let a = m33 [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = m33 [ [ 5 ]; [ 11 ] ] in
  (match M.solve a b with
   | None -> Alcotest.fail "expected a solution"
   | Some x -> Alcotest.check matrix "solution" (m33 [ [ 1 ]; [ 2 ] ]) x);
  let singular = m33 [ [ 1; 2 ]; [ 2; 4 ] ] in
  Alcotest.(check bool) "singular" true (M.solve singular b = None)

let test_solve_needs_pivot () =
  (* leading zero forces a row swap *)
  let a = m33 [ [ 0; 1 ]; [ 1; 0 ] ] in
  let b = m33 [ [ 3 ]; [ 7 ] ] in
  match M.solve a b with
  | None -> Alcotest.fail "expected a solution"
  | Some x -> Alcotest.check matrix "swap solution" (m33 [ [ 7 ]; [ 3 ] ]) x

let test_inverse () =
  let a = m33 [ [ 2; 0 ]; [ 0; 4 ] ] in
  (match M.inverse a with
   | None -> Alcotest.fail "expected invertible"
   | Some inv ->
     Alcotest.check matrix "a * a^-1 = I" (M.identity 2) (M.mul a inv));
  let rational = M.of_lists [ [ Q.of_ints 1 2; Q.of_ints 1 3 ];
                              [ Q.of_ints 1 4; Q.of_ints 1 5 ] ] in
  match M.inverse rational with
  | None -> Alcotest.fail "expected invertible rational"
  | Some inv ->
    Alcotest.check matrix "rational inverse" (M.identity 2) (M.mul rational inv)

let arb_matrix3 =
  let gen =
    QCheck.Gen.array_size (QCheck.Gen.return 9) (QCheck.Gen.int_range (-20) 20)
  in
  QCheck.make
    (QCheck.Gen.map
       (fun a -> M.make 3 3 (fun i j -> qi a.((3 * i) + j)))
       gen)
    ~print:(Format.asprintf "%a" M.pp)

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let prop_inverse_roundtrip =
  prop "inverse is two-sided" arb_matrix3 (fun a ->
      match M.inverse a with
      | None -> true (* singular matrices are allowed *)
      | Some inv ->
        M.equal (M.identity 3) (M.mul a inv)
        && M.equal (M.identity 3) (M.mul inv a))

let prop_solve_satisfies =
  prop "solve satisfies a*x = b" QCheck.(pair arb_matrix3 arb_matrix3)
    (fun (a, b) ->
      match M.solve a b with
      | None -> true
      | Some x -> M.equal b (M.mul a x))

let prop_transpose_mul =
  prop "(ab)^T = b^T a^T" QCheck.(pair arb_matrix3 arb_matrix3) (fun (a, b) ->
      M.equal (M.transpose (M.mul a b)) (M.mul (M.transpose b) (M.transpose a)))

let () =
  Alcotest.run "linalg"
    [
      ( "unit",
        [
          Alcotest.test_case "of_lists" `Quick test_of_lists;
          Alcotest.test_case "identity/mul" `Quick test_identity_mul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "solve with pivoting" `Quick test_solve_needs_pivot;
          Alcotest.test_case "inverse" `Quick test_inverse;
        ] );
      ( "properties",
        [ prop_inverse_roundtrip; prop_solve_satisfies; prop_transpose_mul ] );
    ]
