module Z = Polysynth_zint.Zint

let z = Alcotest.testable Z.pp Z.equal

let check_z = Alcotest.check z

(* qcheck generators ------------------------------------------------------- *)

let small_int_gen = QCheck.Gen.int_range (-1_000_000) 1_000_000

let zint_of_parts =
  (* build a bignum from several native ints so values routinely exceed a
     single limb and the native range *)
  QCheck.Gen.map
    (fun (a, b, c) ->
      Z.add (Z.mul (Z.of_int a) (Z.mul (Z.of_int b) (Z.of_int b))) (Z.of_int c))
    QCheck.Gen.(triple small_int_gen small_int_gen small_int_gen)

let arb_zint =
  QCheck.make zint_of_parts ~print:Z.to_string

let arb_small = QCheck.make small_int_gen ~print:string_of_int

let prop name ?(count = 500) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* unit tests --------------------------------------------------------------- *)

let test_constants () =
  check_z "zero" Z.zero (Z.of_int 0);
  check_z "one" Z.one (Z.of_int 1);
  check_z "two" Z.two (Z.of_int 2);
  check_z "minus_one" Z.minus_one (Z.of_int (-1));
  Alcotest.(check bool) "is_zero" true (Z.is_zero Z.zero);
  Alcotest.(check bool) "is_one" true (Z.is_one Z.one);
  Alcotest.(check bool) "one not zero" false (Z.is_zero Z.one)

let test_of_int_extremes () =
  Alcotest.(check int) "max_int" max_int (Z.to_int_exn (Z.of_int max_int));
  Alcotest.(check int) "min_int" min_int (Z.to_int_exn (Z.of_int min_int));
  Alcotest.(check int) "-1" (-1) (Z.to_int_exn (Z.of_int (-1)))

let test_string_roundtrip () =
  let cases =
    [ "0"; "1"; "-1"; "123456789"; "-987654321";
      "123456789012345678901234567890";
      "-340282366920938463463374607431768211456" ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Z.to_string (Z.of_string s)))
    cases

let test_of_string_invalid () =
  let invalid s =
    Alcotest.check_raises s (Invalid_argument "Zint.of_string: malformed literal")
      (fun () -> ignore (Z.of_string s))
  in
  invalid "12a3";
  invalid "-";
  invalid "+"

let test_of_string_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Zint.of_string: empty string") (fun () ->
      ignore (Z.of_string ""))

let test_big_arithmetic () =
  let a = Z.of_string "123456789012345678901234567890" in
  let b = Z.of_string "98765432109876543210" in
  check_z "a+b"
    (Z.of_string "123456789111111111011111111100")
    (Z.add a b);
  check_z "a-b"
    (Z.of_string "123456788913580246791358024680")
    (Z.sub a b);
  check_z "a*b"
    (Z.of_string "12193263113702179522496570642237463801111263526900")
    (Z.mul a b)

let test_factorial () =
  check_z "0!" Z.one (Z.factorial 0);
  check_z "5!" (Z.of_int 120) (Z.factorial 5);
  check_z "20!" (Z.of_string "2432902008176640000") (Z.factorial 20);
  check_z "25!" (Z.of_string "15511210043330985984000000") (Z.factorial 25);
  Alcotest.check_raises "negative"
    (Invalid_argument "Zint.factorial: negative input") (fun () ->
      ignore (Z.factorial (-1)))

let test_pow () =
  check_z "2^0" Z.one (Z.pow Z.two 0);
  check_z "2^10" (Z.of_int 1024) (Z.pow Z.two 10);
  check_z "(-3)^3" (Z.of_int (-27)) (Z.pow (Z.of_int (-3)) 3);
  check_z "pow2 64" (Z.of_string "18446744073709551616") (Z.pow2 64);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Zint.pow: negative exponent") (fun () ->
      ignore (Z.pow Z.two (-1)))

let test_val2 () =
  Alcotest.(check int) "48" 4 (Z.val2 (Z.of_int 48));
  Alcotest.(check int) "1" 0 (Z.val2 Z.one);
  Alcotest.(check int) "2^40" 40 (Z.val2 (Z.pow2 40));
  Alcotest.(check int) "v2(20!)" 18 (Z.val2 (Z.factorial 20));
  Alcotest.check_raises "zero" (Invalid_argument "Zint.val2: zero") (fun () ->
      ignore (Z.val2 Z.zero))

let test_divmod_signs () =
  (* truncated division must agree with native / and mod *)
  let pairs = [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (0, 5) ] in
  List.iter
    (fun (a, b) ->
      let q, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (Z.to_int_exn q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (Z.to_int_exn r))
    pairs;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Z.divmod Z.one Z.zero))

let test_ediv_rem () =
  let cases = [ (7, 3); (-7, 3); (7, -3); (-7, -3) ] in
  List.iter
    (fun (a, b) ->
      let q, r = Z.ediv_rem (Z.of_int a) (Z.of_int b) in
      Alcotest.(check bool)
        (Printf.sprintf "0<=r<|b| for %d %d" a b)
        true
        (Z.sign r >= 0 && Z.compare r (Z.abs (Z.of_int b)) < 0);
      check_z
        (Printf.sprintf "a=qb+r for %d %d" a b)
        (Z.of_int a)
        (Z.add (Z.mul q (Z.of_int b)) r))
    cases

let test_erem_pow2 () =
  Alcotest.(check int) "17 mod 16" 1 (Z.to_int_exn (Z.erem_pow2 (Z.of_int 17) 4));
  Alcotest.(check int) "-1 mod 16" 15 (Z.to_int_exn (Z.erem_pow2 (Z.of_int (-1)) 4));
  Alcotest.(check int) "0 mod 8" 0 (Z.to_int_exn (Z.erem_pow2 Z.zero 3))

let test_gcd_lcm () =
  check_z "gcd 24 30" (Z.of_int 6) (Z.gcd (Z.of_int 24) (Z.of_int 30));
  check_z "gcd -24 30" (Z.of_int 6) (Z.gcd (Z.of_int (-24)) (Z.of_int 30));
  check_z "gcd 0 0" Z.zero (Z.gcd Z.zero Z.zero);
  check_z "gcd 0 7" (Z.of_int 7) (Z.gcd Z.zero (Z.of_int 7));
  check_z "lcm 4 6" (Z.of_int 12) (Z.lcm (Z.of_int 4) (Z.of_int 6));
  check_z "lcm 0 6" Z.zero (Z.lcm Z.zero (Z.of_int 6))

let test_divexact () =
  check_z "84/7" (Z.of_int 12) (Z.divexact (Z.of_int 84) (Z.of_int 7));
  Alcotest.check_raises "inexact"
    (Invalid_argument "Zint.divexact: inexact division") (fun () ->
      ignore (Z.divexact (Z.of_int 5) (Z.of_int 2)))

let test_divides () =
  Alcotest.(check bool) "3|12" true (Z.divides (Z.of_int 3) (Z.of_int 12));
  Alcotest.(check bool) "5|12" false (Z.divides (Z.of_int 5) (Z.of_int 12));
  Alcotest.(check bool) "0|0" true (Z.divides Z.zero Z.zero);
  Alcotest.(check bool) "0|3" false (Z.divides Z.zero (Z.of_int 3))

let test_num_bits () =
  Alcotest.(check int) "0" 0 (Z.num_bits Z.zero);
  Alcotest.(check int) "1" 1 (Z.num_bits Z.one);
  Alcotest.(check int) "255" 8 (Z.num_bits (Z.of_int 255));
  Alcotest.(check int) "256" 9 (Z.num_bits (Z.of_int 256));
  Alcotest.(check int) "2^100" 101 (Z.num_bits (Z.pow2 100))

let test_to_int_opt_bounds () =
  Alcotest.(check bool) "2^61 fits" true (Z.to_int_opt (Z.pow2 61) <> None);
  Alcotest.(check bool) "2^63 too big" true (Z.to_int_opt (Z.pow2 63) = None)

(* properties --------------------------------------------------------------- *)

let prop_add_commutes =
  prop "add commutes" QCheck.(pair arb_zint arb_zint) (fun (a, b) ->
      Z.equal (Z.add a b) (Z.add b a))

let prop_add_assoc =
  prop "add associates" QCheck.(triple arb_zint arb_zint arb_zint)
    (fun (a, b, c) -> Z.equal (Z.add (Z.add a b) c) (Z.add a (Z.add b c)))

let prop_mul_commutes =
  prop "mul commutes" QCheck.(pair arb_zint arb_zint) (fun (a, b) ->
      Z.equal (Z.mul a b) (Z.mul b a))

let prop_mul_assoc =
  prop "mul associates" QCheck.(triple arb_zint arb_zint arb_zint)
    (fun (a, b, c) -> Z.equal (Z.mul (Z.mul a b) c) (Z.mul a (Z.mul b c)))

let prop_distrib =
  prop "mul distributes over add" QCheck.(triple arb_zint arb_zint arb_zint)
    (fun (a, b, c) ->
      Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c)))

let prop_sub_inverse =
  prop "a - b + b = a" QCheck.(pair arb_zint arb_zint) (fun (a, b) ->
      Z.equal a (Z.add (Z.sub a b) b))

let prop_matches_native =
  prop "agrees with native int ops" QCheck.(pair arb_small arb_small)
    (fun (a, b) ->
      let za = Z.of_int a and zb = Z.of_int b in
      Z.to_int_exn (Z.add za zb) = a + b
      && Z.to_int_exn (Z.sub za zb) = a - b
      && Z.to_int_exn (Z.mul za zb) = a * b
      && (b = 0 || Z.to_int_exn (Z.div za zb) = a / b)
      && (b = 0 || Z.to_int_exn (Z.rem za zb) = a mod b))

let prop_divmod_invariant =
  prop "a = q*b + r with |r| < |b|" QCheck.(pair arb_zint arb_zint)
    (fun (a, b) ->
      QCheck.assume (not (Z.is_zero b));
      let q, r = Z.divmod a b in
      Z.equal a (Z.add (Z.mul q b) r) && Z.compare (Z.abs r) (Z.abs b) < 0)

let prop_string_roundtrip =
  prop "to_string/of_string roundtrip" arb_zint (fun a ->
      Z.equal a (Z.of_string (Z.to_string a)))

let prop_gcd_divides =
  prop "gcd divides both arguments" QCheck.(pair arb_zint arb_zint)
    (fun (a, b) ->
      let g = Z.gcd a b in
      if Z.is_zero g then Z.is_zero a && Z.is_zero b
      else Z.divides g a && Z.divides g b)

let prop_compare_total_order =
  prop "compare consistent with sub sign" QCheck.(pair arb_zint arb_zint)
    (fun (a, b) ->
      let c = Z.compare a b in
      let s = Z.sign (Z.sub a b) in
      (c > 0) = (s > 0) && (c < 0) = (s < 0) && (c = 0) = (s = 0))

let prop_hash_consistent =
  prop "equal values hash equally" arb_zint (fun a ->
      Z.hash a = Z.hash (Z.sub (Z.add a Z.one) Z.one))

let prop_num_bits_bound =
  prop "2^(bits-1) <= |a| < 2^bits" arb_zint (fun a ->
      QCheck.assume (not (Z.is_zero a));
      let n = Z.num_bits a in
      Z.compare (Z.abs a) (Z.pow2 n) < 0
      && Z.compare (Z.pow2 (n - 1)) (Z.abs a) <= 0)

let () =
  Alcotest.run "zint"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int extremes" `Quick test_of_int_extremes;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "of_string empty" `Quick test_of_string_empty;
          Alcotest.test_case "big arithmetic" `Quick test_big_arithmetic;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "val2" `Quick test_val2;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "erem_pow2" `Quick test_erem_pow2;
          Alcotest.test_case "gcd lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "divexact" `Quick test_divexact;
          Alcotest.test_case "divides" `Quick test_divides;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "to_int_opt bounds" `Quick test_to_int_opt_bounds;
        ] );
      ( "properties",
        [
          prop_add_commutes;
          prop_add_assoc;
          prop_mul_commutes;
          prop_mul_assoc;
          prop_distrib;
          prop_sub_inverse;
          prop_matches_native;
          prop_divmod_invariant;
          prop_string_roundtrip;
          prop_gcd_divides;
          prop_compare_total_order;
          prop_hash_consistent;
          prop_num_bits_bound;
        ] );
    ]
