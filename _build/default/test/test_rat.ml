module Z = Polysynth_zint.Zint
module Q = Polysynth_rat.Qint

let q = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check q

let arb_q =
  let gen =
    QCheck.Gen.map
      (fun (n, d) -> Q.of_ints n (if d = 0 then 1 else d))
      QCheck.Gen.(pair (int_range (-10_000) 10_000) (int_range (-100) 100))
  in
  QCheck.make gen ~print:Q.to_string

let prop name ?(count = 500) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let test_normalization () =
  check_q "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  check_q "-6/-4 = 3/2" (Q.of_ints 3 2) (Q.of_ints (-6) (-4));
  check_q "6/-4 = -3/2" (Q.of_ints (-3) 2) (Q.of_ints 6 (-4));
  check_q "0/7 = 0" Q.zero (Q.of_ints 0 7);
  Alcotest.(check string) "den positive" "1" (Z.to_string (Q.den (Q.of_ints 0 (-7))));
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_arithmetic () =
  check_q "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "1/2 - 1/3" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "2/3 * 3/4" (Q.of_ints 1 2) (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 4));
  check_q "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div (Q.of_ints 1 2) (Q.of_ints 3 4));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  Alcotest.(check int) "equal" 0 (Q.compare (Q.of_ints 2 4) (Q.of_ints 1 2))

let test_round_nearest () =
  let check name expect v =
    Alcotest.(check int) name expect (Z.to_int_exn (Q.round_nearest v))
  in
  check "7/2 -> 4" 4 (Q.of_ints 7 2);
  check "5/2 -> 3" 3 (Q.of_ints 5 2);
  check "-7/2 -> -4" (-4) (Q.of_ints (-7) 2);
  check "1/3 -> 0" 0 (Q.of_ints 1 3);
  check "2/3 -> 1" 1 (Q.of_ints 2 3);
  check "-2/3 -> -1" (-1) (Q.of_ints (-2) 3);
  check "5 -> 5" 5 (Q.of_int 5)

let test_integer_view () =
  Alcotest.(check bool) "4/2 is integer" true (Q.is_integer (Q.of_ints 4 2));
  Alcotest.(check bool) "1/2 not integer" false (Q.is_integer (Q.of_ints 1 2));
  Alcotest.(check int) "to_zint" 2 (Z.to_int_exn (Q.to_zint_exn (Q.of_ints 4 2)));
  Alcotest.check_raises "to_zint 1/2"
    (Failure "Qint.to_zint_exn: not an integer") (fun () ->
      ignore (Q.to_zint_exn (Q.of_ints 1 2)))

let test_to_string () =
  Alcotest.(check string) "3/2" "3/2" (Q.to_string (Q.of_ints 3 2));
  Alcotest.(check string) "int" "-5" (Q.to_string (Q.of_int (-5)))

let prop_field_axioms =
  prop "field axioms" QCheck.(triple arb_q arb_q arb_q) (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.mul a b) (Q.mul b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_inverse =
  prop "mul inverse" arb_q (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal Q.one (Q.mul a (Q.inv a)))

let prop_sub_add =
  prop "a - b + b = a" QCheck.(pair arb_q arb_q) (fun (a, b) ->
      Q.equal a (Q.add (Q.sub a b) b))

let prop_den_positive =
  prop "den always positive" QCheck.(pair arb_q arb_q) (fun (a, b) ->
      Z.sign (Q.den (Q.mul a b)) > 0 && Z.sign (Q.den (Q.add a b)) > 0)

let prop_round_distance =
  prop "round_nearest within 1/2" arb_q (fun a ->
      let r = Q.of_zint (Q.round_nearest a) in
      Q.compare (Q.abs (Q.sub a r)) (Q.of_ints 1 2) <= 0)

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "round_nearest" `Quick test_round_nearest;
          Alcotest.test_case "integer view" `Quick test_integer_view;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        [
          prop_field_axioms;
          prop_inverse;
          prop_sub_add;
          prop_den_positive;
          prop_round_distance;
        ] );
    ]
