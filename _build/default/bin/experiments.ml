(* Regenerate every table and figure of the paper's evaluation.

   Usage:
     experiments                 all tables (Table 14.3 takes ~1 minute)
     experiments --quick         small benchmarks only
     experiments --fig1          the Fig. 14.1 representation dump
     experiments --ablation      the stage-contribution ablation
     experiments --strategies    greedy vs KCM extraction baselines
     experiments --objectives    area/delay/power/ops objectives
     experiments --schedule      latency vs resource budgets
     experiments --extended      the extra workload suite
     experiments --mcm           shift-add lowering of constant multipliers *)

module T = Polysynth_report.Tables

let quick_names = [ "SG 3x2"; "Quad"; "Mibench"; "MVCS" ]

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  if has "--fig1" then print_string (T.fig_14_1_dump ())
  else if has "--ablation" then begin
    let names = if has "--quick" then Some quick_names else None in
    print_string (T.render_ablation (T.ablation_rows ?names ()))
  end
  else if has "--strategies" then
    print_string
      (T.render_named_ablation
         ~title:"Extraction strategy — greedy vs KCM prime rectangles"
         (T.strategy_rows ~names:quick_names ()))
  else if has "--objectives" then
    print_string
      (T.render_named_ablation
         ~title:"Search objective — area / delay / power / ops"
         (T.objective_rows ()))
  else if has "--schedule" then
    print_string (T.render_schedule (T.schedule_rows ()))
  else if has "--extended" then
    print_string (T.render_table_14_3 (T.extended_rows ()))
  else if has "--mcm" then
    print_string
      (T.render_named_ablation
         ~title:"MCM — shared shift-add lowering of constant multipliers"
         (T.mcm_rows ()))
  else begin
    print_string
      (T.render_counts
         ~title:"Table 14.1 — decompositions of the motivating system"
         (T.table_14_1_rows ()));
    print_newline ();
    print_string
      (T.render_counts ~title:"Table 14.2 — Algorithm 7 walk-through"
         (T.table_14_2_rows ()));
    print_newline ();
    let names = if has "--quick" then Some quick_names else None in
    print_string (T.render_table_14_3 (T.table_14_3_rows ?names ()))
  end
