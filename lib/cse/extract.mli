(** Factoring with common sub-expression extraction (the Hosangadi-style
    flow of reference [13], used both as the comparison baseline and as the
    common-cube-extraction stage of the proposed method).

    The driver keeps a worklist of polynomial bodies (the system outputs
    plus every building block created so far) and greedily applies the move
    with the best global operator saving until none helps:
    - extracting a kernel, a kernel intersection, or a common cube that
      occurs several times as a shared building block;
    - factoring a single polynomial through one of its kernels
      ([P = cokernel * kernel + rest]).

    In [Coeff_literals] mode numeric coefficients are treated as opaque
    literals, faithfully reproducing the limitation of [13] that Section
    14.2.1 discusses (no algebraic division, so [5x^2+10y^3+15pq] exposes no
    common coefficient).  [Vars_only] mode extracts cubes over variables
    only and is what the proposed flow uses after its own common-coefficient
    extraction. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog

type mode =
  | Coeff_literals  (** coefficients are literals, as in [13] *)
  | Vars_only  (** cubes contain variables only *)

type strategy =
  | Greedy  (** kernel grouping + pairwise intersections (default) *)
  | Kcm_rectangles
      (** prime rectangles of the kernel-cube matrix ({!Kcm}) as the block
          candidates — the exact Hosangadi formulation *)

type result = {
  prog : Prog.t;
      (** the decomposition: block bindings plus one output per input
          polynomial (named [P1], [P2], ...) *)
  blocks : (string * Poly.t) list;
      (** the extracted building blocks as polynomials (block bodies may
          mention earlier blocks by name), in creation order *)
  output_bodies : (string * Poly.t) list;
      (** the rewritten flat polynomial of each output (block names appear
          as variables), in input order *)
}

val run :
  ?mode:mode ->
  ?strategy:strategy ->
  ?signs:bool ->
  ?max_iters:int ->
  Poly.t list ->
  result
(** [mode] defaults to [Coeff_literals]; [signs] (default true) also
    matches sub-expressions up to negation ([P = S + A] together with
    [P' = S - A]), an enhancement beyond [13] that the baseline disables;
    [max_iters] (default 100) bounds the number of greedy extractions. *)

val block_prefix : string
(** Prefix of generated block names ("cse_t"). *)

val clear_cost_memo : unit -> unit
(** Invalidate the domain-local flat-cost memo in every domain (the
    tables self-reset via a global epoch on their next access) and zero
    the counters.  Part of the engine-owned cache set emptied by
    [Engine.clear_cache]. *)

val cost_memo_stats : unit -> int * int
(** Cumulative [(hits, misses)] of the flat-cost memo across all domains
    since start or {!clear_cost_memo}. *)

val cost_memo_enabled : unit -> bool

val set_cost_memo_enabled : bool -> unit
(** Bypass the memo entirely (no lookups, no fills, no counter traffic) —
    how the engine honours [Config.cache = false]. *)
