(** Kernel/co-kernel extraction for polynomials (Section 14.2.1, after
    Hosangadi et al.).

    For a polynomial [P] and a cube [c], the quotient [P/c] (keeping only
    the terms divisible by [c]) is a {e kernel} when it is cube-free and has
    at least two terms; [c] is the corresponding {e co-kernel}.  Kernels are
    the candidate multi-term factors that factoring and CSE work with.

    [kernels] and [largest_cube] are memoized in a bounded, domain-safe
    table keyed by the polynomial's hash: the extraction loop re-kernels
    its (mostly unchanged) work items every round, so results are served
    from cache across rounds.  The hit/miss counters surface in the engine
    trace, and [Polysynth_core.Engine.clear_cache] drops this table along
    with the representation store. *)

module Poly := Polysynth_poly.Poly
module Monomial := Polysynth_poly.Monomial

val clear_cache : unit -> unit
(** Drop the kernelling memo table and reset its counters. *)

val set_memo_enabled : bool -> unit
(** Globally enable/disable the memo table (default: enabled).  When
    disabled, [kernels]/[largest_cube] always recompute and the counters
    stay untouched; the engine flips this from its [cache] setting for the
    duration of a traced run and restores it after. *)

val memo_enabled : unit -> bool

val cache_stats : unit -> int * int
(** Cumulative (hits, misses) of the kernelling memo table. *)

val largest_cube : Poly.t -> Monomial.t
(** The biggest cube (product of variables) dividing every term;
    [Monomial.one] for the zero polynomial. *)

val is_cube_free : Poly.t -> bool

val cube_free_part : Poly.t -> Poly.t
(** [p = monomial(largest_cube p) * cube_free_part p]. *)

val divide_cube : Poly.t -> Monomial.t -> Poly.t
(** [divide_cube p c]: drop the terms not divisible by [c] and divide the
    rest — the quotient used to form kernels. *)

val kernels : Poly.t -> (Monomial.t * Poly.t) list
(** All (co-kernel, kernel) pairs of the polynomial, including the trivial
    pair [(largest_cube p, cube_free_part p)] when the cube-free part has at
    least two terms.  Pairs are distinct and deterministically ordered. *)
