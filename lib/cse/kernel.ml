module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

(* ---- memo table --------------------------------------------------------- *)

(* The extraction loop (Extract.run) re-kernels every work-item body each
   round, and [rewrite_with_block] re-kernels the body after every rewrite
   — but most bodies are unchanged between calls.  Kernelling is the hot
   stage, so [kernels] and [largest_cube] are memoized here, keyed by the
   polynomial itself through its (monomial-hash based) [Poly.hash].  The
   table is a bounded FIFO shared across domains; the computation itself
   runs outside the lock, so a race costs at most duplicated work.

   Hits/misses feed the engine trace (Polysynth_core.Engine merges them
   with its representation-store counters), and [Engine.clear_cache]
   clears this table too. *)
module Ptbl = Hashtbl.Make (struct
  type t = Poly.t

  let equal = Poly.equal
  let hash = Poly.hash
end)

module Memo = struct
  type entry = {
    mutable kernels : (Monomial.t * Poly.t) list option;
    mutable cube : Monomial.t option;
  }

  let capacity = 8192
  let lock = Mutex.create ()
  let table : entry Ptbl.t = Ptbl.create 256
  let order : Poly.t Queue.t = Queue.create ()
  let hits = Atomic.make 0
  let misses = Atomic.make 0

  let find p = Mutex.protect lock (fun () -> Ptbl.find_opt table p)

  (* call under [lock] *)
  let entry p =
    match Ptbl.find_opt table p with
    | Some e -> e
    | None ->
      if Ptbl.length table >= capacity then
        (match Queue.take_opt order with
         | Some old -> Ptbl.remove table old
         | None -> ());
      let e = { kernels = None; cube = None } in
      Ptbl.replace table p e;
      Queue.add p order;
      e

  let set_kernels p ks =
    Mutex.protect lock (fun () -> (entry p).kernels <- Some ks)

  let set_cube p c = Mutex.protect lock (fun () -> (entry p).cube <- Some c)

  let clear () =
    Mutex.protect lock (fun () ->
        Ptbl.reset table;
        Queue.clear order);
    Atomic.set hits 0;
    Atomic.set misses 0

  let stats () = (Atomic.get hits, Atomic.get misses)
end

(* The engine flips this off when it runs with [cache = false], so that
   "caching disabled" really measures raw kernelling. *)
let memo_flag = Atomic.make true
let set_memo_enabled b = Atomic.set memo_flag b
let memo_enabled () = Atomic.get memo_flag

let clear_cache = Memo.clear
let cache_stats = Memo.stats

(* ---- cubes --------------------------------------------------------------- *)

let largest_cube_raw p =
  match Poly.terms p with
  | [] -> Monomial.one
  | (_, m) :: rest ->
    let rec go acc = function
      | [] -> acc
      | (_, m') :: tl ->
        if Monomial.is_one acc then acc else go (Monomial.gcd acc m') tl
    in
    go m rest

let largest_cube p =
  if not (Atomic.get memo_flag) then largest_cube_raw p
  else
    match Memo.find p with
    | Some { Memo.cube = Some c; _ } ->
      Atomic.incr Memo.hits;
      c
    | Some _ | None ->
      Atomic.incr Memo.misses;
      let c = largest_cube_raw p in
      Memo.set_cube p c;
      c

let is_cube_free p = Monomial.is_one (largest_cube p)

(* Dividing every term by the same cube is a strictly order-preserving
   monomial map (the graded-lex order is compatible with multiplication),
   so the quotient term lists below are already sorted and duplicate-free:
   [Poly.of_sorted_terms] skips the hashtable-and-sort of [Poly.of_terms]. *)

let cube_free_part p =
  let c = largest_cube p in
  if Monomial.is_one c then p
  else
    Poly.of_sorted_terms
      (List.map
         (fun (k, m) ->
           match Monomial.div m c with
           | Some m' -> (k, m')
           | None -> assert false)
         (Poly.terms p))

let divide_cube p c =
  if Monomial.is_one c then p
  else
    Poly.of_sorted_terms
      (List.filter_map
         (fun (k, m) ->
           match Monomial.div m c with
           | Some m' -> Some (k, m')
           | None -> None)
         (Poly.terms p))

module PolySet = Set.Make (struct
  type t = Monomial.t * Poly.t

  let compare (c1, k1) (c2, k2) =
    let c = Monomial.compare c1 c2 in
    if c <> 0 then c else Poly.compare k1 k2
end)

(* Recursive kernelling.  [vars] is the indexed literal order; at level
   [j] only literals of index >= j are divided out, and a candidate whose
   extracted cube re-introduces an earlier literal is skipped because the
   same kernel was already produced along that literal's branch. *)
module Symtab = Polysynth_poly.Symtab

let kernels_raw p =
  if Poly.is_zero p then []
  else begin
    (* the indexed literal order, as pre-interned ids: the recursion only
       touches integers from here on *)
    let vars = Array.of_list (List.map Symtab.intern (Poly.vars p)) in
    let index = Array.make (Symtab.size ()) max_int in
    Array.iteri (fun i id -> index.(id) <- i) vars;
    let acc = ref PolySet.empty in
    let consider cokernel kernel =
      if Poly.num_terms kernel >= 2 then
        acc := PolySet.add (cokernel, kernel) !acc
    in
    let rec explore j cokernel pol =
      consider cokernel pol;
      Array.iteri
        (fun k id ->
          if k >= j then begin
            let in_terms =
              List.fold_left
                (fun n (_, m) -> if Monomial.mentions_id id m then n + 1 else n)
                0 (Poly.terms pol)
            in
            if in_terms >= 2 then begin
              let f = divide_cube pol (Monomial.var_of_id id) in
              if Poly.num_terms f >= 2 then begin
                let c = largest_cube_raw f in
                let f1 = divide_cube f c in
                let earlier_literal =
                  Array.exists (fun id' -> index.(id') < k) (Monomial.var_ids c)
                in
                if not earlier_literal then
                  explore k
                    (Monomial.mul cokernel
                       (Monomial.mul (Monomial.var_of_id id) c))
                    f1
              end
            end
          end)
        vars
    in
    let c0 = largest_cube_raw p in
    let p0 = divide_cube p c0 in
    explore 0 c0 p0;
    PolySet.elements !acc
  end

let kernels p =
  if not (Atomic.get memo_flag) then kernels_raw p
  else
    match Memo.find p with
    | Some { Memo.kernels = Some ks; _ } ->
      Atomic.incr Memo.hits;
      ks
    | Some _ | None ->
      Atomic.incr Memo.misses;
      let ks = kernels_raw p in
      Memo.set_kernels p ks;
      ks
