module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog

type mode = Coeff_literals | Vars_only

type strategy = Greedy | Kcm_rectangles

type result = {
  prog : Prog.t;
  blocks : (string * Poly.t) list;
  output_bodies : (string * Poly.t) list;
}

let block_prefix = "cse_t"

(* ---- coefficient-literal encoding ---------------------------------------- *)

let literal_prefix = '~'

let encode_coeff_literals p =
  Poly.of_terms
    (List.map
       (fun (c, m) ->
         let a = Z.abs c in
         if Z.is_one a then (c, m)
         else
           let sign = if Z.is_negative c then Z.minus_one else Z.one in
           ( sign,
             Monomial.mul m
               (Monomial.var (Printf.sprintf "%c%s" literal_prefix (Z.to_string a)))
           ))
       (Poly.terms p))

let is_literal_var v = String.length v > 0 && v.[0] = literal_prefix

let decode_poly p =
  List.fold_left
    (fun p v ->
      if is_literal_var v then
        Poly.subst v
          (Poly.const (Z.of_string (String.sub v 1 (String.length v - 1))))
          p
      else p)
    p (Poly.vars p)

let decode_expr e =
  Expr.subst
    (fun v ->
      if is_literal_var v then
        Some (Expr.const (Z.of_string (String.sub v 1 (String.length v - 1))))
      else None)
    e

(* ---- work items ------------------------------------------------------------ *)

type item = { name : string; mutable body : Poly.t }

(* Operator count of one body as a flat sum of products.  The greedy loop
   recomputes the cost of every item for each of its ~40 trial rewrites
   per round, but a trial changes only a few bodies — so the per-body
   count is memoized, keyed by the polynomial's (monomial-hash based)
   hash.  The table is domain-local: the engine fans the integrated
   variants out across domains and each keeps its own lock-free table. *)
module Ptbl = Hashtbl.Make (struct
  type t = Poly.t

  let equal = Poly.equal
  let hash = Poly.hash
end)

(* Lifecycle: a domain-local table cannot be cleared from another domain,
   so [clear_cost_memo] bumps a global epoch and every domain's slot
   self-resets on its next access.  The hit/miss counters are global
   atomics rather than per-domain: worker domains are transient (they die
   when a [parallel_map] returns), so domain-local counts would vanish
   with them. *)
let cost_memo_epoch = Atomic.make 0
let cost_memo_hits = Atomic.make 0
let cost_memo_misses = Atomic.make 0
let cost_memo_on = Atomic.make true

let cost_memo_enabled () = Atomic.get cost_memo_on
let set_cost_memo_enabled b = Atomic.set cost_memo_on b

let body_ops_key : (int * int Ptbl.t) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref (Atomic.get cost_memo_epoch, Ptbl.create 1024))

let body_ops body =
  if not (Atomic.get cost_memo_on) then
    Dag.total_ops (Dag.tree_counts (Expr.of_poly body))
  else
  let slot = Domain.DLS.get body_ops_key in
  let epoch = Atomic.get cost_memo_epoch in
  let tbl =
    let e, tbl = !slot in
    if e = epoch then tbl
    else begin
      let fresh = Ptbl.create 1024 in
      slot := (epoch, fresh);
      fresh
    end
  in
  match Ptbl.find_opt tbl body with
  | Some n ->
    Atomic.incr cost_memo_hits;
    n
  | None ->
    Atomic.incr cost_memo_misses;
    let n = Dag.total_ops (Dag.tree_counts (Expr.of_poly body)) in
    if Ptbl.length tbl > 65536 then Ptbl.reset tbl;
    Ptbl.add tbl body n;
    n

let clear_cost_memo () =
  Atomic.incr cost_memo_epoch;
  Atomic.set cost_memo_hits 0;
  Atomic.set cost_memo_misses 0

let cost_memo_stats () =
  (Atomic.get cost_memo_hits, Atomic.get cost_memo_misses)

let flat_cost items =
  (* operator count of all bodies as flat sums of products; block variables
     and coefficient literals count as plain operands *)
  List.fold_left (fun acc it -> acc + body_ops it.body) 0 items

(* ---- candidate moves --------------------------------------------------------- *)

(* A candidate is a multi-term body to become a new block (kernels,
   kernel intersections) or a single cube to share. *)
type candidate = Block of Poly.t | Cube of Monomial.t

module PolyMap = Map.Make (Poly)
module MonoSet = Set.Make (Monomial)

let subset_terms small big =
  (* every (coeff, monomial) term of [small] appears in [big] *)
  List.for_all
    (fun (c, m) -> Z.equal (Poly.coeff big m) c)
    (Poly.terms small)

(* sign-aware containment: [Some 1] when d appears verbatim, [Some (-1)]
   when its negation does (systems with mirror symmetry share
   sub-expressions up to sign, e.g. P1 = S + A, P3 = S - A).  Matching up
   to sign is part of the enhanced flow, not of the [13] baseline, so it
   is switchable. *)
let subset_terms_signed ~signs d big =
  if subset_terms d big then Some 1
  else if signs && subset_terms (Poly.neg d) big then Some (-1)
  else None

(* canonical sign for a candidate: positive leading coefficient *)
let normalize_sign p =
  if Poly.is_zero p then p
  else if Z.is_negative (fst (Poly.leading p)) then Poly.neg p
  else p

let kernel_instances items =
  List.concat_map
    (fun it ->
      List.map (fun (ck, k) -> (it, ck, k)) (Kernel.kernels it.body))
    items

let candidate_blocks ~signs instances =
  let norm k = if signs then normalize_sign k else k in
  let grouped =
    List.fold_left
      (fun acc (_, _, k) ->
        PolyMap.update (norm k)
          (function None -> Some 1 | Some n -> Some (n + 1))
          acc)
      PolyMap.empty instances
  in
  let kernels = List.map fst (PolyMap.bindings grouped) in
  (* pairwise term intersections of distinct kernels (up to sign) expose
     shared sub-expressions that are not whole kernels *)
  let intersect k k' =
    let common =
      List.filter (fun (c, m) -> Z.equal (Poly.coeff k' m) c) (Poly.terms k)
    in
    if List.length common >= 2 then
      let inter = Poly.of_terms common in
      if not (Poly.equal inter k) && not (Poly.equal inter k') then
        [ norm inter ]
      else []
    else []
  in
  let rec intersections acc = function
    | [] -> acc
    | k :: rest ->
      let acc =
        List.fold_left
          (fun acc k' ->
            intersect k k'
            @ (if signs then intersect k (Poly.neg k') else [])
            @ acc)
          acc rest
      in
      intersections acc rest
  in
  let inters = intersections [] kernels in
  List.map (fun k -> Block k) kernels
  @ List.map (fun k -> Block k) (List.sort_uniq Poly.compare inters)

let candidate_cubes items =
  let monos =
    List.concat_map
      (fun it -> List.map snd (Poly.terms it.body))
      items
  in
  let rec pairwise acc = function
    | [] -> acc
    | m :: rest ->
      let acc =
        List.fold_left
          (fun acc m' ->
            let g = Monomial.gcd m m' in
            if Monomial.degree g >= 2 then MonoSet.add g acc else acc)
          acc rest
      in
      pairwise acc rest
  in
  let cubes = pairwise MonoSet.empty monos in
  List.map (fun c -> Cube c) (MonoSet.elements cubes)

(* ---- applying a move ---------------------------------------------------------- *)

let rewrite_with_block ~signs block_var d body =
  (* replace every residual occurrence of +-(c*d) inside [body] by
     +-(c * block_var) *)
  let rec go body =
    let usable =
      List.filter_map
        (fun (ck, k) ->
          match subset_terms_signed ~signs d k with
          | Some sign -> Some (ck, sign)
          | None -> None)
        (Kernel.kernels body)
    in
    match usable with
    | [] -> body
    | (ck, sign) :: _ ->
      let s = if sign >= 0 then Z.one else Z.minus_one in
      let removed = Poly.sub body (Poly.mul_term s ck d) in
      let replaced =
        Poly.add removed
          (Poly.term s (Monomial.mul ck (Monomial.var block_var)))
      in
      go replaced
  in
  go body

let rewrite_with_cube block_var c body =
  Poly.of_terms
    (List.map
       (fun (k, m) ->
         match Monomial.div m c with
         | Some rest -> (k, Monomial.mul rest (Monomial.var block_var))
         | None -> (k, m))
       (Poly.terms body))

(* names of items the candidate body depends on, transitively; rewriting
   those would create a reference cycle between block definitions *)
let dependency_closure items body =
  let bodies = List.map (fun it -> (it.name, it.body)) items in
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | v :: rest ->
      if List.mem v seen then go seen rest
      else
        let seen = v :: seen in
        (match List.assoc_opt v bodies with
         | Some b -> go seen (Poly.vars b @ rest)
         | None -> go seen rest)
  in
  go [] (Poly.vars body)

let apply_candidate ~signs fresh_name cand items =
  (* returns the new item list (bodies are fresh copies) *)
  let block_body =
    match cand with
    | Block d -> d
    | Cube c -> Poly.monomial c
  in
  let frozen = dependency_closure items block_body in
  let copy = List.map (fun it -> { it with body = it.body }) items in
  List.iter
    (fun it ->
      if not (List.mem it.name frozen) then
        it.body <-
          (match cand with
           | Block d -> rewrite_with_block ~signs fresh_name d it.body
           | Cube c -> rewrite_with_cube fresh_name c it.body))
    copy;
  copy @ [ { name = fresh_name; body = block_body } ]

(* count how many items actually changed; a candidate that rewrites nothing
   is useless even if the cost metric ties *)
let num_rewritten before after =
  List.fold_left2
    (fun acc b a -> if Poly.equal b.body a.body then acc else acc + 1)
    0 before
    (List.filteri (fun i _ -> i < List.length before) after)

(* ---- main loop -------------------------------------------------------------------- *)

let run ?(mode = Coeff_literals) ?(strategy = Greedy) ?(signs = true)
    ?(max_iters = 100) polys =
  let encoded =
    match mode with
    | Coeff_literals -> List.map encode_coeff_literals polys
    | Vars_only -> polys
  in
  let outputs =
    List.mapi
      (fun i p -> { name = Printf.sprintf "P%d" (i + 1); body = p })
      encoded
  in
  let block_counter = ref 0 in
  let fresh () =
    incr block_counter;
    Printf.sprintf "%s%d" block_prefix !block_counter
  in
  (* cheap ranking before the exact trial application keeps the loop
     polynomial even on 25-polynomial systems *)
  let estimate instances items cand =
    match cand with
    | Block d ->
      let ops_d = body_ops d in
      let occ =
        List.length
          (List.filter
             (fun (_, _, k) -> subset_terms_signed ~signs d k <> None)
             instances)
      in
      occ * ops_d
    | Cube c ->
      let uses =
        List.fold_left
          (fun acc it ->
            acc
            + List.length
                (List.filter
                   (fun (_, m) -> Monomial.divides c m)
                   (Poly.terms it.body)))
          0 items
      in
      (uses - 1) * (Monomial.degree c - 1)
  in
  let trials_per_round = 40 in
  let rec loop iters items block_order =
    if iters >= max_iters then (items, block_order)
    else begin
      let current_cost = flat_cost items in
      let instances = kernel_instances items in
      let block_candidates =
        match strategy with
        | Greedy -> candidate_blocks ~signs instances
        | Kcm_rectangles ->
          List.map
            (fun body -> Block body)
            (Kcm.candidates (List.map (fun it -> it.body) items))
      in
      let candidates = block_candidates @ candidate_cubes items in
      let ranked =
        List.map (fun cand -> (estimate instances items cand, cand)) candidates
        |> List.filter (fun (est, _) -> est > 0)
        |> List.stable_sort (fun (a, _) (b, _) -> Stdlib.compare b a)
      in
      let shortlisted =
        List.filteri (fun i _ -> i < trials_per_round) ranked
      in
      let name = Printf.sprintf "%s%d" block_prefix (!block_counter + 1) in
      let best =
        List.fold_left
          (fun best (_, cand) ->
            let trial = apply_candidate ~signs name cand items in
            let cost = flat_cost trial in
            if cost < current_cost && num_rewritten items trial >= 1 then
              match best with
              | Some (_, best_cost, _) when best_cost <= cost -> best
              | Some _ | None -> Some (cand, cost, trial)
            else best)
          None shortlisted
      in
      match best with
      | None -> (items, block_order)
      | Some (_, _, trial) ->
        let _ = fresh () in
        loop (iters + 1) trial (block_order @ [ name ])
    end
  in
  let items, block_names = loop 0 outputs [] in
  let find_item n = List.find (fun it -> it.name = n) items in
  (* bindings must come out in dependency order: a block created early may
     have been rewritten to use a block created later *)
  let block_names =
    let visited = ref [] in
    let rec visit n =
      if not (List.mem n !visited) && List.mem n block_names then begin
        List.iter visit (Poly.vars (find_item n).body);
        visited := !visited @ [ n ]
      end
    in
    List.iter visit block_names;
    !visited
  in
  let blocks =
    List.map (fun n -> (n, decode_poly (find_item n).body)) block_names
  in
  let bindings =
    List.map
      (fun n -> (n, decode_expr (Expr.of_poly (find_item n).body)))
      block_names
  in
  let out_items =
    List.filter
      (fun it -> String.length it.name > 0 && it.name.[0] = 'P')
      items
  in
  let out_exprs =
    List.map (fun it -> (it.name, decode_expr (Expr.of_poly it.body))) out_items
  in
  let output_bodies =
    List.map (fun it -> (it.name, decode_poly it.body)) out_items
  in
  ({ prog = { Prog.bindings; outputs = out_exprs }; blocks; output_bodies }
    : result)
