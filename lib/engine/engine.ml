(** The unified synthesis engine ([Polysynth_engine.Engine]) — the public
    face of the implementation living in [polysynth_core], re-exported
    here so that consumers depend on one small library.  No [.mli] on
    purpose: the types stay equal to [Polysynth_core.Engine]'s, so values
    flow freely between the two paths during migration. *)

include Polysynth_core.Engine
