(* Legacy entry points, kept as thin shims over the Engine. *)

type method_name = Engine.method_name =
  | Direct
  | Horner
  | Factor_cse
  | Proposed

let method_label = Engine.method_label

type report = Engine.report = {
  method_name : method_name;
  prog : Polysynth_expr.Prog.t;
  counts : Polysynth_expr.Dag.counts;
  cost : Polysynth_hw.Cost.report;
  labels : string list;
  cert : Polysynth_analysis.Equiv.cert;
  simplified : Polysynth_analysis.Simplify.outcome option;
}

(* The legacy call sites were sequential; keep them so ([parallelism = 1])
   rather than silently changing their execution profile.  [options.budget]
   has no legacy equivalent and is ignored here — budgeted runs go through
   [Engine.run] directly. *)
let config_of ?ctx ?options ~width () =
  let base = { (Engine.Config.default ~width) with ctx; parallelism = 1 } in
  match (options : Search.options option) with
  | None -> base
  | Some o ->
    {
      base with
      width = o.Search.width;
      model = o.Search.model;
      objective = o.Search.objective;
      exhaustive_limit = o.Search.exhaustive_limit;
      sweeps = o.Search.sweeps;
    }

let run ?ctx ?options ~width method_name polys =
  fst (Engine.run (config_of ?ctx ?options ~width ()) method_name polys)

let synthesize ?ctx ?options ~width polys =
  run ?ctx ?options ~width Proposed polys

let compare_methods ?ctx ?options ~width polys =
  fst (Engine.compare_methods (config_of ?ctx ?options ~width ()) polys)

let verify = Engine.verify
