module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr
module Canonical = Polysynth_finite_ring.Canonical
module Squarefree = Polysynth_factor.Squarefree
module Ted = Polysynth_ted.Ted
module Buchberger = Polysynth_groebner.Buchberger

type semantics = Exact | ModRing

type rep = { label : string; expr : Expr.t; semantics : semantics }

type t = {
  table : Blocktab.t;
  divisors : Poly.t list;
  polys : Poly.t array;
  reps : rep list array;
  ctx : Canonical.ctx option;
}

let squarefree_rep session p =
  if Poly.is_zero p || Poly.is_const p then None
  else begin
    let f = Squarefree.squarefree p in
    if Squarefree.is_trivial f then None
    else
      Some
        (Expr.mul
           (Expr.const f.Squarefree.unit_part
           :: List.map
                (fun (s, k) -> Expr.pow (Algdiv.decompose session s) k)
                f.Squarefree.factors))
  end

(* fold coefficients into their cheapest representative modulo 2^m
   (references [10, 11]: adding multiples of 2^m never changes the
   bit-vector function, and e.g. 65535*x is one subtraction as -x).
   The fold picks whichever of c mod 2^m and its negative counterpart has
   fewer CSD digits. *)
let coeff_fold_rep ctx session p =
  let m = Canonical.out_width ctx in
  let modulus = Polysynth_zint.Zint.pow2 m in
  let fold c =
    let r = snd (Polysynth_zint.Zint.ediv_rem c modulus) in
    let alt = Polysynth_zint.Zint.sub r modulus in
    if
      Polysynth_hw.Cost.csd_digits alt < Polysynth_hw.Cost.csd_digits r
    then alt
    else r
  in
  let folded =
    Poly.of_terms
      (List.map (fun (c, mono) -> (fold c, mono)) (Poly.terms p))
  in
  if Poly.equal folded p then None
  else Some (Algdiv.decompose session folded)

(* canonicalize groups of terms with the same variable support
   independently, keeping a group in its (decomposed) power form when the
   falling-factorial form is more expensive: the paper's Table 14.2
   decomposition keeps 3z^2 direct while the xy-part becomes
   5*Y3(x)*Y2(y) *)
let canonical_split_rep ctx table session p =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (c, m) ->
      let key = Polysynth_poly.Monomial.vars m in
      if not (Hashtbl.mem groups key) then order := key :: !order;
      let prev =
        match Hashtbl.find_opt groups key with
        | Some q -> q
        | None -> Poly.zero
      in
      Hashtbl.replace groups key (Poly.add prev (Poly.term c m)))
    (Poly.terms p);
  let keys = List.rev !order in
  if List.length keys <= 1 then None
  else begin
    let tree_cost e =
      Polysynth_expr.Dag.total_ops (Polysynth_expr.Dag.tree_counts e)
    in
    let part key =
      let q = Hashtbl.find groups key in
      let canonical = Canonical_rep.rep ctx table q in
      let plain = Algdiv.decompose session q in
      if tree_cost canonical < tree_cost plain then canonical else plain
    in
    Some (Expr.add (List.map part keys))
  end

(* complete factorization for univariate polynomials (Berlekamp +
   Hensel): exposes irreducible factors square-free factorization cannot
   split, e.g. x^4 + x^2 + 1 = (x^2+x+1)(x^2-x+1) *)
let factorize_rep session p =
  match Poly.vars p with
  | [ v ] when Poly.degree_in v p >= 2 ->
    let f = Polysynth_factor.Factorize.factor v p in
    (match f.Polysynth_factor.Factorize.factors with
     | [ (_, 1) ] | [] -> None
     | factors ->
       Some
         (Expr.mul
            (Expr.const f.Polysynth_factor.Factorize.unit_part
            :: List.map
                 (fun (g, k) -> Expr.pow (Algdiv.decompose session g) k)
                 factors)))
  | _ -> None

let cce_rep session p =
  let r = Cce.extract p in
  if r.Cce.groups = [] then None
  else
    Some
      (Expr.add
         (List.map
            (fun (g, b) ->
              Expr.mul [ Expr.const g; Algdiv.decompose session b ])
            r.Cce.groups
         @ [ Algdiv.decompose session r.Cce.residual ]))

(* Groebner-basis library rewriting (after Peymandoust & De Micheli):
   eliminate the input variables in favour of the discovered divisor
   blocks; the lex normal form is the rewriting over the block library *)
let groebner_rep table divisors p =
  if Poly.is_zero p || Poly.is_const p then None
  else begin
    let library =
      List.filteri (fun i _ -> i < 8) divisors
      |> List.map (fun d -> (Blocktab.divisor_var table d, d))
    in
    match Buchberger.rewrite_with_library ~library p with
    | exception Failure _ -> None
    | None -> None
    | Some (e, _) -> Some e
  end

let dedup reps =
  let rec go seen = function
    | [] -> []
    | r :: rest ->
      if List.exists (fun r' -> Expr.equal r'.expr r.expr) seen then go seen rest
      else r :: go (r :: seen) rest
  in
  go [] reps

let build ?ctx ?max_blocks ?(pmap = List.map) polys =
  let table = Blocktab.create () in
  let divisors = Blocks.discover ?max_blocks polys in
  (* Fix the TED variable order up front (first occurrence across the
     system, exactly the order the sequential build would register):
     processing order then cannot influence the diagrams, so parallel and
     sequential builds produce identical representations. *)
  let ted_order =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
          acc (Poly.vars p))
      [] polys
  in
  (* one TED manager for the whole system: sub-functions shared across
     polynomials land on shared nodes, and decompose emits identical
     sub-expressions for them, which the DAG then merges *)
  let ted_manager = Ted.create ~order:ted_order () in
  let reps_of p =
    (* a session per polynomial: the algebraic-division memo is a pure
       compute cache, and a private one keeps the builder lock-free so
       [pmap] may process polynomials on separate domains *)
    let session = Algdiv.make_session table ~divisors in
    let exact label expr = Some { label; expr; semantics = Exact } in
    let candidates =
      [
        exact "direct" (Expr.of_poly p);
        exact "horner" (Horner.rep p);
        (match squarefree_rep session p with
         | Some e -> exact "sqfree" e
         | None -> None);
        (match factorize_rep session p with
         | Some e -> exact "factorize" e
         | None -> None);
        (match ctx with
         | Some ctx ->
           Some
             {
               label = "canonical";
               expr = Canonical_rep.rep ctx table p;
               semantics = ModRing;
             }
         | None -> None);
        (match ctx with
         | Some ctx ->
           (match canonical_split_rep ctx table session p with
            | Some e ->
              Some { label = "canonical_split"; expr = e; semantics = ModRing }
            | None -> None)
         | None -> None);
        (match ctx with
         | Some ctx ->
           (match coeff_fold_rep ctx session p with
            | Some e ->
              Some { label = "coeff_fold"; expr = e; semantics = ModRing }
            | None -> None)
         | None -> None);
        (match cce_rep session p with
         | Some e -> exact "cce" e
         | None -> None);
        exact "algdiv" (Algdiv.decompose session p);
        exact "ted" (Ted.decompose ted_manager (Ted.of_poly ted_manager p));
        (match groebner_rep table divisors p with
         | Some e -> exact "groebner" e
         | None -> None);
      ]
    in
    dedup (List.filter_map Fun.id candidates)
  in
  {
    table;
    divisors;
    polys = Array.of_list polys;
    reps = Array.of_list (pmap reps_of polys);
    ctx;
  }

let num_combinations t =
  Array.fold_left
    (fun acc reps ->
      let n = List.length reps in
      if acc > max_int / (max n 1) then max_int else acc * n)
    1 t.reps
