(** Combination selection — lines 18-24 of Algorithm 7.

    A combination assigns one representation to each polynomial; its cost
    is measured {e after} CSE, i.e. on the hash-consed DAG of the whole
    program (shared building blocks are counted once).  Small systems are
    searched exhaustively; large ones by coordinate descent, re-optimizing
    one polynomial at a time against the sharing created by the others. *)

module Prog := Polysynth_expr.Prog
module Dag := Polysynth_expr.Dag
module Cost := Polysynth_hw.Cost

type objective =
  | Min_area  (** the paper's objective *)
  | Min_delay
  | Min_power  (** switching-activity estimate — the paper's future work *)
  | Min_ops  (** raw post-CSE operator count *)

type options = {
  width : int;  (** datapath bit-width, for the area/delay model *)
  model : Cost.model;
  objective : objective;
  exhaustive_limit : int;
      (** combination count up to which the search is exhaustive *)
  sweeps : int;  (** coordinate-descent passes for large systems *)
  budget : (unit -> bool) option;
      (** "may another combination be evaluated?"  When it returns [false]
          the search stops early and keeps the best candidate found so far
          (the first candidate is always evaluated).  [None] = unlimited.
          The engine threads its shared time/candidate budget through
          here. *)
}

val default_options : width:int -> options
(** Objective defaults to [Min_area]; no budget. *)

val score : options -> Prog.t -> float array
(** The lexicographic objective key of a program under the options
    (exposed so that whole-system decompositions outside the
    representation search can compete on equal terms). *)

type selection = {
  prog : Prog.t;  (** chosen representations, with used block bindings *)
  labels : string list;  (** chosen representation label per polynomial *)
  cost : Cost.report;
  counts : Dag.counts;
  combinations_evaluated : int;
  exhaustive : bool;
  budget_exhausted : bool;
      (** the budget callback stopped the search before it finished *)
}

val prog_of_choice : Represent.t -> Represent.rep list -> Prog.t
(** Assemble a program from one representation per polynomial, including
    exactly the block bindings the expressions use. *)

val select : options -> Represent.t -> selection
