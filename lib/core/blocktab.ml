module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr

type entry = { name : string; poly : Poly.t; def : Expr.t }

(* The table is shared by every representation builder of a system; the
   parallel engine runs those builders on separate domains, so find-or-add
   must be atomic (two polynomials registering the same divisor must agree
   on its name). *)
type t = {
  mutable entries : entry list;
  mutable counter : int;
  lock : Mutex.t;
}

let create () = { entries = []; counter = 0; lock = Mutex.create () }

let find_unlocked tab poly =
  List.find_opt (fun e -> Poly.equal e.poly poly) tab.entries

let divisor_var tab poly =
  Mutex.protect tab.lock (fun () ->
      match find_unlocked tab poly with
      | Some e -> e.name
      | None ->
        tab.counter <- tab.counter + 1;
        let name = Printf.sprintf "d%d" tab.counter in
        tab.entries <-
          tab.entries @ [ { name; poly; def = Expr.of_poly poly } ];
        name)

let y2_var tab v =
  let poly = Poly.mul (Poly.var v) (Poly.sub (Poly.var v) Poly.one) in
  Mutex.protect tab.lock (fun () ->
      match find_unlocked tab poly with
      | Some e -> e.name
      | None ->
        let name = Printf.sprintf "y2_%s" v in
        let def =
          Expr.mul [ Expr.var v; Expr.sub (Expr.var v) Expr.one ]
        in
        tab.entries <- tab.entries @ [ { name; poly; def } ];
        name)

let bindings tab =
  Mutex.protect tab.lock (fun () ->
      List.map (fun e -> (e.name, e.def)) tab.entries)

let defs tab =
  Mutex.protect tab.lock (fun () ->
      List.map (fun e -> (e.name, e.poly)) tab.entries)

let lookup_divisor tab poly =
  Mutex.protect tab.lock (fun () ->
      Option.map (fun e -> e.name) (find_unlocked tab poly))
