(** Legacy entry points of the synthesis flow, now thin shims over
    {!Engine} — new code should use [Engine.run] / [Engine.synthesize] /
    [Engine.compare_methods], which take one {!Engine.Config.t} record and
    additionally return an {!Engine.Trace.t}.

    The shims run the engine sequentially ([parallelism = 1]) and ignore
    [options.budget]; apart from that they produce exactly the reports the
    historical implementation did. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Dag := Polysynth_expr.Dag
module Cost := Polysynth_hw.Cost
module Canonical := Polysynth_finite_ring.Canonical

type method_name = Engine.method_name =
  | Direct
  | Horner
  | Factor_cse
  | Proposed

val method_label : method_name -> string

type report = Engine.report = {
  method_name : method_name;
  prog : Prog.t;
  counts : Dag.counts;  (** post-CSE MULT/ADD counts *)
  cost : Cost.report;  (** estimated hardware area and delay *)
  labels : string list;  (** chosen representation per polynomial
                             (Proposed only; empty otherwise) *)
  cert : Polysynth_analysis.Equiv.cert;
      (** equivalence certificate for [prog] against the source system *)
  simplified : Polysynth_analysis.Simplify.outcome option;
      (** always [None] through this legacy interface *)
}

val run :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  method_name ->
  Poly.t list ->
  report
[@@ocaml.deprecated "Use Engine.run: it takes one Config record and also returns a Trace."]

val synthesize :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  Poly.t list ->
  report
[@@ocaml.deprecated "Use Engine.synthesize."]
(** [run Proposed]. *)

val compare_methods :
  ?ctx:Canonical.ctx ->
  ?options:Search.options ->
  width:int ->
  Poly.t list ->
  report list
[@@ocaml.deprecated "Use Engine.compare_methods."]
(** All four methods on the same system, in declaration order of
    {!method_name}. *)

val verify : ?ctx:Canonical.ctx -> Poly.t list -> Prog.t -> bool
(** Does the program compute the system?  Exact polynomial equality when no
    ring context is given; equality of bit-vector functions (via canonical
    forms) when one is. *)
