(** The polynomial data structure of Fig. 14.1: for every polynomial of the
    system, a list of candidate representations produced by the different
    transformations, sharing one table of named building blocks.

    Representations labelled [ModRing] equal the original polynomial only
    as a bit-vector function over the given ring (canonical forms);
    [Exact] representations expand back to the original polynomial over the
    integers. *)

module Poly := Polysynth_poly.Poly
module Expr := Polysynth_expr.Expr
module Canonical := Polysynth_finite_ring.Canonical

type semantics = Exact | ModRing

type rep = { label : string; expr : Expr.t; semantics : semantics }

type t = {
  table : Blocktab.t;
  divisors : Poly.t list;
  polys : Poly.t array;
  reps : rep list array;  (** non-empty for each polynomial *)
  ctx : Canonical.ctx option;
}

val build :
  ?ctx:Canonical.ctx ->
  ?max_blocks:int ->
  ?pmap:((Poly.t -> rep list) -> Poly.t list -> rep list list) ->
  Poly.t list ->
  t
(** Representation lists contain, where applicable and distinct: the
    direct form, the Horner form, the square-free factored form, the
    canonical form (when [ctx] is given), the CCE decomposition, and the
    best algebraic-division decomposition.

    [pmap] (default [List.map]) maps the per-polynomial builder over the
    system; the engine passes a domain-pool map here to fan the builds out
    in parallel.  The builder is safe to run concurrently (the shared
    block table and TED manager are lock-protected, and the TED variable
    order is fixed up front), and the produced representations are
    identical to a sequential build up to block naming order. *)

val num_combinations : t -> int
(** Product of the representation-list lengths (capped at [max_int]). *)
