(** The unified synthesis engine — the single entry point for Algorithm 7.

    One {!Config.t} record replaces the scattered [?ctx ?options ~width]
    arguments of the legacy {!Pipeline} interface; {!run} executes a
    method under that configuration and returns the synthesis {!report}
    together with a {!Trace.t} recording per-stage wall time, candidate
    counts, cache behaviour, and budget exhaustion.

    The engine fans independent work out over OCaml domains (the
    per-polynomial representation builds and the integrated whole-system
    variants); on a single-core host — or with [parallelism = 1] — it
    follows the exact sequential code path, and in both modes it selects
    decompositions of identical cost (results can differ only in block
    naming order).  A process-wide bounded memo keyed by the polynomial
    system and ring signature caches representation stores and variant
    lists, so {!compare_methods} performs [Represent.build] exactly once
    per system.

    Use through the [polysynth_engine] library:
    {[
      module Engine = Polysynth_engine.Engine

      let config = Engine.Config.default ~width:16
      let report, trace = Engine.synthesize config polys
      let () = print_string (Engine.Trace.to_text trace)
    ]} *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Dag := Polysynth_expr.Dag
module Cost := Polysynth_hw.Cost
module Canonical := Polysynth_finite_ring.Canonical
module Equiv := Polysynth_analysis.Equiv
module Simplify := Polysynth_analysis.Simplify

type method_name = Direct | Horner | Factor_cse | Proposed

val method_label : method_name -> string

type report = {
  method_name : method_name;
  prog : Prog.t;
  counts : Dag.counts;  (** post-CSE MULT/ADD counts *)
  cost : Cost.report;  (** estimated hardware area and delay *)
  labels : string list;
      (** chosen representation per polynomial (Proposed only; a single
          variant label when an integrated decomposition won; empty for
          the baselines) *)
  cert : Equiv.cert;
      (** equivalence certificate for [prog] against the source system:
          [Verified] is a proof (canonical forms over [Z_2^m] under a ring
          context, exact identity otherwise), [Refuted] carries a concrete
          counterexample input.  [Unknown "not certified"] when the run
          had [certify = false]. *)
  simplified : Polysynth_analysis.Simplify.outcome option;
      (** outcome of the certificate-guarded netlist simplification pass;
          present only when the run had [Config.simplify = true].  The
          simplified artifact is the outcome's netlist — [prog] itself is
          never rewritten. *)
}

module Config : sig
  type strategy =
    | Full  (** combination search and integrated variants compete *)
    | Search_only  (** Algorithm 7 lines 18-24 only *)
    | Integrated_only  (** whole-system decompositions only *)

  type t = {
    width : int;  (** datapath bit-width for the area/delay model *)
    ctx : Canonical.ctx option;  (** bit-vector ring; [None] = exact *)
    model : Cost.model;
    objective : Search.objective;
    strategy : strategy;
    parallelism : int;
        (** domains to fan work out over; [0] = auto
            ([Domain.recommended_domain_count ()]); [1] = sequential *)
    time_budget : float option;  (** wall-clock budget, seconds *)
    candidate_budget : int option;
        (** extra candidate evaluations allowed after the mandatory first
            of each stage; shared between search and variants *)
    exhaustive_limit : int;
        (** combination count up to which the search is exhaustive *)
    sweeps : int;  (** coordinate-descent passes for large systems *)
    max_blocks : int option;  (** cap for block discovery *)
    cache : bool;  (** consult/fill the process-wide memo *)
    certify : bool;
        (** run the equivalence certifier on every selected decomposition
            (a ["<method>/certify"] trace stage); off, reports carry
            [Unknown "not certified"] *)
    simplify : bool;
        (** lower every selected decomposition, run the reduced-product
            abstract interpretation over the netlist and the
            certificate-guarded simplify pass on its facts — recorded as
            ["<method>/analyze"] (candidates = cells with an informative
            fact) and ["<method>/simplify"] (candidates = cells
            eliminated) trace stages *)
  }

  val default : width:int -> t
  (** [Full] strategy, [Min_area] objective, auto parallelism, no
      budgets, caching on, certification on. *)

  val domains : t -> int
  (** The resolved degree of parallelism. *)

  val search_options : ?budget:(unit -> bool) -> t -> Search.options
  (** The corresponding combination-search options. *)
end

module Trace : sig
  type stage = {
    name : string;  (** e.g. ["proposed/represent"], ["direct/baseline"] *)
    wall : float;  (** seconds *)
    candidates : int;
        (** representations built / combinations evaluated / variants
            considered in this stage *)
  }

  type t = {
    parallelism : int;
    stages : stage list;  (** in execution order *)
    cache_hits : int;  (** memo hits during this run, all tables merged *)
    cache_misses : int;
    cache_tables : (string * int * int) list;
        (** per-table [(name, hits, misses)] split of the totals above:
            ["representation"] (the engine store), ["kernel"]
            (kernelling memo), ["flat-cost"] (Extract's domain-local
            body-cost memo) *)
    budget_exhausted : bool;
        (** a budget stopped some stage before it finished *)
    certificates : (string * string) list;
        (** per method, the certificate status ("verified" / "refuted" /
            "unknown"), in certification order *)
    wall : float;  (** whole-run wall time, seconds *)
  }

  val to_text : t -> string
  (** Human-readable multi-line rendering. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> string
  (** One JSON object: [{"parallelism":..,"wall_ms":..,"cache":
      {"hits":..,"misses":..},"budget_exhausted":..,"stages":[..]}]. *)

  val json_string : string -> string
  (** An escaped JSON string literal — for composing larger objects
      around {!to_json}. *)
end

val run : Config.t -> method_name -> Poly.t list -> report * Trace.t

val synthesize : Config.t -> Poly.t list -> report * Trace.t
(** [run config Proposed]. *)

val compare_methods : Config.t -> Poly.t list -> report list * Trace.t
(** All four methods on the same system, reported in declaration order of
    {!method_name} under one merged trace.  Proposed is computed first so
    the Direct and Horner baselines are served from the representation
    store it cached (visible as [cache_hits] in the trace). *)

val verify : ?ctx:Canonical.ctx -> Poly.t list -> Prog.t -> bool
(** Does the program compute the system?  Exact polynomial equality when
    no ring context is given; equality of bit-vector functions (via
    canonical forms) when one is.  A boolean shorthand for
    [Polysynth_analysis.Equiv.certify] with an uncapped size budget. *)

val parallel_map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** The engine's domain-pool map: work-stealing over at most [domains]
    domains (including the caller's), preserving item order.  Falls back
    to [List.map] when [domains <= 1] or fewer than two items. *)

val clear_cache : unit -> unit
(** Empty every engine-owned memo in one place — the
    representation/variant store, the kernelling memo of
    [Polysynth_cse.Kernel], and the domain-local flat-cost memo of
    [Polysynth_cse.Extract] — and reset their hit/miss counters. *)

val cache_stats : unit -> int * int
(** Cumulative [(hits, misses)] since start or {!clear_cache}, merged
    across all the tables listed under {!Trace.t.cache_tables}. *)
