(* Implementation of the unified synthesis engine.  The public library
   [polysynth_engine] re-exports this module verbatim; it lives inside
   [polysynth_core] so that the deprecated [Pipeline] entry points can
   delegate to it without a dependency cycle. *)

module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost
module Canonical = Polysynth_finite_ring.Canonical
module Extract = Polysynth_cse.Extract
module Kernel = Polysynth_cse.Kernel
module Equiv = Polysynth_analysis.Equiv
module Absint = Polysynth_analysis.Absint
module Domains = Polysynth_analysis.Domains
module Simplify = Polysynth_analysis.Simplify
module Netlist = Polysynth_hw.Netlist

type method_name = Direct | Horner | Factor_cse | Proposed

let method_label = function
  | Direct -> "direct"
  | Horner -> "horner"
  | Factor_cse -> "factor+cse"
  | Proposed -> "proposed"

type report = {
  method_name : method_name;
  prog : Prog.t;
  counts : Dag.counts;
  cost : Cost.report;
  labels : string list;
  cert : Equiv.cert;
  simplified : Simplify.outcome option;
}

(* ---- configuration ---------------------------------------------------- *)

module Config = struct
  type strategy = Full | Search_only | Integrated_only

  type t = {
    width : int;
    ctx : Canonical.ctx option;
    model : Cost.model;
    objective : Search.objective;
    strategy : strategy;
    parallelism : int;
    time_budget : float option;
    candidate_budget : int option;
    exhaustive_limit : int;
    sweeps : int;
    max_blocks : int option;
    cache : bool;
    certify : bool;
    simplify : bool;
  }

  let default ~width =
    {
      width;
      ctx = None;
      model = Cost.default;
      objective = Search.Min_area;
      strategy = Full;
      parallelism = 0;
      time_budget = None;
      candidate_budget = None;
      exhaustive_limit = 4096;
      sweeps = 4;
      max_blocks = None;
      cache = true;
      certify = true;
      simplify = false;
    }

  let domains t =
    if t.parallelism > 0 then t.parallelism
    else Domain.recommended_domain_count ()

  let search_options ?budget t =
    {
      Search.width = t.width;
      model = t.model;
      objective = t.objective;
      exhaustive_limit = t.exhaustive_limit;
      sweeps = t.sweeps;
      budget;
    }
end

(* ---- trace ------------------------------------------------------------ *)

module Trace = struct
  type stage = { name : string; wall : float; candidates : int }

  type t = {
    parallelism : int;
    stages : stage list;
    cache_hits : int;
    cache_misses : int;
    cache_tables : (string * int * int) list;
    budget_exhausted : bool;
    certificates : (string * string) list;
    wall : float;
  }

  let to_text t =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "trace: %.3f ms wall, parallelism %d\n" (1000. *. t.wall)
         t.parallelism);
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "  %-26s %9.3f ms  %d candidate%s\n" s.name
             (1000. *. s.wall) s.candidates
             (if s.candidates = 1 then "" else "s")))
      t.stages;
    Buffer.add_string b
      (Printf.sprintf "  cache: %d hit%s, %d miss%s\n" t.cache_hits
         (if t.cache_hits = 1 then "" else "s")
         t.cache_misses
         (if t.cache_misses = 1 then "" else "es"));
    List.iter
      (fun (name, h, m) ->
        Buffer.add_string b
          (Printf.sprintf "    %-14s %d hit%s, %d miss%s\n" name h
             (if h = 1 then "" else "s")
             m
             (if m = 1 then "" else "es")))
      t.cache_tables;
    if t.budget_exhausted then
      Buffer.add_string b "  budget exhausted: the search stopped early\n";
    List.iter
      (fun (m, status) ->
        Buffer.add_string b
          (Printf.sprintf "  certificate: %-12s %s\n" m status))
      t.certificates;
    Buffer.contents b

  let pp fmt t = Format.pp_print_string fmt (to_text t)

  let json_string s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

  let to_json t =
    let stage s =
      Printf.sprintf {|{"name":%s,"wall_ms":%.3f,"candidates":%d}|}
        (json_string s.name) (1000. *. s.wall) s.candidates
    in
    let certificate (m, status) =
      Printf.sprintf {|{"method":%s,"status":%s}|} (json_string m)
        (json_string status)
    in
    let table (name, h, m) =
      Printf.sprintf {|{"name":%s,"hits":%d,"misses":%d}|} (json_string name) h
        m
    in
    Printf.sprintf
      {|{"parallelism":%d,"wall_ms":%.3f,"cache":{"hits":%d,"misses":%d,"tables":[%s]},"budget_exhausted":%b,"certificates":[%s],"stages":[%s]}|}
      t.parallelism (1000. *. t.wall) t.cache_hits t.cache_misses
      (String.concat "," (List.map table t.cache_tables))
      t.budget_exhausted
      (String.concat "," (List.map certificate t.certificates))
      (String.concat "," (List.map stage t.stages))
end

(* ---- memo table ------------------------------------------------------- *)

(* A bounded FIFO cache keyed by the printed system plus the ring
   signature.  It holds the representation store and the integrated
   variants so that [compare_methods] (and repeated runs on the same
   system) perform [Represent.build] and [Integrated.variants] once. *)
module Memo = struct
  type entry = {
    mutable store : Represent.t option;
    mutable variants : (string * Prog.t) list option;
  }

  let capacity = 32
  let lock = Mutex.create ()
  let table : (string, entry) Hashtbl.t = Hashtbl.create capacity
  let order : string Queue.t = Queue.create ()
  let hits = Atomic.make 0
  let misses = Atomic.make 0

  let key ~ctx polys =
    let b = Buffer.create 128 in
    List.iter
      (fun p ->
        Buffer.add_string b (Poly.to_string p);
        Buffer.add_char b ';')
      polys;
    (match ctx with
     | None -> Buffer.add_string b "|Z"
     | Some ctx ->
       Buffer.add_string b (Printf.sprintf "|m=%d" (Canonical.out_width ctx));
       let vars =
         List.concat_map Poly.vars polys |> List.sort_uniq String.compare
       in
       List.iter
         (fun v ->
           Buffer.add_string b
             (Printf.sprintf ",%s:%d" v (Canonical.var_width ctx v)))
         vars);
    Buffer.contents b

  (* call under [lock] *)
  let entry k =
    match Hashtbl.find_opt table k with
    | Some e -> e
    | None ->
      if Hashtbl.length table >= capacity then
        (match Queue.take_opt order with
         | Some old -> Hashtbl.remove table old
         | None -> ());
      let e = { store = None; variants = None } in
      Hashtbl.replace table k e;
      Queue.add k order;
      e

  let find k = Mutex.protect lock (fun () -> Hashtbl.find_opt table k)

  let set_store k s =
    Mutex.protect lock (fun () -> (entry k).store <- Some s)

  let set_variants k v =
    Mutex.protect lock (fun () -> (entry k).variants <- Some v)

  let clear () =
    Mutex.protect lock (fun () ->
        Hashtbl.reset table;
        Queue.clear order);
    Atomic.set hits 0;
    Atomic.set misses 0

  let stats () = (Atomic.get hits, Atomic.get misses)
end

(* The engine manages three memo layers: its own representation/variant
   store above, the kernelling memo inside Polysynth_cse.Kernel that
   serves the extraction loops, and Extract's domain-local flat-cost
   memo.  They are cleared together here (the single lifecycle point) and
   the trace reports both the merged totals and the per-table split. *)
let cache_table_stats () =
  [
    ("representation", Memo.stats ());
    ("kernel", Kernel.cache_stats ());
    ("flat-cost", Extract.cost_memo_stats ());
  ]

let clear_cache () =
  Memo.clear ();
  Kernel.clear_cache ();
  Extract.clear_cost_memo ()

let cache_stats () =
  List.fold_left
    (fun (h, m) (_, (th, tm)) -> (h + th, m + tm))
    (0, 0) (cache_table_stats ())

(* ---- parallel map over a domain pool ---------------------------------- *)

(* Work-stealing by atomic index over at most [domains] domains (including
   the calling one).  Falls back to [List.map] when the pool would have a
   single domain or a single item, so single-core hosts keep the exact
   sequential code path. *)
let parallel_map ~domains f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when domains <= 1 -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let pool =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join pool;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)

(* ---- budget ----------------------------------------------------------- *)

(* One budget closure is shared by the representation search and the
   integrated variants: every "may another candidate be evaluated?" call
   consumes a slot and checks the deadline.  The first candidate of each
   stage is always evaluated, so exhaustion still leaves a valid result. *)
let make_budget (config : Config.t) =
  match (config.time_budget, config.candidate_budget) with
  | None, None -> (None, fun () -> false)
  | time, cand ->
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) time in
    let used = Atomic.make 0 in
    let tripped = Atomic.make false in
    let ok () =
      let n = Atomic.fetch_and_add used 1 in
      let fine =
        (match cand with None -> true | Some c -> n < c)
        && (match deadline with
            | None -> true
            | Some d -> Unix.gettimeofday () < d)
      in
      if not fine then Atomic.set tripped true;
      fine
    in
    (Some ok, fun () -> Atomic.get tripped)

(* ---- the flow --------------------------------------------------------- *)

let now = Unix.gettimeofday

let stage stages name f =
  let t0 = now () in
  let r, candidates = f () in
  stages := { Trace.name; wall = now () -. t0; candidates } :: !stages;
  r

let report_of (config : Config.t) method_name prog labels =
  {
    method_name;
    prog;
    counts = Prog.counts prog;
    cost = Cost.of_prog ~model:config.model ~width:config.width prog;
    labels;
    cert = Equiv.Unknown "not certified";
    simplified = None;
  }

let obtain_store (config : Config.t) ~pmap key polys =
  let cached =
    if config.cache then
      match Memo.find key with
      | Some { Memo.store = Some s; _ } -> Some s
      | _ -> None
    else None
  in
  match cached with
  | Some s ->
    Atomic.incr Memo.hits;
    s
  | None ->
    if config.cache then Atomic.incr Memo.misses;
    let s =
      Represent.build ?ctx:config.ctx ?max_blocks:config.max_blocks ~pmap
        polys
    in
    if config.cache then Memo.set_store key s;
    s

let variant_builders polys =
  [
    ("integrated-cce-first", fun () -> Integrated.decompose_cce_first polys);
    ("integrated-cubes-first", fun () -> Integrated.decompose_cubes_first polys);
    ("integrated-refine", fun () -> Integrated.refine_literal_extraction polys);
    ( "integrated-kcm",
      fun () ->
        Integrated.refine_literal_extraction ~strategy:Extract.Kcm_rectangles
          polys );
  ]

let obtain_variants (config : Config.t) ~pmap ~may key polys =
  let cached =
    if config.cache then
      match Memo.find key with
      | Some { Memo.variants = Some v; _ } -> Some v
      | _ -> None
    else None
  in
  match cached with
  | Some v ->
    Atomic.incr Memo.hits;
    v
  | None ->
    if config.cache then Atomic.incr Memo.misses;
    let builders = variant_builders polys in
    let indexed = List.mapi (fun i b -> (i, b)) builders in
    let built =
      pmap
        (fun (i, (label, build)) ->
          (* the first variant is always built; the rest consume budget *)
          if i = 0 || may () then Some (label, build ()) else None)
        indexed
      |> List.filter_map Fun.id
    in
    (* only a complete set may be cached — a budget-truncated list would
       poison later unbudgeted runs *)
    if config.cache && List.length built = List.length builders then
      Memo.set_variants key built;
    built

(* The Proposed flow of Algorithm 7, instrumented: representation build
   (fanned out per polynomial), combination search, integrated
   whole-system variants (fanned out per variant), then the competition
   under the search objective with first-best tie-breaking — exactly the
   sequence the legacy [Pipeline.run Proposed] performed. *)
let proposed (config : Config.t) ~prefix stages budget_ok polys =
  let domains = Config.domains config in
  let pmap f xs = parallel_map ~domains f xs in
  let may () = match budget_ok with None -> true | Some ok -> ok () in
  let options = Config.search_options ?budget:budget_ok config in
  let key = Memo.key ~ctx:config.ctx polys in
  let from_search =
    match config.strategy with
    | Config.Integrated_only -> None
    | Config.Full | Config.Search_only ->
      let store =
        stage stages (prefix ^ "represent") (fun () ->
            let s = obtain_store config ~pmap key polys in
            ( s,
              Array.fold_left
                (fun acc reps -> acc + List.length reps)
                0 s.Represent.reps ))
      in
      let sel =
        stage stages (prefix ^ "search") (fun () ->
            let sel = Search.select options store in
            (sel, sel.Search.combinations_evaluated))
      in
      Some
        {
          method_name = Proposed;
          prog = sel.Search.prog;
          counts = sel.Search.counts;
          cost = sel.Search.cost;
          labels = sel.Search.labels;
          cert = Equiv.Unknown "not certified";
          simplified = None;
        }
  in
  let variants =
    match config.strategy with
    | Config.Search_only -> []
    | Config.Full | Config.Integrated_only ->
      stage stages (prefix ^ "integrated") (fun () ->
          let vs = obtain_variants config ~pmap ~may key polys in
          (vs, List.length vs))
  in
  let scored r = (Search.score options r.prog, r) in
  let candidates =
    (match from_search with Some r -> [ scored r ] | None -> [])
    @ List.map
        (fun (label, prog) ->
          scored { (report_of config Proposed prog []) with labels = [ label ] })
        variants
  in
  match candidates with
  | [] -> invalid_arg "Engine: empty candidate set (no strategy stage ran)"
  | first :: rest ->
    snd
      (List.fold_left
         (fun (bk, br) (ck, cr) ->
           if ck < bk then (ck, cr) else (bk, br))
         first rest)

let baseline_from_store (store : Represent.t) label =
  let pick reps =
    List.find_opt
      (fun (r : Represent.rep) -> String.equal r.Represent.label label)
      reps
  in
  let chosen = Array.map pick store.Represent.reps in
  if Array.for_all Option.is_some chosen then
    Some
      (Prog.of_exprs
         (Array.to_list chosen
         |> List.map (fun o -> (Option.get o).Represent.expr)))
  else None

let baseline (config : Config.t) ~prefix stages key method_name polys =
  stage stages (prefix ^ "baseline") (fun () ->
      let label = method_label method_name in
      let from_cache =
        match method_name with
        | (Direct | Horner) when config.cache ->
          (* the representation store holds the very expressions these
             baselines are made of; serve them from cache when a previous
             Proposed run built the store for this system *)
          let served =
            match Memo.find key with
            | Some { Memo.store = Some s; _ } -> baseline_from_store s label
            | _ -> None
          in
          (match served with
           | Some _ -> Atomic.incr Memo.hits
           | None -> Atomic.incr Memo.misses);
          served
        | _ -> None
      in
      let prog =
        match from_cache with
        | Some p -> p
        | None ->
          (match method_name with
           | Direct -> Baselines.direct polys
           | Horner -> Baselines.horner polys
           | Factor_cse -> Baselines.factor_cse polys
           | Proposed -> assert false)
      in
      (report_of config method_name prog [], 1))

(* Certification is the engine's last stage per method: the selected
   decomposition is checked against the source system and the resulting
   certificate is carried on the report and summarized in the trace. *)
let certify_report (config : Config.t) ~prefix stages certs polys r =
  if not config.Config.certify then r
  else begin
    let cert =
      stage stages (prefix ^ "certify") (fun () ->
          (Equiv.certify ?ctx:config.Config.ctx polys r.prog, 1))
    in
    certs := (method_label r.method_name, Equiv.cert_label cert) :: !certs;
    { r with cert }
  end

(* When [config.simplify] is on, the selected decomposition is lowered to
   a netlist, the reduced-product analysis runs over it (an "analyze"
   stage whose candidate count is the number of cells with an informative
   fact, i.e. strictly below top), and the certificate-guarded simplify
   pass rewrites it (a "simplify" stage counting eliminated cells).  The
   outcome rides on the report; [report.prog] is untouched — the
   simplified artifact is the netlist. *)
let simplify_report (config : Config.t) ~prefix stages polys r =
  if not config.Config.simplify then r
  else begin
    let width = config.Config.width in
    let n = Netlist.of_prog ~width r.prog in
    let facts =
      stage stages (prefix ^ "analyze") (fun () ->
          let facts = Absint.analyze_product n in
          let informative =
            Array.fold_left
              (fun acc f ->
                if Domains.Product.leq (Domains.Product.top ~width) f then acc
                else acc + 1)
              0 facts
          in
          (facts, informative))
    in
    let system =
      List.mapi (fun i p -> (Printf.sprintf "P%d" (i + 1), p)) polys
    in
    let outcome =
      stage stages (prefix ^ "simplify") (fun () ->
          let o = Simplify.run ~system ~facts n in
          (o, Simplify.cells_eliminated o))
    in
    { r with simplified = Some outcome }
  end

let with_trace (config : Config.t) f =
  let t0 = now () in
  let kernel_memo_was = Kernel.memo_enabled () in
  Kernel.set_memo_enabled config.Config.cache;
  let cost_memo_was = Extract.cost_memo_enabled () in
  Extract.set_cost_memo_enabled config.Config.cache;
  let tables0 = cache_table_stats () in
  let stages = ref [] in
  let certs = ref [] in
  let budget_ok, budget_tripped = make_budget config in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Kernel.set_memo_enabled kernel_memo_was;
        Extract.set_cost_memo_enabled cost_memo_was)
      (fun () -> f stages certs budget_ok)
  in
  let cache_tables =
    List.map2
      (fun (name, (h0, m0)) (_, (h1, m1)) -> (name, h1 - h0, m1 - m0))
      tables0 (cache_table_stats ())
  in
  let cache_hits, cache_misses =
    List.fold_left (fun (h, m) (_, th, tm) -> (h + th, m + tm)) (0, 0)
      cache_tables
  in
  ( result,
    {
      Trace.parallelism = Config.domains config;
      stages = List.rev !stages;
      cache_hits;
      cache_misses;
      cache_tables;
      budget_exhausted = budget_tripped ();
      certificates = List.rev !certs;
      wall = now () -. t0;
    } )

let run config method_name polys =
  with_trace config (fun stages certs budget_ok ->
      let prefix = method_label method_name ^ "/" in
      let r =
        match method_name with
        | Proposed -> proposed config ~prefix stages budget_ok polys
        | m ->
          let key = Memo.key ~ctx:config.Config.ctx polys in
          baseline config ~prefix stages key m polys
      in
      let r = certify_report config ~prefix stages certs polys r in
      simplify_report config ~prefix stages polys r)

let synthesize config polys = run config Proposed polys

let compare_methods config polys =
  with_trace config (fun stages certs budget_ok ->
      let key = Memo.key ~ctx:config.Config.ctx polys in
      (* Proposed first: it builds (and caches) the representation store
         the baselines are then served from *)
      let prop = proposed config ~prefix:"proposed/" stages budget_ok polys in
      let direct = baseline config ~prefix:"direct/" stages key Direct polys in
      let horner = baseline config ~prefix:"horner/" stages key Horner polys in
      let factor =
        baseline config ~prefix:"factor+cse/" stages key Factor_cse polys
      in
      List.map
        (fun r ->
          let prefix = method_label r.method_name ^ "/" in
          let r = certify_report config ~prefix stages certs polys r in
          simplify_report config ~prefix stages polys r)
        [ direct; horner; factor; prop ])

let verify ?ctx polys prog =
  (* an uncapped certification never answers [Unknown]: the pre-inlining
     estimate saturates far below this budget *)
  match Equiv.certify ?ctx ~size_budget:max_int polys prog with
  | Equiv.Verified -> true
  | Equiv.Refuted _ | Equiv.Unknown _ -> false
