module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Dag = Polysynth_expr.Dag
module Cost = Polysynth_hw.Cost

type objective = Min_area | Min_delay | Min_power | Min_ops

type options = {
  width : int;
  model : Cost.model;
  objective : objective;
  exhaustive_limit : int;
  sweeps : int;
  budget : (unit -> bool) option;
}

let default_options ~width =
  {
    width;
    model = Cost.default;
    objective = Min_area;
    exhaustive_limit = 4096;
    sweeps = 4;
    budget = None;
  }

type selection = {
  prog : Prog.t;
  labels : string list;
  cost : Cost.report;
  counts : Dag.counts;
  combinations_evaluated : int;
  exhaustive : bool;
  budget_exhausted : bool;
}

let prog_of_choice (r : Represent.t) choice =
  let outputs =
    List.mapi
      (fun i (rep : Represent.rep) ->
        (Printf.sprintf "P%d" (i + 1), rep.Represent.expr))
      choice
  in
  let used =
    List.concat_map (fun (_, e) -> Expr.vars e) outputs
    |> List.sort_uniq String.compare
  in
  let bindings =
    List.filter (fun (n, _) -> List.mem n used) (Blocktab.bindings r.Represent.table)
  in
  { Prog.bindings; outputs }

(* lexicographic objective key *)
let score_full options prog =
  let cost = Cost.of_prog ~model:options.model ~width:options.width prog in
  let counts = Prog.counts prog in
  let area = float_of_int cost.Cost.area in
  let ops = float_of_int (Dag.total_ops counts) in
  let key =
    match options.objective with
    | Min_area -> [| area; cost.Cost.delay; ops |]
    | Min_delay -> [| cost.Cost.delay; area; ops |]
    | Min_power ->
      let netlist = Polysynth_hw.Netlist.of_prog ~width:options.width prog in
      let power = Polysynth_hw.Power.estimate ~samples:16 netlist in
      [| power.Polysynth_hw.Power.total; area; ops |]
    | Min_ops -> [| ops; area; cost.Cost.delay |]
  in
  (key, cost, counts)

let score options prog =
  let key, _, _ = score_full options prog in
  key

let better (a, _, _) (b, _, _) = a < b

exception Budget_exhausted

let select options (r : Represent.t) =
  let reps = Array.map Array.of_list r.Represent.reps in
  let n = Array.length reps in
  let evaluated = ref 0 in
  let exhausted = ref false in
  (* the very first candidate is always evaluated, so budget exhaustion
     still leaves a complete (if unoptimized) selection to return *)
  let may_continue () =
    match options.budget with None -> true | Some ok -> ok ()
  in
  let eval choice_idx =
    incr evaluated;
    let choice =
      List.init n (fun i -> reps.(i).(choice_idx.(i)))
    in
    let prog = prog_of_choice r choice in
    (score_full options prog, prog, choice)
  in
  let total = Represent.num_combinations r in
  let exhaustive = total <= options.exhaustive_limit in
  let best = ref (eval (Array.make n 0)) in
  if n > 0 then begin
    if exhaustive then begin
      (* odometer over all combinations *)
      let idx = Array.make n 0 in
      let rec advance pos =
        if pos < n then begin
          if idx.(pos) + 1 < Array.length reps.(pos) then begin
            idx.(pos) <- idx.(pos) + 1;
            true
          end
          else begin
            idx.(pos) <- 0;
            advance (pos + 1)
          end
        end
        else false
      in
      let keep_going = ref (advance 0) in
      while !keep_going do
        if not (may_continue ()) then begin
          exhausted := true;
          keep_going := false
        end
        else begin
          let trial = eval idx in
          let (ts, _, _) = trial and (bs, _, _) = !best in
          if better ts bs then best := trial;
          keep_going := advance 0
        end
      done
    end
    else begin
      (* coordinate descent from the all-first choice: re-optimize one
         polynomial at a time against the sharing created by the others *)
      let idx = Array.make n 0 in
      let improved = ref true in
      let sweep = ref 0 in
      (try
         while !improved && !sweep < options.sweeps do
           improved := false;
           incr sweep;
           for i = 0 to n - 1 do
             let best_k = ref idx.(i) in
             for k = 0 to Array.length reps.(i) - 1 do
               if k <> !best_k then begin
                 if not (may_continue ()) then raise_notrace Budget_exhausted;
                 idx.(i) <- k;
                 let trial = eval idx in
                 let (ts, _, _) = trial and (bs, _, _) = !best in
                 if better ts bs then begin
                   best := trial;
                   best_k := k;
                   improved := true
                 end
               end
             done;
             (* [best] was last updated at idx.(i) = !best_k (or never for
                this position), so this restores the configuration it
                scored *)
             idx.(i) <- !best_k
           done
         done
       with Budget_exhausted -> exhausted := true)
    end
  end;
  let (_, cost, counts), prog, choice = !best in
  {
    prog;
    labels = List.map (fun (rep : Represent.rep) -> rep.Represent.label) choice;
    cost;
    counts;
    combinations_evaluated = !evaluated;
    exhaustive;
    budget_exhausted = !exhausted;
  }
