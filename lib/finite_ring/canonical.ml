module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial

type ctx = { out_width : int; var_widths : (string * int) list; lam : int }

let make_ctx ~out_width ?(var_widths = []) () =
  if out_width <= 0 then invalid_arg "Canonical.make_ctx: non-positive width";
  List.iter
    (fun (_, w) ->
      if w <= 0 then invalid_arg "Canonical.make_ctx: non-positive width")
    var_widths;
  { out_width; var_widths; lam = Smarandache.lambda out_width }

let out_width ctx = ctx.out_width

let var_width ctx v =
  match List.assoc_opt v ctx.var_widths with
  | Some w -> w
  | None -> ctx.out_width

let lambda ctx = ctx.lam

let mu ctx v =
  let n = var_width ctx v in
  if n >= 30 then ctx.lam else Stdlib.min (1 lsl n) ctx.lam

type falling = Poly.t

let falling_terms f = Poly.terms f
let falling_of_terms ts = Poly.of_terms ts

(* x^e = sum_{k=0..e} S2(e,k) Y_k(x); expand a power-basis term variable by
   variable, accumulating (coefficient, falling-monomial) pairs. *)
let to_falling p =
  let expand_term (c, m) =
    Monomial.fold
      (fun partial v e ->
        List.concat_map
          (fun (c0, m0) ->
            List.filter_map
              (fun k ->
                let s = Stirling.second e k in
                if Z.is_zero s then None
                else
                  let m' =
                    if k = 0 then m0
                    else Monomial.mul m0 (Monomial.var ~exp:k v)
                  in
                  Some (Z.mul c0 s, m'))
              (List.init (e + 1) Fun.id))
          partial)
      [ (c, Monomial.one) ]
      m
  in
  Poly.of_terms (List.concat_map expand_term (Poly.terms p))

(* Y_k(x) = sum_j s(k,j) x^j *)
let falling_factorial_poly v k =
  Poly.of_terms
    (List.filter_map
       (fun j ->
         let s = Stirling.first_signed k j in
         if Z.is_zero s then None
         else
           let m = if j = 0 then Monomial.one else Monomial.var ~exp:j v in
           Some (s, m))
       (List.init (k + 1) Fun.id))

let of_falling f =
  List.fold_left
    (fun acc (c, m) ->
      let product =
        Monomial.fold
          (fun acc v k -> Poly.mul acc (falling_factorial_poly v k))
          Poly.one m
      in
      Poly.add acc (Poly.mul_scalar c product))
    Poly.zero (falling_terms f)

let vanishing_term ctx m =
  List.exists (fun (v, k) -> k >= mu ctx v) (Monomial.to_list m)

let term_modulus ctx m =
  let pow_m = Z.pow2 ctx.out_width in
  let prod_fact =
    Monomial.fold (fun acc _ k -> Z.mul acc (Z.factorial k)) Z.one m in
  Z.divexact pow_m (Z.gcd pow_m prod_fact)

let canonicalize ctx p =
  let reduced =
    List.filter_map
      (fun (c, m) ->
        if vanishing_term ctx m then None
        else
          let c' = snd (Z.ediv_rem c (term_modulus ctx m)) in
          if Z.is_zero c' then None else Some (c', m))
      (falling_terms (to_falling p))
  in
  Poly.of_terms reduced

let canonical_poly ctx p = of_falling (canonicalize ctx p)

let equal_functions ctx p q = Poly.equal (canonicalize ctx p) (canonicalize ctx q)

let eval_mod ctx p env = Z.erem_pow2 (Poly.eval env p) ctx.out_width
