module Z = Polysynth_zint.Zint

(* Both families are memoized row by row; rows are small (degrees of
   datapath polynomials), so a growable table of rows is plenty.  The memo
   is process-global, so extension is serialized behind a mutex: canonical
   forms are computed from multiple domains by the parallel engine. *)

let table recurrence =
  let lock = Mutex.create () in
  let rows : Z.t array list ref = ref [ [| Z.one |] ] in
  (* row n has n+1 entries for k = 0..n *)
  fun n k ->
    if n < 0 || k < 0 then invalid_arg "Stirling: negative argument";
    if k > n then Z.zero
    else
      Mutex.protect lock (fun () ->
          let have = List.length !rows in
          if n >= have then
            for n' = have to n do
              let prev = List.nth !rows (n' - 1) in
              let row =
                Array.init (n' + 1) (fun k' ->
                    let up k = if k < 0 || k >= Array.length prev then Z.zero else prev.(k) in
                    recurrence n' k' up)
              in
              rows := !rows @ [ row ]
            done;
          (List.nth !rows n).(k))

let second =
  table (fun _n k up -> Z.add (Z.mul_int (up k) k) (up (k - 1)))

let first_signed =
  table (fun n k up -> Z.sub (up (k - 1)) (Z.mul_int (up k) (n - 1)))
