module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Expr = Polysynth_expr.Expr

type t = int

type node =
  | Leaf of Z.t
  | Node of { var : string; const : t; linear : t }
      (* value = const + var * linear, with linear <> leaf 0 *)

(* One manager may be shared by representation builders running on
   several domains (the parallel engine), so every public operation takes
   the manager lock; the recursive workers below it are lock-free. *)
type manager = {
  mutable nodes : node array;
  mutable len : int;
  memo : (node, t) Hashtbl.t;
  add_memo : (t * t, t) Hashtbl.t;
  mul_memo : (t * t, t) Hashtbl.t;
  mutable order : string list;  (* decomposition order, most significant first *)
  lock : Mutex.t;
}

let create ?(order = []) () =
  {
    nodes = Array.make 64 (Leaf Z.zero);
    len = 0;
    memo = Hashtbl.create 64;
    add_memo = Hashtbl.create 64;
    mul_memo = Hashtbl.create 64;
    order;
    lock = Mutex.create ();
  }

let node_of m i = m.nodes.(i)

let intern m n =
  match Hashtbl.find_opt m.memo n with
  | Some id -> id
  | None ->
    if m.len = Array.length m.nodes then begin
      let bigger = Array.make (2 * m.len) (Leaf Z.zero) in
      Array.blit m.nodes 0 bigger 0 m.len;
      m.nodes <- bigger
    end;
    let id = m.len in
    m.nodes.(id) <- n;
    m.len <- m.len + 1;
    Hashtbl.add m.memo n id;
    id

let leaf m c = intern m (Leaf c)
let zero m = leaf m Z.zero
let one m = leaf m Z.one

let mk_node m var const linear =
  if node_of m linear = Leaf Z.zero then const
  else intern m (Node { var; const; linear })

(* position of a variable in the decomposition order; unseen variables are
   appended (deterministically, at first use) *)
let var_rank m v =
  let rec find i = function
    | [] ->
      m.order <- m.order @ [ v ];
      i
    | v' :: rest -> if String.equal v v' then i else find (i + 1) rest
  in
  find 0 m.order

(* rank of a node's top variable; leaves sort last *)
let top_rank m i =
  match node_of m i with
  | Leaf _ -> max_int
  | Node { var; _ } -> var_rank m var

let rec add m a b =
  if a > b then add m b a
  else
    match Hashtbl.find_opt m.add_memo (a, b) with
    | Some r -> r
    | None ->
      let r =
        match node_of m a, node_of m b with
        | Leaf x, Leaf y -> leaf m (Z.add x y)
        | Node na, Node nb when String.equal na.var nb.var ->
          mk_node m na.var (add m na.const nb.const) (add m na.linear nb.linear)
        | Node na, _ when top_rank m a <= top_rank m b ->
          mk_node m na.var (add m na.const b) na.linear
        | _, Node nb -> mk_node m nb.var (add m nb.const a) nb.linear
        | Node _, Leaf _ -> assert false (* excluded by the rank guard *)
      in
      Hashtbl.replace m.add_memo (a, b) r;
      r

let rec mul m a b =
  if a > b then mul m b a
  else
    match Hashtbl.find_opt m.mul_memo (a, b) with
    | Some r -> r
    | None ->
      let r =
        match node_of m a, node_of m b with
        | Leaf x, Leaf y -> leaf m (Z.mul x y)
        | Leaf x, _ when Z.is_zero x -> a
        | _, Leaf y when Z.is_zero y -> b
        | Node na, Node nb when String.equal na.var nb.var ->
          (* (c_a + v l_a)(c_b + v l_b)
             = c_a c_b + v (c_a l_b + l_a c_b + v l_a l_b) *)
          let cc = mul m na.const nb.const in
          let cross = add m (mul m na.const nb.linear) (mul m na.linear nb.const) in
          let high = mk_node m na.var (zero m) (mul m na.linear nb.linear) in
          mk_node m na.var cc (add m cross high)
        | Node na, _ when top_rank m a <= top_rank m b ->
          mk_node m na.var (mul m na.const b) (mul m na.linear b)
        | _, Node nb ->
          mk_node m nb.var (mul m nb.const a) (mul m nb.linear a)
        | Node _, Leaf _ -> assert false (* excluded by the rank guard *)
      in
      Hashtbl.replace m.mul_memo (a, b) r;
      r

let neg m a = mul m (leaf m Z.minus_one) a

let of_poly m p =
  (* decompose along the manager's order, registering unseen variables
     first so ranks are stable *)
  List.iter (fun v -> ignore (var_rank m v)) (Poly.vars p);
  let rec build p =
    match Poly.to_const_opt p with
    | Some c -> leaf m c
    | None ->
      (* the present variable with the smallest rank *)
      let v =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some v
            | Some b -> if var_rank m v < var_rank m b then Some v else best)
          None (Poly.vars p)
        |> Option.get
      in
      let coeffs = Poly.coeffs_in v p in
      let c0 =
        match List.assoc_opt 0 coeffs with Some c -> c | None -> Poly.zero
      in
      let rest =
        Poly.of_coeffs_in v
          (List.filter_map
             (fun (k, c) -> if k = 0 then None else Some (k - 1, c))
             coeffs)
      in
      mk_node m v (build c0) (build rest)
  in
  build p

let rec to_poly m i =
  match node_of m i with
  | Leaf c -> Poly.const c
  | Node { var; const; linear } ->
    Poly.add (to_poly m const) (Poly.mul (Poly.var var) (to_poly m linear))

let equal (a : t) (b : t) = a = b

let num_nodes m = m.len

let decompose m root =
  let memo = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt memo i with
    | Some e -> e
    | None ->
      let e =
        match node_of m i with
        | Leaf c -> Expr.const c
        | Node { var; const; linear } ->
          Expr.add [ go const; Expr.mul [ Expr.var var; go linear ] ]
      in
      Hashtbl.replace memo i e;
      e
  in
  go root

(* ---- locked public API ------------------------------------------------
   Shadow the lock-free workers above with wrappers that serialize on the
   manager lock, so a manager can be shared across domains. *)

let locked m f = Mutex.protect m.lock f
let leaf m c = locked m (fun () -> leaf m c)
let zero m = locked m (fun () -> zero m)
let one m = locked m (fun () -> one m)
let add m a b = locked m (fun () -> add m a b)
let mul m a b = locked m (fun () -> mul m a b)
let neg m a = locked m (fun () -> neg m a)
let of_poly m p = locked m (fun () -> of_poly m p)
let to_poly m i = locked m (fun () -> to_poly m i)
let num_nodes m = locked m (fun () -> num_nodes m)
let decompose m root = locked m (fun () -> decompose m root)

let pp m fmt i = Poly.pp fmt (to_poly m i)
