(* Certificate-guarded netlist simplification.

   The pass consumes the per-cell facts of the reduced-product analysis
   ({!Absint.analyze_product}) and proposes local rewrites: constant
   folding, x+0 / x*1 / x*0 identities, 0-x -> -x, multiply-by-constant
   strength reduction (general multiplier -> Cmult, Cmult 2^k -> Shl,
   Cmult -1 -> Negate) and dead-cell elimination.

   Nothing is trusted: every candidate netlist is certified against the
   reference polynomial system by {!Equiv} under the ring context of the
   netlist's width before it replaces the original.  A rewrite batch that
   fails certification is retried one rewrite at a time, so a single
   unsound proposal (an analysis bug) is isolated and rejected while the
   sound ones still land.  The pass therefore cannot change semantics:
   its worst case is a netlist identical to its input. *)

module Z = Polysynth_zint.Zint
module Netlist = Polysynth_hw.Netlist
module Prog = Polysynth_expr.Prog
module Poly = Polysynth_poly.Poly
module Canonical = Polysynth_finite_ring.Canonical

type action =
  | Fold of Z.t  (** replace the cell by a constant *)
  | Forward of int  (** route the cell's users to another cell *)
  | Reop of Netlist.op * int list  (** change operator and fanin *)

type rewrite = { cell : int; action : action; reason : string }

let describe rw =
  let what =
    match rw.action with
    | Fold v -> Printf.sprintf "fold to constant %s" (Z.to_string v)
    | Forward j -> Printf.sprintf "forward to c%d" j
    | Reop (op, _) -> Printf.sprintf "rewrite to %s" (Netlist.op_to_string op)
  in
  Printf.sprintf "%s (%s)" what rw.reason

(* ---- proposing rewrites from facts -------------------------------------- *)

let propose ~facts (n : Netlist.t) =
  let width = n.Netlist.width in
  let cst i = Domains.Product.as_const ~width facts.(i) in
  let is_zero i = match cst i with Some c -> Z.is_zero c | None -> false in
  let rewrites = ref [] in
  let push cell action reason =
    rewrites := { cell; action; reason } :: !rewrites
  in
  (* multiply [cell] by the known constant [c] of one operand; [general]
     says the cell pays for a general multiplier today *)
  let strength cell ~general c operand =
    if Z.is_one c then push cell (Forward operand) "x * 1 = x"
    else if Z.equal c (Z.neg Z.one) then
      push cell (Reop (Netlist.Negate, [ operand ])) "x * -1 = -x"
    else
      match Domains.is_pow2 (Domains.clamp ~width c) with
      | Some k when k > 0 && k < width ->
        push cell
          (Reop (Netlist.Shl k, [ operand ]))
          (Printf.sprintf "x * %s = x << %d" (Z.to_string c) k)
      | _ ->
        if general then
          push cell
            (Reop (Netlist.Cmult c, [ operand ]))
            "multiplier with a constant operand"
  in
  Array.iter
    (fun (c : Netlist.cell) ->
      let arg k = List.nth c.fanin k in
      match c.op with
      | Netlist.Input _ | Netlist.Constant _ -> ()
      | _ -> (
        match cst c.id with
        | Some v ->
          push c.id (Fold v)
            (Printf.sprintf "cell always computes %s" (Z.to_string v))
        | None -> (
          match c.op with
          | Netlist.Add2 ->
            if is_zero (arg 0) then push c.id (Forward (arg 1)) "0 + x = x"
            else if is_zero (arg 1) then push c.id (Forward (arg 0)) "x + 0 = x"
          | Netlist.Sub2 ->
            if is_zero (arg 1) then push c.id (Forward (arg 0)) "x - 0 = x"
            else if is_zero (arg 0) then
              push c.id (Reop (Netlist.Negate, [ arg 1 ])) "0 - x = -x"
          | Netlist.Mult2 -> (
            match (cst (arg 0), cst (arg 1)) with
            | Some c0, _ -> strength c.id ~general:true c0 (arg 1)
            | _, Some c1 -> strength c.id ~general:true c1 (arg 0)
            | None, None -> ())
          | Netlist.Cmult k -> strength c.id ~general:false k (arg 0)
          | Netlist.Shl 0 -> push c.id (Forward (arg 0)) "x << 0 = x"
          | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate
          | Netlist.Shl _ ->
            ())))
    n.Netlist.cells;
  List.rev !rewrites

(* ---- unchecked application ---------------------------------------------- *)

(* Id-stable: every cell keeps its id (forwarded cells simply lose their
   users), so a rewrite list computed against the original netlist stays
   meaningful across repeated partial applications.  Dead cells are
   removed by the separate {!prune}. *)
let apply (n : Netlist.t) rewrites =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun rw ->
      if not (Hashtbl.mem tbl rw.cell) then Hashtbl.add tbl rw.cell rw.action)
    rewrites;
  let num = Array.length n.Netlist.cells in
  let rec root seen i =
    if i < 0 || i >= num || List.mem i seen then i
    else
      match Hashtbl.find_opt tbl i with
      | Some (Forward j) -> root (i :: seen) j
      | _ -> i
  in
  let root i = root [] i in
  let cells =
    Array.map
      (fun (c : Netlist.cell) ->
        match Hashtbl.find_opt tbl c.id with
        | Some (Fold v) ->
          {
            c with
            Netlist.op = Netlist.Constant (Domains.clamp ~width:n.Netlist.width v);
            fanin = [];
          }
        | Some (Reop (op, fanin)) ->
          { c with Netlist.op; fanin = List.map root fanin }
        | Some (Forward _) | None ->
          { c with Netlist.fanin = List.map root c.fanin })
      n.Netlist.cells
  in
  {
    n with
    Netlist.cells;
    outputs = List.map (fun (nm, i) -> (nm, root i)) n.Netlist.outputs;
  }

let prune (n : Netlist.t) =
  let num = Array.length n.Netlist.cells in
  let live = Array.make num false in
  let rec mark i =
    if i >= 0 && i < num && not live.(i) then begin
      live.(i) <- true;
      List.iter mark n.Netlist.cells.(i).fanin
    end
  in
  List.iter (fun (_, i) -> mark i) n.Netlist.outputs;
  let id_map = Array.make num (-1) in
  let cells = ref [] in
  let next = ref 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      if live.(c.id) then begin
        id_map.(c.id) <- !next;
        cells :=
          {
            c with
            Netlist.id = !next;
            fanin = List.map (fun j -> id_map.(j)) c.fanin;
          }
          :: !cells;
        incr next
      end)
    n.Netlist.cells;
  {
    n with
    Netlist.cells = Array.of_list (List.rev !cells);
    outputs = List.map (fun (nm, i) -> (nm, id_map.(i))) n.Netlist.outputs;
  }

(* ---- certification ------------------------------------------------------ *)

let certify_netlist ?(samples = 4) ?(size_budget = 100_000) ~polys
    (candidate : Netlist.t) =
  let prog = Netlist.to_prog candidate in
  (* Equiv matches output P{i+1} against the i-th polynomial *)
  let prog =
    {
      prog with
      Prog.outputs =
        List.mapi
          (fun i (_, e) -> (Printf.sprintf "P%d" (i + 1), e))
          prog.Prog.outputs;
    }
  in
  let ctx = Canonical.make_ctx ~out_width:candidate.Netlist.width () in
  Equiv.certify ~ctx ~samples ~size_budget polys prog

(* ---- the pass ----------------------------------------------------------- *)

type stats = {
  facts_computed : int;  (** cells whose product fact is strictly below top *)
  proposed : int;
  applied : int;
  rejected : int;
  certificates : int;  (** Equiv runs spent guarding the pass *)
  cells_before : int;
  cells_after : int;
}

type outcome = {
  netlist : Netlist.t;
  applied : rewrite list;
  rejected : (rewrite * Equiv.cert) list;
  skipped : string option;
      (** set when the pass bailed out before certifying anything *)
  stats : stats;
}

let cells_eliminated o = o.stats.cells_before - o.stats.cells_after

let run ?(samples = 4) ?(size_budget = 100_000) ?system ?facts
    (n : Netlist.t) =
  let width = n.Netlist.width in
  let facts =
    match facts with Some f -> f | None -> Absint.analyze_product n
  in
  let facts_computed =
    Array.fold_left
      (fun acc f ->
        if Domains.Product.leq (Domains.Product.top ~width) f then acc
        else acc + 1)
      0 facts
  in
  let rewrites = propose ~facts n in
  let cells_before = Netlist.num_cells n in
  let mk_stats ?(applied = 0) ?(rejected = 0) ?(certs = 0) final =
    {
      facts_computed;
      proposed = List.length rewrites;
      applied;
      rejected;
      certificates = certs;
      cells_before;
      cells_after = Netlist.num_cells final;
    }
  in
  (* reference polynomials in netlist-output order: the caller's source
     system when given, otherwise recovered from the netlist itself
     (guarded by the expansion estimate so we never blow up) *)
  let reference =
    match system with
    | Some sys -> (
      match
        List.map (fun (nm, _) -> List.assoc_opt nm sys) n.Netlist.outputs
      with
      | polys when List.for_all Option.is_some polys ->
        Ok (List.map Option.get polys)
      | _ -> Error "source system does not name every netlist output")
    | None ->
      let prog = Netlist.to_prog n in
      if Equiv.expansion_estimate prog > size_budget then
        Error "netlist too large to recover a reference system"
      else
        let polys = Prog.to_polys prog in
        Ok (List.map (fun (nm, _) -> List.assoc nm polys) n.Netlist.outputs)
  in
  match reference with
  | Error why ->
    {
      netlist = n;
      applied = [];
      rejected = List.map (fun rw -> (rw, Equiv.Unknown why)) rewrites;
      skipped = Some why;
      stats = mk_stats ~rejected:(List.length rewrites) n;
    }
  | Ok polys ->
    let certs = ref 0 in
    let attempt acc =
      let cand = prune (apply n acc) in
      incr certs;
      (cand, certify_netlist ~samples ~size_budget ~polys cand)
    in
    let finish ~applied ~rejected final =
      {
        netlist = final;
        applied;
        rejected;
        skipped = None;
        stats =
          mk_stats ~applied:(List.length applied)
            ~rejected:(List.length rejected) ~certs:!certs final;
      }
    in
    let pruned_only = prune (apply n []) in
    if rewrites = [] then
      if Netlist.num_cells pruned_only = cells_before then
        (* nothing to do; no certificate needed for the identity *)
        finish ~applied:[] ~rejected:[] n
      else begin
        (* dead cells only: still certify the pruned result *)
        incr certs;
        match certify_netlist ~samples ~size_budget ~polys pruned_only with
        | Equiv.Verified -> finish ~applied:[] ~rejected:[] pruned_only
        | _ -> finish ~applied:[] ~rejected:[] n
      end
    else begin
      (* whole batch first; on failure, re-grow one rewrite at a time so
         an unsound proposal is isolated while sound ones still land *)
      let cand, cert = attempt rewrites in
      match cert with
      | Equiv.Verified -> finish ~applied:rewrites ~rejected:[] cand
      | _ ->
        let acc, rejected =
          List.fold_left
            (fun (acc, rejected) rw ->
              match attempt (acc @ [ rw ]) with
              | _, Equiv.Verified -> (acc @ [ rw ], rejected)
              | _, c -> (acc, (rw, c) :: rejected))
            ([], []) rewrites
        in
        let final =
          if acc = [] then
            if Netlist.num_cells pruned_only = cells_before then n
            else begin
              incr certs;
              match
                certify_netlist ~samples ~size_budget ~polys pruned_only
              with
              | Equiv.Verified -> pruned_only
              | _ -> n
            end
          else prune (apply n acc)
        in
        finish ~applied:acc ~rejected:(List.rev rejected) final
    end

(* ---- diagnostics -------------------------------------------------------- *)

let diags_of_outcome ?(max_findings = 20) o =
  let take n l =
    let rec go k = function
      | x :: rest when k > 0 -> x :: go (k - 1) rest
      | _ -> []
    in
    go n l
  in
  let applied =
    List.map
      (fun rw -> Diag.info ~code:"simplify.rewrite" (Diag.Cell rw.cell) (describe rw))
      (take max_findings o.applied)
  in
  let rejected =
    List.map
      (fun (rw, cert) ->
        match cert with
        | Equiv.Refuted _ ->
          (* the certificate caught an unsound proposal: an analysis bug,
             contained but worth failing loudly over *)
          Diag.error ~code:"simplify.unsound" (Diag.Cell rw.cell)
            (Printf.sprintf "rewrite refuted by certificate: %s" (describe rw))
        | Equiv.Unknown why ->
          Diag.info ~code:"simplify.uncertified" (Diag.Cell rw.cell)
            (Printf.sprintf "rewrite not certified (%s): %s" why (describe rw))
        | Equiv.Verified ->
          Diag.info ~code:"simplify.rewrite" (Diag.Cell rw.cell) (describe rw))
      (take max_findings o.rejected)
  in
  let summary =
    let eliminated = cells_eliminated o in
    if eliminated > 0 || o.applied <> [] then
      [
        Diag.info ~code:"simplify.summary" Diag.Program
          (Printf.sprintf
             "%d rewrite(s) applied, %d cell(s) eliminated (%d -> %d)"
             (List.length o.applied) eliminated o.stats.cells_before
             o.stats.cells_after);
      ]
    else []
  in
  let skipped =
    match o.skipped with
    | Some why ->
      [ Diag.info ~code:"simplify.skipped" Diag.Program why ]
    | None -> []
  in
  skipped @ summary @ applied @ rejected
