module Z = Polysynth_zint.Zint

(* ---- the lattice signature -------------------------------------------- *)

module type DOMAIN = sig
  type t

  val name : string
  val bottom : t
  val is_bottom : t -> bool
  val top : width:int -> t
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val join : width:int -> t -> t -> t

  (* transfer functions, one per netlist operator *)
  val const : width:int -> Z.t -> t
  val input : width:int -> string -> t
  val neg : width:int -> t -> t
  val add : width:int -> t -> t -> t
  val sub : width:int -> t -> t -> t
  val mul : width:int -> t -> t -> t
  val cmul : width:int -> Z.t -> t -> t
  val shl : width:int -> int -> t -> t

  (* queries *)
  val as_const : width:int -> t -> Z.t option
  val contains : width:int -> t -> Z.t -> bool
  val to_string : t -> string
end

let clamp ~width v = Z.erem_pow2 v width

let is_pow2 c =
  if Z.sign c <= 0 then None
  else
    let k = Z.val2 c in
    if Z.equal c (Z.pow2 k) then Some k else None

(* ---- exact integer intervals (pre-wrap-around) -------------------------- *)

(* The domain behind the width lint: the reachable interval of each cell
   over Z, before any truncation.  It deliberately ignores the datapath
   wrap, mirroring {!Polysynth_hw.Range}: its concretization is the value
   of the cell under exact integer evaluation of the DAG. *)
module Int_interval = struct
  type t = Bot | Iv of Z.t * Z.t

  let name = "int-interval"
  let bottom = Bot
  let is_bottom t = t = Bot
  let top ~width = Iv (Z.zero, Z.sub (Z.pow2 width) Z.one)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Iv (l1, h1), Iv (l2, h2) -> Z.equal l1 l2 && Z.equal h1 h2
    | _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Iv (l1, h1), Iv (l2, h2) -> Z.compare l2 l1 <= 0 && Z.compare h1 h2 <= 0

  let join ~width:_ a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv (l1, h1), Iv (l2, h2) -> Iv (Z.min l1 l2, Z.max h1 h2)

  let const ~width:_ c = Iv (c, c)
  let input ~width _ = top ~width

  let lift1 f = function Bot -> Bot | Iv (l, h) -> f l h

  let lift2 f a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) -> f l1 h1 l2 h2

  let neg ~width:_ = lift1 (fun l h -> Iv (Z.neg h, Z.neg l))
  let add ~width:_ = lift2 (fun l1 h1 l2 h2 -> Iv (Z.add l1 l2, Z.add h1 h2))
  let sub ~width:_ = lift2 (fun l1 h1 l2 h2 -> Iv (Z.sub l1 h2, Z.sub h1 l2))

  let mul_bounds l1 h1 l2 h2 =
    let products = [ Z.mul l1 l2; Z.mul l1 h2; Z.mul h1 l2; Z.mul h1 h2 ] in
    Iv
      ( List.fold_left Z.min (List.hd products) (List.tl products),
        List.fold_left Z.max (List.hd products) (List.tl products) )

  let mul ~width:_ = lift2 mul_bounds
  let cmul ~width:_ c = lift1 (fun l h -> mul_bounds c c l h)
  let shl ~width:_ k = lift1 (fun l h -> mul_bounds (Z.pow2 k) (Z.pow2 k) l h)

  let as_const ~width:_ = function
    | Iv (l, h) when Z.equal l h -> Some l
    | _ -> None

  let contains ~width:_ t v =
    match t with
    | Bot -> false
    | Iv (l, h) -> Z.compare l v <= 0 && Z.compare v h <= 0

  let range = function Bot -> None | Iv (l, h) -> Some (l, h)

  let of_bounds ~lo ~hi = if Z.compare lo hi > 0 then Bot else Iv (lo, hi)

  let to_string = function
    | Bot -> "bot"
    | Iv (l, h) ->
      if Z.equal l h then Z.to_string l
      else Printf.sprintf "[%s, %s]" (Z.to_string l) (Z.to_string h)
end

(* ---- wrap-aware intervals over Z_2^m ------------------------------------ *)

(* Values live in [0, 2^w).  Each transfer computes the exact integer
   interval and re-normalizes: a result spanning at least 2^w values is
   top, otherwise both ends wrap; an interval whose wrapped ends cross the
   zero boundary is widened to top rather than split. *)
module Interval = struct
  type t = Bot | Iv of Z.t * Z.t  (* 0 <= lo <= hi < 2^w *)

  let name = "interval"
  let bottom = Bot
  let is_bottom t = t = Bot
  let top ~width = Iv (Z.zero, Z.sub (Z.pow2 width) Z.one)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Iv (l1, h1), Iv (l2, h2) -> Z.equal l1 l2 && Z.equal h1 h2
    | _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Iv (l1, h1), Iv (l2, h2) -> Z.compare l2 l1 <= 0 && Z.compare h1 h2 <= 0

  let join ~width:_ a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv (l1, h1), Iv (l2, h2) -> Iv (Z.min l1 l2, Z.max h1 h2)

  (* normalize an exact integer interval into the wrapped lattice *)
  let of_exact ~width lo hi =
    if Z.compare (Z.sub hi lo) (Z.sub (Z.pow2 width) Z.one) >= 0 then
      top ~width
    else
      let lo' = clamp ~width lo and hi' = clamp ~width hi in
      if Z.compare lo' hi' <= 0 then Iv (lo', hi') else top ~width

  let const ~width c = Iv (clamp ~width c, clamp ~width c)
  let input ~width _ = top ~width

  let lift1 ~width f = function
    | Bot -> Bot
    | Iv (l, h) ->
      let lo, hi = f l h in
      of_exact ~width lo hi

  let lift2 ~width f a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
      let lo, hi = f l1 h1 l2 h2 in
      of_exact ~width lo hi

  let neg ~width = lift1 ~width (fun l h -> (Z.neg h, Z.neg l))

  (* operands are non-negative, so the product bounds are the corner
     products *)
  let mul_bounds l1 h1 l2 h2 =
    let products = [ Z.mul l1 l2; Z.mul l1 h2; Z.mul h1 l2; Z.mul h1 h2 ] in
    ( List.fold_left Z.min (List.hd products) (List.tl products),
      List.fold_left Z.max (List.hd products) (List.tl products) )

  let add ~width = lift2 ~width (fun l1 h1 l2 h2 -> (Z.add l1 l2, Z.add h1 h2))
  let sub ~width = lift2 ~width (fun l1 h1 l2 h2 -> (Z.sub l1 h2, Z.sub h1 l2))
  let mul ~width = lift2 ~width mul_bounds
  let cmul ~width c = lift1 ~width (fun l h -> mul_bounds c c l h)
  let shl ~width k = lift1 ~width (fun l h -> mul_bounds (Z.pow2 k) (Z.pow2 k) l h)

  let as_const ~width:_ = function
    | Iv (l, h) when Z.equal l h -> Some l
    | _ -> None

  let contains ~width:_ t v =
    match t with
    | Bot -> false
    | Iv (l, h) -> Z.compare l v <= 0 && Z.compare v h <= 0

  let to_string = function
    | Bot -> "bot"
    | Iv (l, h) ->
      if Z.equal l h then Z.to_string l
      else Printf.sprintf "[%s, %s]" (Z.to_string l) (Z.to_string h)
end

(* ---- known bits ---------------------------------------------------------- *)

(* Per-bit three-valued facts: bit i is known 0, known 1, or unknown.
   Addition and subtraction propagate carries through a three-valued full
   adder; multiplication tracks known trailing zeros (and the first odd
   bit), which subsumes the parity domain. *)
module Known_bits = struct
  (* bits.(i) is the fact for bit i (LSB first): 0, 1, or 2 = unknown *)
  type t = Bot | Bits of int array

  let name = "known-bits"
  let bottom = Bot
  let is_bottom t = t = Bot
  let top ~width = Bits (Array.make width 2)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Bits x, Bits y -> x = y
    | _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Bits x, Bits y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun bx by -> by = 2 || bx = by) x y

  let join ~width:_ a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Bits x, Bits y ->
      Bits (Array.map2 (fun bx by -> if bx = by then bx else 2) x y)

  let bits_of ~width v =
    let arr = Array.make width 0 in
    let rec go i v =
      if i < width then begin
        let q, r = Z.divmod v Z.two in
        arr.(i) <- Z.to_int_exn r;
        go (i + 1) q
      end
    in
    go 0 (clamp ~width v);
    Bits arr

  let const = bits_of
  let input ~width _ = top ~width

  let assemble arr =
    let acc = ref Z.zero in
    for i = Array.length arr - 1 downto 0 do
      acc := Z.add (Z.mul Z.two !acc) (Z.of_int arr.(i))
    done;
    !acc

  let as_const ~width:_ = function
    | Bits arr when Array.for_all (fun b -> b <> 2) arr -> Some (assemble arr)
    | _ -> None

  (* three-valued ripple carry: at each position the three incoming bits
     (a, b, carry) sum to a total whose known part is [lo..lo+unknowns];
     the sum bit is known only when nothing is unknown, the carry whenever
     every possible total lands on the same side of 2 *)
  let ripple ~width xa xb carry0 =
    let out = Array.make width 2 in
    let carry = ref carry0 in
    for i = 0 to width - 1 do
      let parts = [ xa.(i); xb.(i); !carry ] in
      let lo = List.fold_left (fun acc b -> if b = 1 then acc + 1 else acc) 0 parts in
      let unknowns = List.length (List.filter (fun b -> b = 2) parts) in
      let hi = lo + unknowns in
      out.(i) <- (if unknowns = 0 then lo land 1 else 2);
      carry := (if lo >= 2 then 1 else if hi < 2 then 0 else 2)
    done;
    Bits out

  let complement arr = Array.map (fun b -> match b with 0 -> 1 | 1 -> 0 | _ -> 2) arr

  let add ~width a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Bits xa, Bits xb -> ripple ~width xa xb 0

  let sub ~width a b =
    (* a - b = a + ~b + 1 in two's complement *)
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Bits xa, Bits xb -> ripple ~width xa (complement xb) 1

  let neg ~width a = sub ~width (const ~width Z.zero) a

  (* number of low bits known to be zero; [width] when the value is the
     constant zero *)
  let trailing_zeros arr =
    let n = Array.length arr in
    let rec go i = if i < n && arr.(i) = 0 then go (i + 1) else i in
    go 0

  let mul ~width a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Bits xa, Bits xb -> (
      match (as_const ~width a, as_const ~width b) with
      | Some ca, Some cb -> const ~width (Z.mul ca cb)
      | Some c, _ when Z.is_one c -> b
      | _, Some c when Z.is_one c -> a
      | _ ->
        let ta = trailing_zeros xa and tb = trailing_zeros xb in
        if ta + tb >= width then const ~width Z.zero
        else begin
          let out = Array.make width 2 in
          for i = 0 to ta + tb - 1 do
            out.(i) <- 0
          done;
          (* odd * odd is odd, shifted up by the known zero runs *)
          if ta < width && tb < width && xa.(ta) = 1 && xb.(tb) = 1 then
            out.(ta + tb) <- 1;
          Bits out
        end)

  let cmul ~width c a = mul ~width (const ~width c) a

  let shl ~width k a =
    match a with
    | Bot -> Bot
    | Bits x ->
      Bits
        (Array.init width (fun i ->
             if i < k then 0
             else if i - k < Array.length x then x.(i - k)
             else 0))

  let contains ~width t v =
    match t with
    | Bot -> false
    | Bits arr -> (
      match bits_of ~width v with
      | Bits vb ->
        Array.for_all2 (fun fact bit -> fact = 2 || fact = bit) arr vb
      | Bot -> false)

  let to_string = function
    | Bot -> "bot"
    | Bits arr ->
      let buf = Buffer.create (Array.length arr) in
      for i = Array.length arr - 1 downto 0 do
        Buffer.add_char buf
          (match arr.(i) with 0 -> '0' | 1 -> '1' | _ -> '.')
      done;
      Buffer.contents buf
end

(* ---- congruence: value = r (mod 2^k) ------------------------------------ *)

module Congruence = struct
  (* [Cong (k, r)] with [0 <= r < 2^k] and [0 <= k <= width]; [k = 0] is
     top, [k = width] pins the value exactly *)
  type t = Bot | Cong of int * Z.t

  let name = "congruence"
  let bottom = Bot
  let is_bottom t = t = Bot
  let top ~width:_ = Cong (0, Z.zero)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Cong (k1, r1), Cong (k2, r2) -> k1 = k2 && Z.equal r1 r2
    | _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | Cong (k1, r1), Cong (k2, r2) ->
      k1 >= k2 && Z.equal (Z.erem_pow2 r1 k2) r2

  let join ~width:_ a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Cong (k1, r1), Cong (k2, r2) ->
      let k = Stdlib.min k1 k2 in
      let r1' = Z.erem_pow2 r1 k and r2' = Z.erem_pow2 r2 k in
      let k =
        if Z.equal r1' r2' then k else Stdlib.min k (Z.val2 (Z.sub r1' r2'))
      in
      Cong (k, Z.erem_pow2 r1 k)

  let const ~width c = Cong (width, clamp ~width c)
  let input ~width t = ignore t; top ~width

  let lift2 ~width f a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Cong (k1, r1), Cong (k2, r2) ->
      let k, r = f k1 r1 k2 r2 in
      let k = Stdlib.min k width in
      Cong (k, Z.erem_pow2 r k)

  let add ~width = lift2 ~width (fun k1 r1 k2 r2 -> (Stdlib.min k1 k2, Z.add r1 r2))
  let sub ~width = lift2 ~width (fun k1 r1 k2 r2 -> (Stdlib.min k1 k2, Z.sub r1 r2))

  let neg ~width:_ = function
    | Bot -> Bot
    | Cong (k, r) -> Cong (k, Z.erem_pow2 (Z.neg r) k)

  (* a = r1 + s*2^k1, b = r2 + t*2^k2 gives a*b = r1*r2 modulo
     2^min(k1 + v2(r2), k2 + v2(r1)): each cross term carries the factor's
     residue 2-adic valuation on top of the other's modulus *)
  let mul ~width =
    lift2 ~width (fun k1 r1 k2 r2 ->
        let t1 = if Z.is_zero r1 then k1 else Stdlib.min k1 (Z.val2 r1) in
        let t2 = if Z.is_zero r2 then k2 else Stdlib.min k2 (Z.val2 r2) in
        (Stdlib.min (k1 + t2) (k2 + t1), Z.mul r1 r2))

  let cmul ~width c a = mul ~width (const ~width c) a

  let shl ~width k = function
    | Bot -> Bot
    | Cong (ka, r) ->
      let k' = Stdlib.min width (ka + k) in
      Cong (k', Z.erem_pow2 (Z.mul (Z.pow2 k) r) k')

  let as_const ~width t =
    match t with
    | Cong (k, r) when k >= width -> Some r
    | _ -> None

  let contains ~width t v =
    match t with
    | Bot -> false
    | Cong (k, r) ->
      let k = Stdlib.min k width in
      Z.equal (Z.erem_pow2 v k) (Z.erem_pow2 r k)

  let to_string = function
    | Bot -> "bot"
    | Cong (0, _) -> "top"
    | Cong (k, r) -> Printf.sprintf "%s mod 2^%d" (Z.to_string r) k
end

(* ---- reduced product ----------------------------------------------------- *)

(* The three wrap-aware domains running in lockstep, with information
   exchanged after every transfer: a constant discovered by any factor is
   pushed into the others, the congruence's pinned low bits flow into the
   known-bits vector, and the known-bits vector's trailing known run flows
   back into the congruence.  A contradiction between factors collapses to
   bottom.  Reduction only ever tightens components, so each component
   stays at or below the fact the factor would compute on its own. *)
module Product = struct
  type t =
    | Bot
    | P of { iv : Interval.t; kb : Known_bits.t; cg : Congruence.t }

  let name = "product"
  let bottom = Bot
  let is_bottom t = t = Bot

  let top ~width =
    P { iv = Interval.top ~width; kb = Known_bits.top ~width; cg = Congruence.top ~width }

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | P x, P y ->
      Interval.equal x.iv y.iv && Known_bits.equal x.kb y.kb
      && Congruence.equal x.cg y.cg
    | _ -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | _, Bot -> false
    | P x, P y ->
      Interval.leq x.iv y.iv && Known_bits.leq x.kb y.kb
      && Congruence.leq x.cg y.cg

  let interval t = match t with Bot -> Interval.Bot | P x -> x.iv
  let known_bits t = match t with Bot -> Known_bits.Bot | P x -> x.kb
  let congruence t = match t with Bot -> Congruence.Bot | P x -> x.cg

  let mk_const ~width c =
    P
      {
        iv = Interval.const ~width c;
        kb = Known_bits.const ~width c;
        cg = Congruence.const ~width c;
      }

  let as_const ~width = function
    | Bot -> None
    | P x -> (
      match Interval.as_const ~width x.iv with
      | Some c -> Some c
      | None -> (
        match Known_bits.as_const ~width x.kb with
        | Some c -> Some c
        | None -> Congruence.as_const ~width x.cg))

  let contains ~width t v =
    match t with
    | Bot -> false
    | P x ->
      let v = clamp ~width v in
      Interval.contains ~width x.iv v
      && Known_bits.contains ~width x.kb v
      && Congruence.contains ~width x.cg v

  (* one reduction step; returns [Bot] on contradiction *)
  let reduce_once ~width t =
    match t with
    | Bot -> Bot
    | P { iv; kb; cg } -> (
      if
        Interval.is_bottom iv || Known_bits.is_bottom kb
        || Congruence.is_bottom cg
      then Bot
      else
        (* a constant pinned by any factor pins them all *)
        match as_const ~width t with
        | Some c -> if contains ~width t c then mk_const ~width c else Bot
        | None -> (
          (* congruence low bits -> known bits *)
          let kb_bits =
            match kb with Known_bits.Bits arr -> Some (Array.copy arr) | _ -> None
          in
          match (kb_bits, cg) with
          | Some arr, Congruence.Cong (k, r) -> (
            let conflict = ref false in
            (match Known_bits.const ~width r with
             | Known_bits.Bits rbits ->
               for i = 0 to Stdlib.min k width - 1 do
                 if arr.(i) = 2 then arr.(i) <- rbits.(i)
                 else if arr.(i) <> rbits.(i) then conflict := true
               done
             | Known_bits.Bot -> conflict := true);
            if !conflict then Bot
            else
              (* known-bits trailing run -> congruence *)
              let run =
                let rec go i = if i < width && arr.(i) <> 2 then go (i + 1) else i in
                go 0
              in
              let cg' =
                if run > k then
                  Congruence.Cong
                    (run, Known_bits.assemble (Array.sub arr 0 run))
                else cg
              in
              P { iv; kb = Known_bits.Bits arr; cg = cg' })
          | _ -> P { iv; kb; cg }))

  let reduce ~width t =
    (* two rounds reach the local fixpoint of the exchanges above: the
       second pass re-checks constancy after bits were merged *)
    reduce_once ~width (reduce_once ~width t)

  let lift2 ~width fiv fkb fcg a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | P x, P y ->
      reduce ~width
        (P
           {
             iv = fiv ~width x.iv y.iv;
             kb = fkb ~width x.kb y.kb;
             cg = fcg ~width x.cg y.cg;
           })

  let lift1 ~width fiv fkb fcg a =
    match a with
    | Bot -> Bot
    | P x ->
      reduce ~width
        (P { iv = fiv ~width x.iv; kb = fkb ~width x.kb; cg = fcg ~width x.cg })

  (* unlike the transfer functions, join is not strict: bottom is its
     identity, so it cannot go through [lift2] *)
  let join ~width a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | P _, P _ ->
      lift2 ~width Interval.join Known_bits.join Congruence.join a b
  let const ~width c = mk_const ~width (clamp ~width c)
  let input ~width _ = top ~width
  let neg ~width = lift1 ~width Interval.neg Known_bits.neg Congruence.neg
  let add ~width = lift2 ~width Interval.add Known_bits.add Congruence.add
  let sub ~width = lift2 ~width Interval.sub Known_bits.sub Congruence.sub
  let mul ~width = lift2 ~width Interval.mul Known_bits.mul Congruence.mul

  let cmul ~width c =
    lift1 ~width
      (fun ~width iv -> Interval.cmul ~width c iv)
      (fun ~width kb -> Known_bits.cmul ~width c kb)
      (fun ~width cg -> Congruence.cmul ~width c cg)

  let shl ~width k =
    lift1 ~width
      (fun ~width iv -> Interval.shl ~width k iv)
      (fun ~width kb -> Known_bits.shl ~width k kb)
      (fun ~width cg -> Congruence.shl ~width k cg)

  let to_string = function
    | Bot -> "bot"
    | P { iv; kb; cg } ->
      Printf.sprintf "%s  bits=%s  %s" (Interval.to_string iv)
        (Known_bits.to_string kb) (Congruence.to_string cg)
end
