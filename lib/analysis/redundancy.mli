(** Redundancy lint: structural waste a decomposition or netlist carries.

    Nothing here affects correctness — these are quality findings, which is
    why every code in this pass is [Warning] or [Info].  Duplicate detection
    works up to representatives: a binding whose right-hand side matches an
    earlier binding {e after} rewriting every known duplicate to its first
    occurrence is itself flagged, so chains of copies collapse to one
    finding per copy. *)

module Prog := Polysynth_expr.Prog
module Netlist := Polysynth_hw.Netlist

val lint_prog : Prog.t -> Diag.t list
(** Codes: [lint.duplicate-binding] (warning — same value as an earlier
    temporary), [lint.single-use] (info — temporary referenced exactly
    once; inlining it would lose nothing), [lint.trivial-binding] (info —
    the right-hand side is a bare constant or variable). *)

val lint_netlist : Netlist.t -> Diag.t list
(** Codes: [lint.duplicate-cell] (warning — same operator and fanin as an
    earlier cell), [lint.dead-cell] (warning — not reachable from any
    output), [lint.trivial-cell] (info — multiplication by 0 or 1, or a
    shift by 0). *)
