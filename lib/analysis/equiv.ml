module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly
module Monomial = Polysynth_poly.Monomial
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Canonical = Polysynth_finite_ring.Canonical

type counterexample = {
  output : string;
  point : (string * Z.t) list;
  expected : Z.t;
  got : Z.t option;
}

type cert = Verified | Refuted of counterexample | Unknown of string

let cert_label = function
  | Verified -> "verified"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let point_to_string point =
  match point with
  | [] -> "the empty assignment"
  | _ ->
    String.concat ", "
      (List.map (fun (v, x) -> Printf.sprintf "%s=%s" v (Z.to_string x)) point)

let cert_to_string = function
  | Verified -> "verified"
  | Refuted ce ->
    Printf.sprintf "refuted: at %s, %s expects %s but the program computes %s"
      (point_to_string ce.point) ce.output (Z.to_string ce.expected)
      (match ce.got with Some g -> Z.to_string g | None -> "nothing (missing)")
  | Unknown reason -> "unknown: " ^ reason

let pp_cert fmt c = Format.pp_print_string fmt (cert_to_string c)

let cert_to_json = function
  | Verified -> {|{"status":"verified"}|}
  | Refuted ce ->
    Printf.sprintf
      {|{"status":"refuted","counterexample":{"output":%s,"point":{%s},"expected":%s,"got":%s}}|}
      (Diag.json_string ce.output)
      (String.concat ","
         (List.map
            (fun (v, x) ->
              Printf.sprintf "%s:%s" (Diag.json_string v)
                (Diag.json_string (Z.to_string x)))
            ce.point))
      (Diag.json_string (Z.to_string ce.expected))
      (match ce.got with
       | Some g -> Diag.json_string (Z.to_string g)
       | None -> "null")
  | Unknown reason ->
    Printf.sprintf {|{"status":"unknown","reason":%s}|}
      (Diag.json_string reason)

(* ---- deterministic sampling ------------------------------------------- *)

(* xorshift, seeded per call: certificates must be reproducible *)
type rng = { mutable state : int }

let make_rng seed = { state = (seed * 2654435761) lor 1 }

let next rng bound =
  let s = rng.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  rng.state <- s land max_int;
  if bound <= 0 then 0 else rng.state mod bound

let rand_bits rng bits =
  (* uniform in [0, 2^bits), assembled 16 bits at a time *)
  let rec go acc remaining =
    if remaining <= 0 then acc
    else
      let chunk = Stdlib.min remaining 16 in
      go
        (Z.add (Z.mul (Z.pow2 chunk) acc) (Z.of_int (next rng (1 lsl chunk))))
        (remaining - chunk)
  in
  go Z.zero bits

(* ---- shared helpers --------------------------------------------------- *)

let output_name i = Printf.sprintf "P%d" (i + 1)

let system_vars polys prog =
  let bound = List.map fst prog.Prog.bindings in
  let prog_vars =
    List.concat_map (fun (_, e) -> Expr.vars e)
      (prog.Prog.bindings @ prog.Prog.outputs)
    |> List.filter (fun v -> not (List.mem v bound))
  in
  List.sort_uniq String.compare (List.concat_map Poly.vars polys @ prog_vars)

let env_of point v =
  match List.assoc_opt v point with Some x -> x | None -> Z.zero

(* Upper bound on the number of terms each output would expand to,
   saturating well below [max_int]: the guard that keeps the symbolic
   decision from blowing up on adversarial inputs. *)
let expansion_estimate prog =
  let cap = 1_000_000_000 in
  let sat_add a b = if a >= cap - b then cap else a + b in
  let sat_mul a b =
    if a = 0 || b = 0 then 0 else if a >= cap / b then cap else a * b
  in
  let sat_pow a k =
    let rec go acc k = if k <= 0 then acc else go (sat_mul acc a) (k - 1) in
    go 1 k
  in
  let binding_terms = Hashtbl.create 16 in
  let rec terms e =
    match (e : Expr.t) with
    | Expr.Const _ -> 1
    | Expr.Var v ->
      (match Hashtbl.find_opt binding_terms v with Some n -> n | None -> 1)
    | Expr.Neg e -> terms e
    | Expr.Add es -> List.fold_left (fun acc e -> sat_add acc (terms e)) 0 es
    | Expr.Mul es -> List.fold_left (fun acc e -> sat_mul acc (terms e)) 1 es
    | Expr.Pow (e, k) -> sat_pow (terms e) k
  in
  List.iter
    (fun (name, e) -> Hashtbl.replace binding_terms name (terms e))
    prog.Prog.bindings;
  List.fold_left
    (fun acc (_, e) -> sat_add acc (terms e))
    0 prog.Prog.outputs

(* ---- random pre-filter ------------------------------------------------ *)

let sample_point ?ctx rng vars =
  List.map
    (fun v ->
      let bits = match ctx with Some ctx -> Canonical.var_width ctx v | None -> 16 in
      (v, rand_bits rng bits))
    vars

let prefilter ?ctx ~samples polys prog =
  let vars = system_vars polys prog in
  let rng = make_rng 0x5eed in
  let reduce z =
    match ctx with
    | Some ctx -> Z.erem_pow2 z (Canonical.out_width ctx)
    | None -> z
  in
  let rec round s =
    if s >= samples then None
    else begin
      let point = sample_point ?ctx rng vars in
      let env = env_of point in
      let produced = Prog.eval prog env in
      let rec check i = function
        | [] -> None
        | p :: rest ->
          let name = output_name i in
          let expected =
            match ctx with
            | Some ctx -> Canonical.eval_mod ctx p env
            | None -> Poly.eval env p
          in
          (match List.assoc_opt name produced with
           | None -> Some { output = name; point; expected; got = None }
           | Some got ->
             let got = reduce got in
             if Z.equal got expected then check (i + 1) rest
             else Some { output = name; point; expected; got = Some got })
      in
      match check 0 polys with
      | Some ce -> Some ce
      | None -> round (s + 1)
    end
  in
  round 0

(* ---- constructive witnesses ------------------------------------------- *)

(* Over Z_2^m the canonical form of the difference yields a guaranteed
   counterexample: take a falling term [c * Y_k1(x_1)...Y_kd(x_d)] of
   minimal total degree and evaluate at [x_i = k_i].  Every other term has
   some exponent above [k_i] there (a lower or incomparable term would
   contradict minimality), so it vanishes, and [c * prod k_i!] is nonzero
   modulo [2^m] because [0 < c < 2^m / gcd(2^m, prod k_i!)]. *)
let ring_witness ctx p q =
  let d = Poly.sub p q in
  let f = Canonical.canonicalize ctx d in
  match Canonical.falling_terms f with
  | [] -> None (* equal as functions after all *)
  | first :: rest ->
    let _, witness_mono =
      List.fold_left
        (fun ((best_deg, _) as best) (_, m) ->
          let deg = Monomial.degree m in
          if deg < best_deg then (deg, m) else best)
        (Monomial.degree (snd first), snd first)
        rest
    in
    let point =
      List.map (fun (v, k) -> (v, Z.of_int k)) (Monomial.to_list witness_mono)
    in
    let expected = Canonical.eval_mod ctx p (env_of point) in
    Some (point, expected)

(* Over Z a nonzero difference polynomial is refuted by sampling: by
   Schwartz-Zippel a random point from a range much larger than the degree
   is a witness with overwhelming probability. *)
let exact_witness rng d =
  let vars = Poly.vars d in
  let rec go attempts =
    if attempts >= 64 then None
    else
      let point = List.map (fun v -> (v, rand_bits rng 20)) vars in
      if Z.is_zero (Poly.eval (env_of point) d) then go (attempts + 1)
      else Some point
  in
  (* the origin first: off-by-constant faults are refuted at zero *)
  if not (Z.is_zero (Poly.eval (fun _ -> Z.zero) d)) then Some []
  else go 0

(* ---- the decision procedure ------------------------------------------- *)

let certify ?ctx ?(samples = 8) ?(size_budget = 100_000) polys prog =
  match prefilter ?ctx ~samples polys prog with
  | Some ce -> Refuted ce
  | None ->
    let estimate = expansion_estimate prog in
    if estimate > size_budget then
      Unknown
        (Printf.sprintf
           "symbolic expansion estimated at %s terms exceeds the budget of \
            %d; %d random samples passed"
           (if estimate >= 1_000_000_000 then ">= 10^9"
            else string_of_int estimate)
           size_budget samples)
    else begin
      let produced = Prog.to_polys prog in
      let prog_at point name =
        List.assoc_opt name (Prog.eval prog (env_of point))
      in
      let rng = make_rng 0x817 in
      let rec check i = function
        | [] -> Verified
        | p :: rest ->
          let name = output_name i in
          (match List.assoc_opt name produced with
           | None ->
             let expected =
               match ctx with
               | Some ctx -> Canonical.eval_mod ctx p (fun _ -> Z.zero)
               | None -> Poly.eval (fun _ -> Z.zero) p
             in
             Refuted { output = name; point = []; expected; got = None }
           | Some q ->
             let equal =
               match ctx with
               | Some ctx -> Canonical.equal_functions ctx p q
               | None -> Poly.equal p q
             in
             if equal then check (i + 1) rest
             else
               let witness =
                 match ctx with
                 | Some ctx -> (
                     match ring_witness ctx p q with
                     | Some (point, expected) ->
                       let m = Canonical.out_width ctx in
                       let got =
                         Option.map
                           (fun g -> Z.erem_pow2 g m)
                           (prog_at point name)
                       in
                       Some (point, expected, got)
                     | None -> None)
                 | None -> (
                     match exact_witness rng (Poly.sub p q) with
                     | Some point ->
                       Some
                         ( point,
                           Poly.eval (env_of point) p,
                           prog_at point name )
                     | None -> None)
               in
               (match witness with
                | Some (point, expected, got) ->
                  Refuted { output = name; point; expected; got }
                | None ->
                  Unknown
                    (Printf.sprintf
                       "%s differs symbolically but no witness point was \
                        constructed"
                       name)))
      in
      check 0 polys
    end

(* ---- netlist spot checks ---------------------------------------------- *)

let spot_check_netlist ?(seed = 1) ?(samples = 5) ?outputs polys
    (n : Netlist.t) =
  let named =
    match outputs with
    | Some l -> l
    | None -> List.mapi (fun i p -> (output_name i, p)) polys
  in
  let width = n.Netlist.width in
  let vars =
    List.sort_uniq String.compare
      (Netlist.inputs n @ List.concat_map (fun (_, p) -> Poly.vars p) named)
  in
  let rng = make_rng seed in
  let rec round s =
    if s >= samples then Ok ()
    else begin
      let point = List.map (fun v -> (v, rand_bits rng width)) vars in
      let env = env_of point in
      let results = Netlist.eval n env in
      let rec check = function
        | [] -> round (s + 1)
        | (name, p) :: rest ->
          let expected = Z.erem_pow2 (Poly.eval env p) width in
          (match List.assoc_opt name results with
           | None -> Error { output = name; point; expected; got = None }
           | Some got ->
             if Z.equal got expected then check rest
             else Error { output = name; point; expected; got = Some got })
      in
      check named
    end
  in
  round 0
