(* The width lint, reimplemented as a client of the dataflow framework:
   the exact pre-wrap intervals now come from [Absint.Make (Int_interval)]
   instead of the bespoke sweep in [Polysynth_hw.Range].  The public API
   and the emitted diagnostics are unchanged (Range still provides the
   [interval] type and [required_width]). *)

module Netlist = Polysynth_hw.Netlist
module Range = Polysynth_hw.Range
module A = Absint.Make (Domains.Int_interval)

type mode = Exact | Ring

let op_label (op : Netlist.op) =
  match op with
  | Netlist.Input v -> "input " ^ v
  | Netlist.Constant _ -> "constant"
  | Netlist.Negate -> "negation"
  | Netlist.Add2 -> "addition"
  | Netlist.Sub2 -> "subtraction"
  | Netlist.Mult2 -> "multiplication"
  | Netlist.Cmult _ -> "constant multiplication"
  | Netlist.Shl k -> Printf.sprintf "left shift by %d" k

let check_netlist ?input_range ?(max_findings = 20) ~mode (n : Netlist.t) =
  let input_fact =
    Option.map
      (fun f v ->
        let iv : Range.interval = f v in
        Domains.Int_interval.of_bounds ~lo:iv.Range.lo ~hi:iv.Range.hi)
      input_range
  in
  let facts = A.analyze ?input_fact n in
  let width = n.Netlist.width in
  let findings =
    Array.to_list n.Netlist.cells
    |> List.filter_map (fun cell ->
           match cell.Netlist.op with
           | Netlist.Input _ ->
             (* an input holds the raw operand: nothing to truncate (its
                unsigned range [0, 2^w) is "w+1 bits" only in two's
                complement, a representation it never takes) *)
             None
           | _ ->
             (match Domains.Int_interval.range facts.(cell.Netlist.id) with
              | None -> None  (* unreachable cell: no concrete value *)
              | Some (lo, hi) ->
                let need = Range.required_width { Range.lo; hi } in
                if need <= width then None else Some (cell, need)))
  in
  let total = List.length findings in
  let shown = if total > max_findings then max_findings else total in
  let head =
    List.filteri (fun i _ -> i < shown) findings
    |> List.map (fun ((cell : Netlist.cell), need) ->
           let loc = Diag.Cell cell.Netlist.id in
           match mode with
           | Ring ->
             Diag.info ~code:"width.wrap" loc
               (Printf.sprintf
                  "%s needs %d bits, truncated to the %d-bit datapath \
                   (intentional Z_2^%d wrap-around)"
                  (op_label cell.Netlist.op) need width width)
           | Exact ->
             Diag.warning ~code:"width.overflow" loc
               (Printf.sprintf
                  "%s needs %d bits but the datapath holds %d: the result \
                   silently wraps for some inputs"
                  (op_label cell.Netlist.op) need width))
  in
  let summary =
    if total > shown then
      let code, mk =
        match mode with
        | Ring -> ("width.wrap", Diag.info)
        | Exact -> ("width.overflow", Diag.warning)
      in
      [
        mk ~code Diag.Program
          (Printf.sprintf "... and %d more cell%s outgrow the %d-bit datapath"
             (total - shown)
             (if total - shown = 1 then "" else "s")
             width);
      ]
    else []
  in
  head @ summary
