(* Generic forward abstract interpretation over the netlist DAG.

   The engine is a textbook worklist fixpoint: every cell starts at
   bottom, cells are seeded in topological order (the [cells] array of a
   well-formed netlist is topo-sorted, so one sweep normally reaches the
   fixpoint and the re-queued users confirm stability on their second
   visit), and a cell's users are re-queued whenever its fact grows.

   Termination: facts only move up the lattice ([join] with the previous
   fact) and every domain in {!Domains} has finite height over a fixed
   width — intervals are bounded by [[0, 2^w)], known-bits chains have
   height [w], congruences height [w+1] — so each cell's fact can strictly
   increase only finitely often and the worklist drains. *)

module Netlist = Polysynth_hw.Netlist

module Make (D : Domains.DOMAIN) = struct
  type fact = D.t

  let transfer ~width ~input_fact (facts : D.t array) (cell : Netlist.cell) =
    let arg k = facts.(List.nth cell.fanin k) in
    match cell.op with
    | Netlist.Input v -> input_fact v
    | Netlist.Constant c -> D.const ~width c
    | Netlist.Negate -> D.neg ~width (arg 0)
    | Netlist.Add2 -> D.add ~width (arg 0) (arg 1)
    | Netlist.Sub2 -> D.sub ~width (arg 0) (arg 1)
    | Netlist.Mult2 -> D.mul ~width (arg 0) (arg 1)
    | Netlist.Cmult c -> D.cmul ~width c (arg 0)
    | Netlist.Shl k -> D.shl ~width k (arg 0)

  let analyze ?input_fact (n : Netlist.t) =
    let width = n.Netlist.width in
    let input_fact =
      match input_fact with
      | Some f -> f
      | None -> fun v -> D.input ~width v
    in
    let num = Array.length n.Netlist.cells in
    let facts = Array.make num D.bottom in
    let users = Array.make num [] in
    Array.iter
      (fun (c : Netlist.cell) ->
        List.iter
          (fun s -> if s >= 0 && s < num then users.(s) <- c.id :: users.(s))
          c.fanin)
      n.Netlist.cells;
    let in_queue = Array.make num false in
    let q = Queue.create () in
    let push i =
      if not in_queue.(i) then begin
        in_queue.(i) <- true;
        Queue.add i q
      end
    in
    Array.iter (fun (c : Netlist.cell) -> push c.id) n.Netlist.cells;
    while not (Queue.is_empty q) do
      let i = Queue.take q in
      in_queue.(i) <- false;
      let cell = n.Netlist.cells.(i) in
      (* cells with out-of-range fanin (caught separately by Wellformed)
         just stay at bottom *)
      if List.for_all (fun s -> s >= 0 && s < num) cell.fanin then begin
        let nf =
          D.join ~width facts.(i) (transfer ~width ~input_fact facts cell)
        in
        if not (D.leq nf facts.(i)) then begin
          facts.(i) <- nf;
          List.iter push users.(i)
        end
      end
    done;
    facts

  let to_strings (n : Netlist.t) facts =
    Array.to_list
      (Array.mapi
         (fun i (c : Netlist.cell) ->
           Printf.sprintf "c%-4d %-18s %s" i (Netlist.op_to_string c.op)
             (D.to_string facts.(i)))
         n.Netlist.cells)
end

module Product_analysis = Make (Domains.Product)

let analyze_product ?input_fact n = Product_analysis.analyze ?input_fact n
