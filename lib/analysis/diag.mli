(** Structured diagnostics: the common currency of the analysis passes.

    Every finding carries a severity, a stable machine-readable code
    (e.g. ["wf.use-before-def"], ["width.overflow"], ["lint.dead-cell"]),
    a location inside the artifact being analyzed, and a human-readable
    message.  [Error] findings make [polysynth --lint] fail; [Warning]
    and [Info] findings are reported but do not affect the exit code. *)

type severity = Error | Warning | Info

type location =
  | Program  (** the decomposition as a whole *)
  | Binding of string  (** a named building block of a {!Prog.t} *)
  | Output of string  (** an output of a program or netlist *)
  | Cell of int  (** a cell id of a {!Netlist.t} *)

type t = {
  severity : severity;
  code : string;  (** stable, dot-separated: ["pass.finding"] *)
  location : location;
  message : string;
}

val error : code:string -> location -> string -> t
val warning : code:string -> location -> string -> t
val info : code:string -> location -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val location_label : location -> string

val compare : t -> t -> int
(** Most severe first; then by code, location and message — a stable
    presentation order. *)

val has_errors : t list -> bool

val to_string : t -> string
(** One line: [error[wf.use-before-def] binding d2: ...]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One object: [{"severity":..,"code":..,"location":..,"message":..}]. *)

val json_string : string -> string
(** An escaped JSON string literal — for composing larger objects around
    {!to_json} without depending on the engine's JSON helpers. *)
