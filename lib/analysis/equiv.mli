(** Equivalence certification: does a decomposition still compute its
    source system?

    Every certificate is one of three outcomes.  [Verified] is a {e proof}:
    exact polynomial identity over [Z], or — under a ring context —
    equality of canonical falling-factorial forms over [Z_2^m], which is a
    decision procedure for bit-vector function equality (Sec. 14.3 of the
    paper).  [Refuted] always carries a concrete counterexample input on
    which the decomposition and the source system disagree; under a ring
    context the witness is {e constructed} from the canonical form of the
    difference (the minimal-total-degree falling term [c.Y_k] of a nonzero
    canonical form cannot vanish at the point [x_i = k_i]), so refutation
    never depends on sampling luck.  [Unknown] is returned only when the
    symbolic expansion of the program would exceed the size budget; the
    random pre-filter has still passed in that case.

    A fast random-evaluation pre-filter runs before the symbolic decision:
    faulty decompositions are usually refuted in microseconds without
    expanding anything. *)

module Z := Polysynth_zint.Zint
module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Netlist := Polysynth_hw.Netlist
module Canonical := Polysynth_finite_ring.Canonical

type counterexample = {
  output : string;  (** the output on which the two sides disagree *)
  point : (string * Z.t) list;  (** input assignment (absent vars are 0) *)
  expected : Z.t;  (** the source system's value at the point *)
  got : Z.t option;  (** the program's value; [None] if the output is
                         missing entirely *)
}

type cert =
  | Verified
  | Refuted of counterexample
  | Unknown of string  (** reason the decision procedure was not run *)

val cert_label : cert -> string
(** ["verified"], ["refuted"] or ["unknown"]. *)

val pp_cert : Format.formatter -> cert -> unit
val cert_to_string : cert -> string

val cert_to_json : cert -> string
(** [{"status":"verified"}], or with ["counterexample"] / ["reason"]
    fields. *)

val expansion_estimate : Prog.t -> int
(** Saturating estimate of the term count of the program's outputs after
    inlining every binding (sharing-aware, never expands anything).  This
    is the quantity {!certify} compares against [size_budget]; clients
    like {!Simplify} use it to predict whether certification will return
    [Unknown] before paying for a candidate rewrite. *)

val certify :
  ?ctx:Canonical.ctx ->
  ?samples:int ->
  ?size_budget:int ->
  Poly.t list ->
  Prog.t ->
  cert
(** [certify ?ctx polys prog] checks that output [P{i+1}] of [prog]
    computes [List.nth polys i] — exactly over [Z] when [ctx] is absent,
    as bit-vector functions over the ring when present.  [samples]
    (default 8) sets the random pre-filter effort; [size_budget]
    (default 100_000 nodes, estimated before inlining) bounds the symbolic
    expansion, beyond which [Unknown] is returned. *)

val spot_check_netlist :
  ?seed:int ->
  ?samples:int ->
  ?outputs:(string * Poly.t) list ->
  Poly.t list ->
  Netlist.t ->
  (unit, counterexample) result
(** Bit-accurate sampling oracle for lowered hardware: evaluates the
    netlist on random input vectors and compares every output with the
    source polynomial reduced modulo [2^width].  A sampler, not a decision
    procedure — [Ok ()] means no mismatch was found.  [outputs] overrides
    the default [P1..Pn] naming. *)
