module Z = Polysynth_zint.Zint
module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist

(* ---- programs --------------------------------------------------------- *)

let lint_prog (prog : Prog.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* representative of every binding: itself, or the first earlier binding
     computing the same value once duplicates are rewritten through *)
  let repr = Hashtbl.create 16 in
  let canon e =
    Expr.subst
      (fun v ->
        match Hashtbl.find_opt repr v with
        | Some r when r <> v -> Some (Expr.var r)
        | _ -> None)
      e
  in
  let seen = ref [] in
  List.iter
    (fun (name, e) ->
      let c = canon e in
      (match List.find_opt (fun (_, c') -> Expr.equal c c') !seen with
       | Some (first, _) ->
         Hashtbl.replace repr name first;
         add
           (Diag.warning ~code:"lint.duplicate-binding" (Diag.Binding name)
              (Printf.sprintf "computes the same value as %s" first))
       | None ->
         Hashtbl.replace repr name name;
         seen := (name, c) :: !seen);
      match e with
      | Expr.Const _ | Expr.Var _ ->
        add
          (Diag.info ~code:"lint.trivial-binding" (Diag.Binding name)
             "right-hand side is a bare constant or variable")
      | _ -> ())
    prog.Prog.bindings;
  (* occurrence count of every bound name across later right-hand sides *)
  let bound = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace bound name 0) prog.Prog.bindings;
  let rec count e =
    match (e : Expr.t) with
    | Expr.Const _ -> ()
    | Expr.Var v ->
      (match Hashtbl.find_opt bound v with
       | Some n -> Hashtbl.replace bound v (n + 1)
       | None -> ())
    | Expr.Neg e -> count e
    | Expr.Add es | Expr.Mul es -> List.iter count es
    | Expr.Pow (e, _) -> count e
  in
  List.iter (fun (_, e) -> count e) prog.Prog.bindings;
  List.iter (fun (_, e) -> count e) prog.Prog.outputs;
  List.iter
    (fun (name, _) ->
      if Hashtbl.find bound name = 1 then
        add
          (Diag.info ~code:"lint.single-use" (Diag.Binding name)
             "temporary is referenced exactly once; inlining it loses no \
              sharing"))
    prog.Prog.bindings;
  List.sort Diag.compare !diags

(* ---- netlists --------------------------------------------------------- *)

let op_key (op : Netlist.op) =
  match op with
  | Netlist.Input v -> "in:" ^ v
  | Netlist.Constant c -> "const:" ^ Z.to_string c
  | Netlist.Negate -> "neg"
  | Netlist.Add2 -> "add"
  | Netlist.Sub2 -> "sub"
  | Netlist.Mult2 -> "mult"
  | Netlist.Cmult c -> "cmult:" ^ Z.to_string c
  | Netlist.Shl k -> "shl:" ^ string_of_int k

let lint_netlist (n : Netlist.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let num = Array.length n.Netlist.cells in
  (* duplicates up to representatives, as for programs *)
  let repr = Array.init num (fun i -> i) in
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i (cell : Netlist.cell) ->
      let key =
        op_key cell.Netlist.op
        :: List.map
             (fun src ->
               string_of_int
                 (if src >= 0 && src < num then repr.(src) else src))
             cell.Netlist.fanin
        |> String.concat ","
      in
      match Hashtbl.find_opt seen key with
      | Some first ->
        repr.(i) <- first;
        add
          (Diag.warning ~code:"lint.duplicate-cell" (Diag.Cell i)
             (Printf.sprintf "computes the same value as cell %d" first))
      | None -> Hashtbl.add seen key i)
    n.Netlist.cells;
  (* dead cells: not reachable backward from any output *)
  let live = Array.make num false in
  let rec mark id =
    if id >= 0 && id < num && not live.(id) then begin
      live.(id) <- true;
      List.iter mark n.Netlist.cells.(id).Netlist.fanin
    end
  in
  List.iter (fun (_, id) -> mark id) n.Netlist.outputs;
  Array.iteri
    (fun i (cell : Netlist.cell) ->
      if not live.(i) then
        add
          (Diag.warning ~code:"lint.dead-cell" (Diag.Cell i)
             (Printf.sprintf "%s cell feeds no output"
                (match cell.Netlist.op with
                 | Netlist.Input v -> "input " ^ v
                 | _ -> "computation")));
      match cell.Netlist.op with
      | Netlist.Cmult c when Z.is_zero c ->
        add
          (Diag.info ~code:"lint.trivial-cell" (Diag.Cell i)
             "multiplication by 0 is the constant 0")
      | Netlist.Cmult c when Z.is_one c ->
        add
          (Diag.info ~code:"lint.trivial-cell" (Diag.Cell i)
             "multiplication by 1 is a wire")
      | Netlist.Shl 0 ->
        add
          (Diag.info ~code:"lint.trivial-cell" (Diag.Cell i)
             "shift by 0 is a wire")
      | _ -> ())
    n.Netlist.cells;
  List.sort Diag.compare !diags
