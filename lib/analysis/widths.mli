(** Width soundness: does every intermediate fit the declared datapath?

    Interval (value-range) propagation over the netlist — now a client of
    the dataflow framework ({!Absint.Make} over
    {!Domains.Int_interval}; this module keeps its historical API as a
    shim) — proves, for every cell, the exact reachable interval before
    wrap-around and the two's-complement width that would hold it.  A
    cell whose required width exceeds the declared datapath width is:

    - an {e intentional} [Z_2^m] truncation when the system was
      synthesized under ring semantics ([Ring] mode) — reported as [Info],
      because wrap-around is the defined behaviour there;
    - a {e silent overflow hazard} under exact integer semantics
      ([Exact] mode) — reported as [Warning]: for some input vector the
      hardware result differs from the integer polynomial. *)

module Netlist := Polysynth_hw.Netlist
module Range := Polysynth_hw.Range

type mode =
  | Exact  (** results must equal the integer polynomial *)
  | Ring  (** results are defined modulo [2^width] *)

val check_netlist :
  ?input_range:(string -> Range.interval) ->
  ?max_findings:int ->
  mode:mode ->
  Netlist.t ->
  Diag.t list
(** Codes: [width.overflow] (warning, [Exact] mode), [width.wrap] (info,
    [Ring] mode).  At most [max_findings] (default 20) per-cell findings
    are emitted, followed by one summary diagnostic counting the rest. *)
