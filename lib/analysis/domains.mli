(** Abstract domains over [Z_2^m] for the netlist dataflow framework.

    Every domain implements the same lattice signature: a finite-height
    lattice ([bottom], [top], [join], [leq]) plus one transfer function
    per netlist operator.  [Absint.Make] turns any such domain into a
    forward fixpoint analysis over the {!Polysynth_hw.Netlist.t} DAG.

    Soundness contract: if a cell concretely evaluates (under
    {!Polysynth_hw.Netlist.eval}, i.e. clamped to [width] bits) to [v],
    then [contains ~width fact v] holds for the fact the analysis infers
    for that cell.  The exception is {!Int_interval}, which tracks the
    {e pre-wrap} integer value of each cell (mirroring
    {!Polysynth_hw.Range}) and is sound with respect to exact integer
    evaluation instead; it backs the width lint. *)

module Z = Polysynth_zint.Zint

module type DOMAIN = sig
  type t

  val name : string
  val bottom : t
  val is_bottom : t -> bool
  val top : width:int -> t
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val join : width:int -> t -> t -> t

  (** transfer functions, one per netlist operator *)

  val const : width:int -> Z.t -> t
  val input : width:int -> string -> t
  val neg : width:int -> t -> t
  val add : width:int -> t -> t -> t
  val sub : width:int -> t -> t -> t
  val mul : width:int -> t -> t -> t
  val cmul : width:int -> Z.t -> t -> t
  val shl : width:int -> int -> t -> t

  (** queries *)

  val as_const : width:int -> t -> Z.t option
  val contains : width:int -> t -> Z.t -> bool
  val to_string : t -> string
end

(** [clamp ~width v] is [v] reduced into [[0, 2^width)]. *)
val clamp : width:int -> Z.t -> Z.t

(** [is_pow2 c] is [Some k] iff [c = 2^k] with [c > 0]. *)
val is_pow2 : Z.t -> int option

(** Exact integer intervals, ignoring datapath wrap-around — the domain
    behind {!Widths}.  Sound w.r.t. exact integer evaluation of the DAG,
    not w.r.t. [Netlist.eval]'s clamped semantics. *)
module Int_interval : sig
  include DOMAIN

  (** [range t] is the (pre-wrap) interval, [None] on bottom. *)
  val range : t -> (Z.t * Z.t) option

  (** [of_bounds ~lo ~hi] is the interval [[lo, hi]] ([bottom] when
      empty) — how clients inject custom input ranges. *)
  val of_bounds : lo:Z.t -> hi:Z.t -> t
end

(** Wrap-aware intervals: [lo, hi] with [0 <= lo <= hi < 2^width]; a
    transfer result spanning the full ring or straddling the wrap point
    widens to top. *)
module Interval : DOMAIN

(** Per-bit three-valued facts (0 / 1 / unknown).  Bit 0 subsumes the
    parity domain. *)
module Known_bits : DOMAIN

(** [value = r (mod 2^k)]: tracks the low [k] bits exactly.  [k = 0] is
    top; [k = width] pins the cell to a constant. *)
module Congruence : DOMAIN

(** Reduced product of {!Interval}, {!Known_bits} and {!Congruence}:
    after every transfer, constants discovered by one factor are pushed
    into the others, congruence low bits flow into known bits and the
    known trailing-bit run flows back into the congruence.  Reduction
    only tightens, so each component is at or below what the standalone
    factor would compute. *)
module Product : sig
  include DOMAIN

  val interval : t -> Interval.t
  val known_bits : t -> Known_bits.t
  val congruence : t -> Congruence.t
end
