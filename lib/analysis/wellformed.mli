(** Structural well-formedness of decomposition scripts and netlists.

    These are the checks every later pass assumes: a {!Prog.t} must be in
    single-assignment form with bindings in dependency order (no
    use-before-def, no self-reference, no duplicate names), and a
    {!Netlist.t} must be a topologically ordered DAG of correctly-ar'd
    cells with in-range output references.  Violations are [Error]
    findings; a binding that no later binding or output ever reads (a
    dangling temporary) is a [Warning]. *)

module Prog := Polysynth_expr.Prog
module Netlist := Polysynth_hw.Netlist

val check_prog : Prog.t -> Diag.t list
(** Codes: [wf.duplicate-binding], [wf.duplicate-output],
    [wf.use-before-def], [wf.self-reference], [wf.no-outputs] (errors);
    [wf.dead-binding] (warning). *)

val check_netlist : Netlist.t -> Diag.t list
(** Codes: [wf.cell-id], [wf.fanin-range], [wf.fanin-order], [wf.arity],
    [wf.shift-amount], [wf.output-range], [wf.duplicate-output],
    [wf.width] (all errors).  An empty list proves the cell array is a
    topologically ordered DAG. *)
