(** Generic forward abstract interpretation over the netlist DAG.

    [Make] lifts any {!Domains.DOMAIN} into a worklist fixpoint analysis.
    Cells start at bottom and are seeded in topological order, so on a
    well-formed netlist the fixpoint is reached in one sweep; users of a
    cell are re-queued whenever its fact grows.  Termination follows from
    the finite height of every domain over a fixed width: facts only move
    up the lattice, so each cell changes finitely often and the worklist
    drains. *)

module Netlist := Polysynth_hw.Netlist

module Make (D : Domains.DOMAIN) : sig
  type fact = D.t

  val analyze : ?input_fact:(string -> D.t) -> Netlist.t -> D.t array
  (** Per-cell facts, indexed by cell id.  [input_fact] overrides the
      fact assumed for input cells (default: [D.input], i.e. top). *)

  val to_strings : Netlist.t -> D.t array -> string list
  (** One printable line per cell: id, operator, fact. *)
end

module Product_analysis : sig
  type fact = Domains.Product.t

  val analyze :
    ?input_fact:(string -> Domains.Product.t) ->
    Netlist.t ->
    Domains.Product.t array

  val to_strings : Netlist.t -> Domains.Product.t array -> string list
end

val analyze_product :
  ?input_fact:(string -> Domains.Product.t) ->
  Netlist.t ->
  Domains.Product.t array
(** [Product_analysis.analyze]: the reduced product of wrap-aware
    intervals, known bits and congruences — what {!Simplify} and the CLI
    [--analyze] flag consume. *)
