type severity = Error | Warning | Info

type location =
  | Program
  | Binding of string
  | Output of string
  | Cell of int

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
}

let make severity ~code location message = { severity; code; location; message }
let error = make Error
let warning = make Warning
let info = make Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_label = function
  | Program -> "program"
  | Binding n -> "binding " ^ n
  | Output n -> "output " ^ n
  | Cell i -> Printf.sprintf "cell %d" i

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.location b.location in
      if c <> 0 then c else String.compare a.message b.message

let has_errors = List.exists (fun d -> d.severity = Error)

let to_string d =
  Printf.sprintf "%s[%s] %s: %s"
    (severity_label d.severity)
    d.code
    (location_label d.location)
    d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* local JSON string escaping (the analysis library cannot reach
   [Engine.Trace.json_string] without a dependency cycle) *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json d =
  Printf.sprintf {|{"severity":%s,"code":%s,"location":%s,"message":%s}|}
    (json_string (severity_label d.severity))
    (json_string d.code)
    (json_string (location_label d.location))
    (json_string d.message)
