module Poly = Polysynth_poly.Poly
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Schedule = Polysynth_hw.Schedule
module Bind = Polysynth_hw.Bind
module Canonical = Polysynth_finite_ring.Canonical

type config = {
  ctx : Canonical.ctx option;
  width : int;
  system : Poly.t list option;
  check : bool;
  lint : bool;
  bind : bool;
  simplify : bool;
  samples : int;
}

let default ~width =
  {
    ctx = None;
    width;
    system = None;
    check = true;
    lint = true;
    bind = true;
    simplify = true;
    samples = 8;
  }

type report = {
  wellformed : Diag.t list;
  widths : Diag.t list;
  redundancy : Diag.t list;
  binding : Diag.t list;
  simplify : Diag.t list;
  cert : Equiv.cert option;
}

let not_wellformed cfg =
  if cfg.check && cfg.system <> None then
    Some (Equiv.Unknown "program is not well-formed")
  else None

let empty_report cfg wf =
  {
    wellformed = wf;
    widths = [];
    redundancy = [];
    binding = [];
    simplify = [];
    cert = not_wellformed cfg;
  }

(* Schedule on a deliberately tight resource budget (maximal unit
   sharing), bind, and re-check both results with the independent
   checkers: any violation is a scheduler/binder bug, not a property of
   the input, hence Error severity and its own exit code. *)
let binding_check n =
  let resources = { Schedule.multipliers = 1; adders = 1 } in
  match Schedule.list_schedule resources n with
  | Error (`No_progress np) ->
    [
      Diag.error ~code:"bind.schedule-stuck" Diag.Program
        np.Schedule.message;
    ]
  | Ok sched ->
    let schedule_ok = Schedule.is_valid resources n sched in
    let b = Bind.bind resources n sched in
    let binding_ok = Bind.is_consistent n sched b in
    (if schedule_ok then []
     else
       [
         Diag.error ~code:"bind.invalid-schedule" Diag.Program
           "list scheduler produced a schedule violating dependences or \
            resource bounds";
       ])
    @
    if binding_ok then []
    else
      [
        Diag.error ~code:"bind.inconsistent" Diag.Program
          "resource binding violates binder invariants (unit conflict, \
           missing register, or lifetime overlap)";
      ]

let analyze cfg prog =
  let wf_prog = Wellformed.check_prog prog in
  if Diag.has_errors wf_prog then
    (* the program cannot safely be lowered to a netlist *)
    empty_report cfg wf_prog
  else
    let n = Netlist.of_prog ~width:cfg.width prog in
    let wellformed =
      List.sort Diag.compare (wf_prog @ Wellformed.check_netlist n)
    in
    if Diag.has_errors wellformed then empty_report cfg wellformed
    else
      let widths =
        if cfg.lint then
          let mode =
            match cfg.ctx with Some _ -> Widths.Ring | None -> Widths.Exact
          in
          Widths.check_netlist ~mode n
        else []
      in
      let redundancy =
        if cfg.lint then
          List.sort Diag.compare
            (Redundancy.lint_prog prog @ Redundancy.lint_netlist n)
        else []
      in
      let binding = if cfg.bind then binding_check n else [] in
      let simplify =
        if cfg.lint && cfg.simplify then begin
          (* pass the source system through when its outputs line up with
             the netlist's; Simplify recovers a reference itself otherwise *)
          let system =
            Option.bind cfg.system (fun polys ->
                let named =
                  List.mapi
                    (fun i p -> (Printf.sprintf "P%d" (i + 1), p))
                    polys
                in
                if
                  List.for_all
                    (fun (nm, _) -> List.mem_assoc nm named)
                    n.Netlist.outputs
                then Some named
                else None)
          in
          Simplify.diags_of_outcome
            (Simplify.run ~samples:cfg.samples ?system n)
        end
        else []
      in
      let cert =
        if cfg.check then
          Option.map
            (fun system ->
              Equiv.certify ?ctx:cfg.ctx ~samples:cfg.samples system prog)
            cfg.system
        else None
      in
      { wellformed; widths; redundancy; binding; simplify; cert }

let diags r =
  List.sort Diag.compare
    (r.wellformed @ r.widths @ r.redundancy @ r.binding @ r.simplify)

let exit_code r =
  match r.cert with
  | Some (Equiv.Refuted _) | Some (Equiv.Unknown _) -> 2
  | _ ->
    if Diag.has_errors r.binding then 4
    else if Diag.has_errors (diags r) then 3
    else 0

let to_text r =
  let buf = Buffer.create 256 in
  let section title = function
    | [] -> ()
    | ds ->
      Buffer.add_string buf (title ^ ":\n");
      List.iter
        (fun d -> Buffer.add_string buf ("  " ^ Diag.to_string d ^ "\n"))
        ds
  in
  section "well-formedness" r.wellformed;
  section "widths" r.widths;
  section "redundancy" r.redundancy;
  section "binding" r.binding;
  section "simplify" r.simplify;
  (match r.cert with
   | Some c ->
     Buffer.add_string buf
       (Printf.sprintf "certificate: %s\n" (Equiv.cert_to_string c))
   | None -> ());
  if Buffer.length buf = 0 then "no findings\n" else Buffer.contents buf

let to_json r =
  let arr ds = "[" ^ String.concat "," (List.map Diag.to_json ds) ^ "]" in
  Printf.sprintf
    {|{"wellformed":%s,"widths":%s,"redundancy":%s,"binding":%s,"simplify":%s,"certificate":%s}|}
    (arr r.wellformed) (arr r.widths) (arr r.redundancy) (arr r.binding)
    (arr r.simplify)
    (match r.cert with Some c -> Equiv.cert_to_json c | None -> "null")
