module Poly = Polysynth_poly.Poly
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist
module Canonical = Polysynth_finite_ring.Canonical

type config = {
  ctx : Canonical.ctx option;
  width : int;
  system : Poly.t list option;
  check : bool;
  lint : bool;
  samples : int;
}

let default ~width =
  { ctx = None; width; system = None; check = true; lint = true; samples = 8 }

type report = {
  wellformed : Diag.t list;
  widths : Diag.t list;
  redundancy : Diag.t list;
  cert : Equiv.cert option;
}

let not_wellformed cfg =
  if cfg.check && cfg.system <> None then
    Some (Equiv.Unknown "program is not well-formed")
  else None

let analyze cfg prog =
  let wf_prog = Wellformed.check_prog prog in
  if Diag.has_errors wf_prog then
    (* the program cannot safely be lowered to a netlist *)
    { wellformed = wf_prog; widths = []; redundancy = [];
      cert = not_wellformed cfg }
  else
    let n = Netlist.of_prog ~width:cfg.width prog in
    let wellformed =
      List.sort Diag.compare (wf_prog @ Wellformed.check_netlist n)
    in
    if Diag.has_errors wellformed then
      { wellformed; widths = []; redundancy = []; cert = not_wellformed cfg }
    else
      let widths =
        if cfg.lint then
          let mode =
            match cfg.ctx with Some _ -> Widths.Ring | None -> Widths.Exact
          in
          Widths.check_netlist ~mode n
        else []
      in
      let redundancy =
        if cfg.lint then
          List.sort Diag.compare
            (Redundancy.lint_prog prog @ Redundancy.lint_netlist n)
        else []
      in
      let cert =
        if cfg.check then
          Option.map
            (fun system ->
              Equiv.certify ?ctx:cfg.ctx ~samples:cfg.samples system prog)
            cfg.system
        else None
      in
      { wellformed; widths; redundancy; cert }

let diags r =
  List.sort Diag.compare (r.wellformed @ r.widths @ r.redundancy)

let exit_code r =
  match r.cert with
  | Some (Equiv.Refuted _) | Some (Equiv.Unknown _) -> 2
  | _ -> if Diag.has_errors (diags r) then 3 else 0

let to_text r =
  let buf = Buffer.create 256 in
  let section title = function
    | [] -> ()
    | ds ->
      Buffer.add_string buf (title ^ ":\n");
      List.iter
        (fun d -> Buffer.add_string buf ("  " ^ Diag.to_string d ^ "\n"))
        ds
  in
  section "well-formedness" r.wellformed;
  section "widths" r.widths;
  section "redundancy" r.redundancy;
  (match r.cert with
   | Some c ->
     Buffer.add_string buf
       (Printf.sprintf "certificate: %s\n" (Equiv.cert_to_string c))
   | None -> ());
  if Buffer.length buf = 0 then "no findings\n" else Buffer.contents buf

let to_json r =
  let arr ds = "[" ^ String.concat "," (List.map Diag.to_json ds) ^ "]" in
  Printf.sprintf
    {|{"wellformed":%s,"widths":%s,"redundancy":%s,"certificate":%s}|}
    (arr r.wellformed) (arr r.widths) (arr r.redundancy)
    (match r.cert with Some c -> Equiv.cert_to_json c | None -> "null")
