(** The analysis suite: one entry point running every pass in order.

    Pass ordering is load-bearing.  Well-formedness runs first and gates
    everything else: width propagation, equivalence certification, the
    redundancy lint, the scheduler/binder cross-check and the simplify
    pass all assume a single-assignment, acyclic program, so a
    structurally broken input yields only the well-formedness findings and
    an [Unknown] certificate rather than garbage downstream results. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Canonical := Polysynth_finite_ring.Canonical

type config = {
  ctx : Canonical.ctx option;
      (** ring context; selects [Ring] width mode and [Z_2^m] certification *)
  width : int;  (** datapath width the program is lowered at *)
  system : Poly.t list option;
      (** source system to certify against; [None] skips certification *)
  check : bool;  (** run equivalence certification *)
  lint : bool;  (** run width and redundancy passes *)
  bind : bool;
      (** schedule + bind on a tight resource budget and re-check both
          with {!Polysynth_hw.Schedule.is_valid} and
          {!Polysynth_hw.Bind.is_consistent} *)
  simplify : bool;
      (** run the certificate-guarded {!Simplify} pass and report its
          findings (requires [lint]) *)
  samples : int;  (** random pre-filter effort for certification *)
}

val default : width:int -> config
(** Everything on, no ring context, no source system, 8 samples. *)

type report = {
  wellformed : Diag.t list;
  widths : Diag.t list;
  redundancy : Diag.t list;
  binding : Diag.t list;
      (** [bind.*] findings; always [Error] severity — a violation here
          is a scheduler/binder bug, not a property of the input *)
  simplify : Diag.t list;  (** [simplify.*] findings *)
  cert : Equiv.cert option;
      (** [None] only when certification was not requested or no source
          system was given *)
}

val analyze : config -> Prog.t -> report

val diags : report -> Diag.t list
(** All findings of all passes, sorted by severity. *)

val exit_code : report -> int
(** The CLI/CI contract: [2] when the certificate is [Refuted] or
    [Unknown] (the result is not proven), [4] when the scheduler/binder
    cross-check failed (an internal invariant violation), [3] when any
    other finding has [Error] severity, [0] otherwise. *)

val to_text : report -> string
val to_json : report -> string
