(** The analysis suite: one entry point running every pass in order.

    Pass ordering is load-bearing.  Well-formedness runs first and gates
    everything else: width propagation, equivalence certification and the
    redundancy lint all assume a single-assignment, acyclic program, so a
    structurally broken input yields only the well-formedness findings and
    an [Unknown] certificate rather than garbage downstream results. *)

module Poly := Polysynth_poly.Poly
module Prog := Polysynth_expr.Prog
module Canonical := Polysynth_finite_ring.Canonical

type config = {
  ctx : Canonical.ctx option;
      (** ring context; selects [Ring] width mode and [Z_2^m] certification *)
  width : int;  (** datapath width the program is lowered at *)
  system : Poly.t list option;
      (** source system to certify against; [None] skips certification *)
  check : bool;  (** run equivalence certification *)
  lint : bool;  (** run width and redundancy passes *)
  samples : int;  (** random pre-filter effort for certification *)
}

val default : width:int -> config
(** Everything on, no ring context, no source system, 8 samples. *)

type report = {
  wellformed : Diag.t list;
  widths : Diag.t list;
  redundancy : Diag.t list;
  cert : Equiv.cert option;
      (** [None] only when certification was not requested or no source
          system was given *)
}

val analyze : config -> Prog.t -> report

val diags : report -> Diag.t list
(** All findings of all passes, sorted by severity. *)

val exit_code : report -> int
(** The CLI/CI contract: [2] when the certificate is [Refuted] or
    [Unknown] (the result is not proven), [3] when any finding has
    [Error] severity, [0] otherwise. *)

val to_text : report -> string
val to_json : report -> string
