module Expr = Polysynth_expr.Expr
module Prog = Polysynth_expr.Prog
module Netlist = Polysynth_hw.Netlist

(* ---- programs --------------------------------------------------------- *)

let check_prog (prog : Prog.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if prog.Prog.outputs = [] then
    add (Diag.error ~code:"wf.no-outputs" Diag.Program "program has no outputs");
  (* definition index of every binding name; duplicates keep the first *)
  let def_index = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) ->
      if Hashtbl.mem def_index name then
        add
          (Diag.error ~code:"wf.duplicate-binding" (Diag.Binding name)
             "name is assigned more than once (single-assignment form \
              required)")
      else Hashtbl.add def_index name i)
    prog.Prog.bindings;
  let seen_outputs = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen_outputs name then
        add
          (Diag.error ~code:"wf.duplicate-output" (Diag.Output name)
             "output name is produced more than once")
      else Hashtbl.add seen_outputs name ())
    prog.Prog.outputs;
  (* any variable that is also a binding name refers to that binding; a
     reference from binding [i] to a binding defined at [j >= i] breaks
     dependency order *)
  let used = Hashtbl.create 16 in
  let scan_refs here_index location e =
    List.iter
      (fun v ->
        match Hashtbl.find_opt def_index v with
        | None -> () (* a free variable: an input of the datapath *)
        | Some j ->
          Hashtbl.replace used v ();
          (match here_index with
           | Some i when j = i ->
             add
               (Diag.error ~code:"wf.self-reference" location
                  (Printf.sprintf "binding %s refers to itself" v))
           | Some i when j > i ->
             add
               (Diag.error ~code:"wf.use-before-def" location
                  (Printf.sprintf
                     "reference to %s, which is only defined later" v))
           | _ -> ()))
      (Expr.vars e)
  in
  List.iteri
    (fun i (name, e) -> scan_refs (Some i) (Diag.Binding name) e)
    prog.Prog.bindings;
  List.iter
    (fun (name, e) -> scan_refs None (Diag.Output name) e)
    prog.Prog.outputs;
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem used name) then
        add
          (Diag.warning ~code:"wf.dead-binding" (Diag.Binding name)
             "temporary is never used by a later binding or output"))
    prog.Prog.bindings;
  List.sort Diag.compare !diags

(* ---- netlists --------------------------------------------------------- *)

let arity (op : Netlist.op) =
  match op with
  | Netlist.Input _ | Netlist.Constant _ -> 0
  | Netlist.Negate | Netlist.Cmult _ | Netlist.Shl _ -> 1
  | Netlist.Add2 | Netlist.Sub2 | Netlist.Mult2 -> 2

let check_netlist (n : Netlist.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if n.Netlist.width < 1 then
    add
      (Diag.error ~code:"wf.width" Diag.Program
         (Printf.sprintf "datapath width %d is not positive" n.Netlist.width));
  let num = Array.length n.Netlist.cells in
  Array.iteri
    (fun i cell ->
      let loc = Diag.Cell i in
      if cell.Netlist.id <> i then
        add
          (Diag.error ~code:"wf.cell-id" loc
             (Printf.sprintf "cell id %d does not match its position %d"
                cell.Netlist.id i));
      let expected = arity cell.Netlist.op in
      let got = List.length cell.Netlist.fanin in
      if got <> expected then
        add
          (Diag.error ~code:"wf.arity" loc
             (Printf.sprintf "operator expects %d operand%s, has %d" expected
                (if expected = 1 then "" else "s")
                got));
      (match cell.Netlist.op with
       | Netlist.Shl k when k < 0 ->
         add
           (Diag.error ~code:"wf.shift-amount" loc
              (Printf.sprintf "negative shift amount %d" k))
       | _ -> ());
      List.iter
        (fun src ->
          if src < 0 || src >= num then
            add
              (Diag.error ~code:"wf.fanin-range" loc
                 (Printf.sprintf "fanin %d is outside the cell array" src))
          else if src >= i then
            add
              (Diag.error ~code:"wf.fanin-order" loc
                 (Printf.sprintf
                    "fanin %d does not precede its user (cells must be \
                     topologically ordered)"
                    src)))
        cell.Netlist.fanin)
    n.Netlist.cells;
  let seen_outputs = Hashtbl.create 8 in
  List.iter
    (fun (name, id) ->
      if id < 0 || id >= num then
        add
          (Diag.error ~code:"wf.output-range" (Diag.Output name)
             (Printf.sprintf "output refers to cell %d, outside the array" id));
      if Hashtbl.mem seen_outputs name then
        add
          (Diag.error ~code:"wf.duplicate-output" (Diag.Output name)
             "output name is produced more than once")
      else Hashtbl.add seen_outputs name ())
    n.Netlist.outputs;
  List.sort Diag.compare !diags
