(** Certificate-guarded netlist simplification.

    Consumes the reduced-product facts of {!Absint} and proposes local
    rewrites — constant folding, [x+0]/[x*1]/[x*0] identities,
    [0-x -> -x], multiply-by-constant strength reduction
    ([Mult2 -> Cmult], [Cmult 2^k -> Shl], [Cmult -1 -> Negate]) — plus
    dead-cell elimination.

    The guard is the point: {e every} candidate netlist is certified
    against the reference polynomial system by {!Equiv} under the ring
    context of the netlist's width before it is accepted, so the pass can
    never change semantics.  A failing batch is retried one rewrite at a
    time, isolating an unsound proposal (caught as [Refuted] and surfaced
    as a ["simplify.unsound"] error diagnostic) while sound rewrites
    still land. *)

module Z := Polysynth_zint.Zint
module Netlist := Polysynth_hw.Netlist
module Poly := Polysynth_poly.Poly

type action =
  | Fold of Z.t  (** replace the cell by a constant *)
  | Forward of int  (** route the cell's users to another cell *)
  | Reop of Netlist.op * int list  (** change operator and fanin *)

type rewrite = { cell : int; action : action; reason : string }

val describe : rewrite -> string

val propose : facts:Domains.Product.t array -> Netlist.t -> rewrite list
(** Rewrites justified by the given per-cell facts.  Proposals only —
    nothing here is certified. *)

val apply : Netlist.t -> rewrite list -> Netlist.t
(** Unchecked, id-stable application (forwarded cells keep their id and
    simply lose their users); exposed so tests can inject unsound
    rewrites and watch the certificate catch them.  Use {!run} for the
    guarded pass. *)

val prune : Netlist.t -> Netlist.t
(** Drop cells unreachable from the outputs and renumber. *)

type stats = {
  facts_computed : int;  (** cells whose product fact is strictly below top *)
  proposed : int;
  applied : int;
  rejected : int;
  certificates : int;  (** [Equiv] runs spent guarding the pass *)
  cells_before : int;
  cells_after : int;
}

type outcome = {
  netlist : Netlist.t;  (** always certified equal to (or identical with)
                            the input *)
  applied : rewrite list;
  rejected : (rewrite * Equiv.cert) list;
  skipped : string option;
      (** set when the pass bailed out before certifying anything *)
  stats : stats;
}

val cells_eliminated : outcome -> int

val run :
  ?samples:int ->
  ?size_budget:int ->
  ?system:(string * Poly.t) list ->
  ?facts:Domains.Product.t array ->
  Netlist.t ->
  outcome
(** The guarded pass.  [system] supplies the reference polynomials by
    output name (recommended — exact and cheap); without it the reference
    is recovered from the netlist itself, guarded by
    {!Equiv.expansion_estimate}, and the pass degrades to a no-op when
    the recovery would exceed [size_budget].  [facts] reuses an existing
    product analysis. *)

val diags_of_outcome : ?max_findings:int -> outcome -> Diag.t list
(** Findings for {!Suite}: ["simplify.summary"] / ["simplify.rewrite"] /
    ["simplify.uncertified"] infos, plus a ["simplify.unsound"] {e error}
    for every rewrite the certificate refuted. *)
