module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

let divisors z =
  (* positive divisors of |z|, by trial division — coefficients are small *)
  let n = Z.abs z in
  if Z.is_zero n then [ Z.one ]
  else begin
    let out = ref [] in
    let i = ref Z.one in
    while Z.compare (Z.mul !i !i) n <= 0 do
      if Z.divides !i n then begin
        out := !i :: !out;
        let q = Z.divexact n !i in
        if not (Z.equal q !i) then out := q :: !out
      end;
      i := Z.add !i Z.one
    done;
    !out
  end

let check_univariate v u =
  if Poly.is_zero u then invalid_arg "Linear_factors: zero polynomial";
  match List.filter (fun v' -> v' <> v) (Poly.vars u) with
  | [] -> ()
  | _ :: _ -> invalid_arg "Linear_factors: polynomial is not univariate"

(* [check_univariate] guarantees every v-coefficient is a constant; a
   non-constant here means [Poly.coeffs_in] broke that contract *)
let const_coeff c =
  match Poly.to_const_opt c with
  | Some c -> c
  | None ->
    failwith
      "Linear_factors: internal error: non-constant coefficient in a \
       univariate polynomial"

let eval_at v num den u =
  (* u(num/den) * den^deg: integer by clearing denominators *)
  let deg = Poly.degree_in v u in
  List.fold_left
    (fun acc (k, c) ->
      let c = const_coeff c in
      Z.add acc (Z.mul c (Z.mul (Z.pow num k) (Z.pow den (deg - k)))))
    Z.zero (Poly.coeffs_in v u)

let roots v u =
  check_univariate v u;
  let coeffs = Poly.coeffs_in v u in
  (* strip the root at zero first: trailing coefficient of the v-free part *)
  let min_deg = List.fold_left (fun acc (k, _) -> Stdlib.min acc k) max_int
      (List.map (fun (k, c) -> (k, c)) coeffs) in
  let zero_root = min_deg > 0 in
  let shifted =
    List.filter_map
      (fun (k, c) -> if k >= min_deg then Some (k - min_deg, c) else None)
      coeffs
  in
  let trailing =
    match List.assoc_opt 0 shifted with
    | Some c -> const_coeff c
    | None -> Z.one
  in
  let leading =
    let dmax = List.fold_left (fun acc (k, _) -> Stdlib.max acc k) 0 shifted in
    match List.assoc_opt dmax shifted with
    | Some c -> const_coeff c
    | None -> Z.one
  in
  let candidates =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun a ->
            if Z.is_one (Z.gcd a b) then [ (b, a); (Z.neg b, a) ] else [])
          (divisors leading))
      (divisors trailing)
  in
  let found =
    List.filter (fun (b, a) -> Z.is_zero (eval_at v b a u)) candidates
  in
  let dedup =
    List.sort_uniq
      (fun (b1, a1) (b2, a2) ->
        let c = Z.compare a1 a2 in
        if c <> 0 then c else Z.compare b1 b2)
      found
  in
  if zero_root then (Z.zero, Z.one) :: dedup else dedup

let linear_factors v u =
  check_univariate v u;
  let factor_of (b, a) =
    (* a*v - b, primitive with positive leading coefficient *)
    Poly.sub (Poly.mul_scalar a (Poly.var v)) (Poly.const b)
  in
  let rec strip u (b, a) count =
    match Poly.div_exact u (factor_of (b, a)) with
    | Some q -> strip q (b, a) (count + 1)
    | None -> (u, count)
  in
  let rs = roots v u in
  let rest, factors =
    List.fold_left
      (fun (u, acc) root ->
        let u', k = strip u root 0 in
        if k > 0 then (u', (factor_of root, k) :: acc) else (u, acc))
      (u, []) rs
  in
  (List.rev factors, rest)
