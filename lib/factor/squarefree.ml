module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

type factorization = { unit_part : Z.t; factors : (Poly.t * int) list }

let divexact p d =
  match Poly.div_exact p d with
  | Some q -> q
  | None ->
    (* Yun's algorithm only divides by gcds it just computed *)
    failwith
      "Squarefree: internal error: inexact division in Yun's algorithm"

(* Yun's algorithm w.r.t. one variable on a polynomial that is primitive
   w.r.t. that variable (so every factor mentions [v]).  Returns (s, k)
   pairs with k >= 1. *)
let yun v u =
  let deriv = Poly.derivative v in
  let g = Mgcd.gcd u (deriv u) in
  if Poly.is_const g then [ (u, 1) ]
  else begin
    let rec loop i w z acc =
      if Poly.is_const w then acc
      else begin
        let s = Mgcd.gcd w z in
        let w' = divexact w s in
        let y = divexact z s in
        let z' = Poly.sub y (deriv w') in
        let acc = if Poly.is_const s then acc else (s, i) :: acc in
        loop (i + 1) w' z' acc
      end
    in
    let w = divexact u g in
    let y = divexact (deriv u) g in
    let z = Poly.sub y (deriv w) in
    List.rev (loop 1 w z [])
  end

(* Merge two factor lists with disjoint factor supports: combine
   multiplicities per exponent. *)
let merge fa fb =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s, k) ->
      let prev = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
      Hashtbl.replace tbl k (s :: prev))
    (fa @ fb);
  Hashtbl.fold
    (fun k polys acc -> (List.fold_left Poly.mul Poly.one polys, k) :: acc)
    tbl []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare a b)

(* full square-free decomposition of a primitive polynomial with positive
   leading coefficient, recursing over the variable set *)
let rec decompose u =
  if Poly.is_const u then []
  else
    match Poly.vars u with
    | [] -> []
    | v :: _ ->
      let cont = Mgcd.content_in v u in
      let pp = divexact u cont in
      merge (yun v pp) (decompose cont)

let squarefree u =
  if Poly.is_zero u then invalid_arg "Squarefree.squarefree: zero polynomial";
  match Poly.to_const_opt u with
  | Some c -> { unit_part = c; factors = [] }
  | None ->
    let c = Poly.content u in
    let c = if Z.is_negative (fst (Poly.leading u)) then Z.neg c else c in
    let prim = Poly.div_scalar_exact u c in
    { unit_part = c; factors = decompose prim }

let expand { unit_part; factors } =
  List.fold_left
    (fun acc (s, k) -> Poly.mul acc (Poly.pow s k))
    (Poly.const unit_part) factors

let is_squarefree u =
  if Poly.is_const u then true
  else List.for_all (fun (_, k) -> k = 1) (squarefree u).factors

let is_trivial { unit_part; factors } =
  Z.is_one unit_part && match factors with [ (_, 1) ] -> true | _ -> false

let integer_root_abs n k =
  (* binary search for r with r^k = n *)
  let rec search lo hi =
    if Z.compare lo hi > 0 then None
    else
      let mid = Z.div (Z.add lo hi) Z.two in
      let p = Z.pow mid k in
      let c = Z.compare p n in
      if c = 0 then Some mid
      else if c < 0 then search (Z.add mid Z.one) hi
      else search lo (Z.sub mid Z.one)
  in
  search Z.zero n

let integer_root n k =
  if k < 1 then invalid_arg "Squarefree.integer_root: k < 1";
  if k = 1 then Some n
  else if Z.is_negative n then
    if k land 1 = 0 then None
    else Option.map Z.neg (integer_root_abs (Z.abs n) k)
  else integer_root_abs n k

let perfect_power_root u =
  if Poly.is_zero u || Poly.is_const u then None
  else begin
    let { unit_part; factors } = squarefree u in
    let rec igcd a b = if b = 0 then a else igcd b (a mod b) in
    let k = List.fold_left (fun acc (_, e) -> igcd acc e) 0 factors in
    (* try divisors of k from largest to smallest *)
    let rec try_k k =
      if k < 2 then None
      else if
        List.for_all (fun (_, e) -> e mod k = 0) factors
      then
        match integer_root unit_part k with
        | Some root ->
          let v =
            List.fold_left
              (fun acc (s, e) -> Poly.mul acc (Poly.pow s (e / k)))
              (Poly.const root) factors
          in
          Some (v, k)
        | None -> try_k (k - 1)
      else try_k (k - 1)
    in
    try_k k
  end
