module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

(* positive-leading-coefficient normalization *)
let normalize p =
  if Poly.is_zero p then p
  else if Z.is_negative (fst (Poly.leading p)) then Poly.neg p
  else p

(* [Poly.degree_in v p = d] promises a degree-[d] coefficient; a miss
   means [degree_in] and [coeffs_in] disagree *)
let leading_coeff_in v d p =
  match List.assoc_opt d (Poly.coeffs_in v p) with
  | Some c -> c
  | None ->
    failwith
      (Printf.sprintf
         "Mgcd: internal error: no coefficient at the reported degree %d" d)

let pseudo_rem v a b =
  let db = Poly.degree_in v b in
  if Poly.is_zero b || db = 0 then raise Division_by_zero;
  let lc_b = leading_coeff_in v db b in
  let rec reduce r =
    let dr = Poly.degree_in v r in
    if Poly.is_zero r || dr < db then r
    else
      let lc_r = leading_coeff_in v dr r in
      (* r := lc_b * r - lc_r * v^(dr-db) * b  cancels the leading term *)
      let shift = if dr = db then Poly.one else Poly.var ~exp:(dr - db) v in
      reduce (Poly.sub (Poly.mul lc_b r) (Poly.mul (Poly.mul lc_r shift) b))
  in
  reduce a

let rec gcd a b =
  if Poly.is_zero a then normalize b
  else if Poly.is_zero b then normalize a
  else
    match Poly.to_const_opt a, Poly.to_const_opt b with
    | Some ca, _ -> Poly.const (Z.gcd ca (Poly.content b))
    | _, Some cb -> Poly.const (Z.gcd cb (Poly.content a))
    | None, None ->
      let shared =
        List.filter (fun v -> Poly.mentions v b) (Poly.vars a)
      in
      (match shared with
       | [] ->
         (* no common variable: only a constant can divide both *)
         Poly.const (Z.gcd (Poly.content a) (Poly.content b))
       | v :: _ -> normalize (gcd_in v a b))

and gcd_in v a b =
  (* content/primitive split w.r.t. the main variable, then primitive PRS *)
  let cont_a = content_in v a and cont_b = content_in v b in
  let pa = divexact_poly a cont_a and pb = divexact_poly b cont_b in
  let g_cont = gcd cont_a cont_b in
  let rec prs a b =
    (* invariant: deg_v a >= deg_v b > ... both primitive w.r.t. v *)
    if Poly.is_zero b then a
    else if Poly.degree_in v b = 0 then
      (* a primitive polynomial shares only trivial factors with one free
         of v *)
      Poly.one
    else
      let r = pseudo_rem v a b in
      if Poly.is_zero r then b
      else prs b (primitive_part_in v r)
  in
  let pa, pb =
    if Poly.degree_in v pa >= Poly.degree_in v pb then pa, pb else pb, pa
  in
  let g_prim = prs pa pb in
  let g_prim = if Poly.degree_in v g_prim = 0 then Poly.one else g_prim in
  Poly.mul g_cont g_prim

and content_in v p =
  List.fold_left (fun acc (_, c) -> gcd acc c) Poly.zero (Poly.coeffs_in v p)

and divexact_poly p d =
  match Poly.div_exact p d with
  | Some q -> q
  | None ->
    (* content divides every coefficient by construction *)
    failwith "Mgcd: internal error: content division left a remainder"

and primitive_part_in v p =
  if Poly.is_zero p then p else divexact_poly p (content_in v p)

let gcd_list ps = List.fold_left gcd Poly.zero ps
