(* Benchmark-trajectory JSON: emission, a minimal parser for our own
   schema, and the validation used by `make bench-json` and the tests.

   The files written by [bench/main.exe --json] (BENCH_*.json at the repo
   root) record ns/op per stage and per benchmark so that successive PRs
   have a perf trajectory to compare against.  The parser is deliberately
   small: it only has to read what [render] writes (plus whitespace). *)

let schema = "polysynth-bench/1"

type entry = {
  name : string;
  ns_per_run : float;
  cells_eliminated : int option;
}

(* ---- emission ---------------------------------------------------------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let render ?baseline ~mode entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": %s,\n" (json_string schema));
  Buffer.add_string b (Printf.sprintf "  \"mode\": %s,\n" (json_string mode));
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %s, \"ns_per_run\": %.1f"
           (json_string e.name) e.ns_per_run);
      (match e.cells_eliminated with
       | Some c -> Buffer.add_string b (Printf.sprintf ", \"cells_eliminated\": %d" c)
       | None -> ());
      (match baseline with
       | None -> ()
       | Some base ->
         (match List.assoc_opt e.name base with
          | Some bns when e.ns_per_run > 0. ->
            Buffer.add_string b
              (Printf.sprintf
                 ", \"baseline_ns_per_run\": %.1f, \"speedup_vs_baseline\": %.2f"
                 bns (bns /. e.ns_per_run))
          | Some _ | None -> ()));
      Buffer.add_string b (if i = n - 1 then "}\n" else "},\n"))
    entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* ---- parsing ----------------------------------------------------------- *)

type token = Str of string | Num of float | Punct of char

exception Malformed of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '"' then begin
      let b = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then raise (Malformed "unterminated string");
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
          if !i + 1 >= n then raise (Malformed "bad escape");
          (match s.[!i + 1] with
           | 'n' -> Buffer.add_char b '\n'
           | 'u' ->
             (* only the control-character escapes we ever emit *)
             if !i + 5 >= n then raise (Malformed "bad \\u escape");
             let code = int_of_string ("0x" ^ String.sub s (!i + 2) 4) in
             Buffer.add_char b (Char.chr code);
             i := !i + 4
           | c -> Buffer.add_char b c);
          i := !i + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr i;
          go ()
      in
      go ();
      toks := Str (Buffer.contents b) :: !toks
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      incr i;
      while
        !i < n
        &&
        let c = s.[!i] in
        (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
      do
        incr i
      done;
      match float_of_string_opt (String.sub s start (!i - start)) with
      | Some f -> toks := Num f :: !toks
      | None -> raise (Malformed "bad number")
    end
    else begin
      toks := Punct c :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* Walk the token stream picking up ("schema", value), every
   {"name": ..., "ns_per_run": ...} pair in order, and the optional
   "cells_eliminated" that may follow a pair.  Everything else —
   baseline/speedup fields included — is ignored. *)
let parse s =
  let toks = tokenize s in
  let schema_val = ref None in
  let entries = ref [] in
  let pending_name = ref None in
  let rec go = function
    | Str "schema" :: Punct ':' :: Str v :: rest ->
      schema_val := Some v;
      go rest
    | Str "name" :: Punct ':' :: Str v :: rest ->
      pending_name := Some v;
      go rest
    | Str "ns_per_run" :: Punct ':' :: Num x :: rest ->
      (match !pending_name with
       | Some name ->
         entries := { name; ns_per_run = x; cells_eliminated = None } :: !entries;
         pending_name := None
       | None -> raise (Malformed "ns_per_run without a name"));
      go rest
    | Str "cells_eliminated" :: Punct ':' :: Num x :: rest ->
      (match !entries with
       | e :: tl ->
         if Float.of_int (int_of_float x) <> x || x < 0. then
           raise (Malformed "cells_eliminated must be a non-negative integer");
         entries := { e with cells_eliminated = Some (int_of_float x) } :: tl
       | [] -> raise (Malformed "cells_eliminated before any result"));
      go rest
    | _ :: rest -> go rest
    | [] -> ()
  in
  go toks;
  (!schema_val, List.rev !entries)

let parse_exn s =
  match parse s with
  | Some sch, entries when String.equal sch schema -> entries
  | Some sch, _ -> raise (Malformed ("unexpected schema " ^ sch))
  | None, _ -> raise (Malformed "missing schema field")

(* ---- validation -------------------------------------------------------- *)

let validate ?(required = []) s =
  match parse s with
  | exception Malformed msg -> Error ("malformed JSON: " ^ msg)
  | None, _ -> Error "missing \"schema\" field"
  | Some sch, _ when not (String.equal sch schema) ->
    Error (Printf.sprintf "schema %S, expected %S" sch schema)
  | Some _, [] -> Error "no benchmark results"
  | Some _, entries ->
    let bad =
      List.find_opt
        (fun e ->
          String.length e.name = 0
          || (not (Float.is_finite e.ns_per_run))
          || e.ns_per_run <= 0.)
        entries
    in
    (match bad with
     | Some e ->
       Error
         (Printf.sprintf "entry %S has non-positive ns_per_run %f" e.name
            e.ns_per_run)
     | None ->
       let names = List.map (fun e -> e.name) entries in
       let missing =
         List.filter
           (fun r -> not (List.exists (fun n -> String.equal n r) names))
           required
       in
       (match missing with
        | [] -> Ok ()
        | ms -> Error ("missing required results: " ^ String.concat ", " ms)))
