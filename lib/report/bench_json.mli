(** The benchmark-trajectory JSON format written by [bench/main.exe --json]
    (the committed [BENCH_*.json] files).

    The schema is one object: [{"schema": "polysynth-bench/1", "mode":
    "quick"|"full", "results": [{"name", "ns_per_run",
    ["cells_eliminated"], ["baseline_ns_per_run",
    "speedup_vs_baseline"]}]}].  Emission, a parser for exactly this
    shape, and the validation run by [make bench-json] and the test suite
    all live here so they cannot drift apart. *)

val schema : string
(** ["polysynth-bench/1"]. *)

type entry = {
  name : string;
  ns_per_run : float;
  cells_eliminated : int option;
      (** netlist cells removed by the certificate-guarded simplify pass
          for the entry's benchmark; [None] for entries that do not run
          the pass *)
}

val render : ?baseline:(string * float) list -> mode:string -> entry list -> string
(** Render the document.  When [baseline] holds an [ns_per_run] for an
    entry's name, the entry also carries [baseline_ns_per_run] and
    [speedup_vs_baseline] (baseline / current). *)

exception Malformed of string

val parse_exn : string -> entry list
(** Entries of a rendered document, in order.  Baseline fields are ignored.
    @raise Malformed when the text is not a rendered bench document. *)

val validate : ?required:string list -> string -> (unit, string) result
(** Check a document: schema tag, at least one result, every [ns_per_run]
    finite and strictly positive (non-zero throughput), every
    [cells_eliminated] a non-negative integer, and all [required] result
    names present. *)
