module P = Polysynth_poly.Poly
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog
module Ring = Polysynth_finite_ring.Canonical
module Cost = Polysynth_hw.Cost
module Engine = Polysynth_engine.Engine
module Search = Polysynth_core.Search
module Represent = Polysynth_core.Represent
module Integrated = Polysynth_core.Integrated
module Baselines = Polysynth_core.Baselines
module B = Polysynth_workloads.Benchmarks
module Ex = Polysynth_workloads.Examples

(* every row goes through the unified engine; the shared memo means the
   repeated Proposed runs across the studies build each system's
   representation store only once *)
let run_method ?ctx ?objective ~width m polys =
  let base = Engine.Config.default ~width in
  let config =
    {
      base with
      Engine.Config.ctx;
      objective =
        Option.value objective ~default:base.Engine.Config.objective;
    }
  in
  fst (Engine.run config m polys)

type counts_row = { scheme : string; mults : int; adds : int }

let counts_row scheme (c : Dag.counts) =
  { scheme; mults = c.Dag.mults; adds = c.Dag.adds }

let table_14_1_rows () =
  let system = Ex.table_14_1 in
  let direct = Prog.tree_counts (Baselines.direct system) in
  let horner = Prog.tree_counts (Baselines.horner system) in
  let factor = Prog.counts (Baselines.factor_cse system) in
  let proposed = (run_method ~width:16 Engine.Proposed system).Engine.counts in
  [
    counts_row "direct" direct;
    counts_row "horner" horner;
    counts_row "factoring+CSE" factor;
    counts_row "proposed" proposed;
  ]

let table_14_2_rows () =
  let system = Ex.table_14_2 in
  let ctx = Ring.make_ctx ~out_width:16 () in
  let initial = Prog.tree_counts (Baselines.direct system) in
  let final = (run_method ~ctx ~width:16 Engine.Proposed system).Engine.counts in
  [ counts_row "initial (direct)" initial; counts_row "final (proposed)" final ]

type bench_row = {
  name : string;
  characteristics : string;
  num_polys : int;
  base_area : int;
  base_delay : float;
  prop_area : int;
  prop_delay : float;
  area_improvement_pct : float;
  delay_improvement_pct : float;
}

let bench_row (b : B.t) =
  let ctx = Ring.make_ctx ~out_width:b.B.width () in
  let base = run_method ~ctx ~width:b.B.width Engine.Factor_cse b.B.polys in
  let prop = run_method ~ctx ~width:b.B.width Engine.Proposed b.B.polys in
  let pct a b = 100.0 *. (1.0 -. (a /. b)) in
  {
    name = b.B.name;
    characteristics =
      Printf.sprintf "%d/%d/%d" b.B.num_vars b.B.degree b.B.width;
    num_polys = List.length b.B.polys;
    base_area = base.Engine.cost.Cost.area;
    base_delay = base.Engine.cost.Cost.delay;
    prop_area = prop.Engine.cost.Cost.area;
    prop_delay = prop.Engine.cost.Cost.delay;
    area_improvement_pct =
      pct (float_of_int prop.Engine.cost.Cost.area)
        (float_of_int base.Engine.cost.Cost.area);
    delay_improvement_pct = pct prop.Engine.cost.Cost.delay base.Engine.cost.Cost.delay;
  }

let table_14_3_rows ?names () =
  let selected =
    match names with
    | None -> B.all ()
    | Some names -> List.filter_map B.by_name names
  in
  List.map bench_row selected

let average_area_improvement rows =
  match rows with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc r -> acc +. r.area_improvement_pct) 0.0 rows
    /. float_of_int (List.length rows)

let fig_14_1_dump () =
  let system = Ex.table_14_2 in
  let ctx = Ring.make_ctx ~out_width:16 () in
  let representations = Represent.build ~ctx system in
  let selection =
    Search.select (Search.default_options ~width:16) representations
  in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i reps ->
      Buffer.add_string buf (Printf.sprintf "P%d:\n" (i + 1));
      let chosen = List.nth selection.Search.labels i in
      List.iter
        (fun (rep : Represent.rep) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c %-16s %s\n"
               (if rep.Represent.label = chosen then '*' else ' ')
               rep.Represent.label
               (Polysynth_expr.Expr.to_string rep.Represent.expr)))
        reps)
    representations.Represent.reps;
  Buffer.add_string buf
    (Printf.sprintf "selected combination: [%s]\n"
       (String.concat "; " selection.Search.labels));
  Buffer.contents buf

type ablation_row = { variant : string; area : int; delay : float; ops : int }

let ablation_of_prog ~width variant prog =
  let cost = Cost.of_prog ~width prog in
  {
    variant;
    area = cost.Cost.area;
    delay = cost.Cost.delay;
    ops = Dag.total_ops (Prog.counts prog);
  }

let ablation_rows ?names () =
  let selected =
    match names with
    | None -> B.all ()
    | Some names -> List.filter_map B.by_name names
  in
  List.map
    (fun (b : B.t) ->
      let w = b.B.width in
      let ctx = Ring.make_ctx ~out_width:w () in
      let search_only =
        let representations = Represent.build ~ctx b.B.polys in
        (Search.select (Search.default_options ~width:w) representations)
          .Search.prog
      in
      let rows =
        [
          ablation_of_prog ~width:w "direct" (Baselines.direct b.B.polys);
          ablation_of_prog ~width:w "horner" (Baselines.horner b.B.polys);
          ablation_of_prog ~width:w "factor+cse" (Baselines.factor_cse b.B.polys);
          ablation_of_prog ~width:w "search-only" search_only;
        ]
        @ List.map
            (fun (label, prog) -> ablation_of_prog ~width:w label prog)
            (Integrated.variants b.B.polys)
        @ [
            ablation_of_prog ~width:w "proposed"
              (run_method ~ctx ~width:w Engine.Proposed b.B.polys).Engine.prog;
          ]
      in
      (b.B.name, rows))
    selected

(* ---- extended studies ------------------------------------------------------ *)

module Extract = Polysynth_cse.Extract
module Schedule = Polysynth_hw.Schedule
module Netlist = Polysynth_hw.Netlist
module Power = Polysynth_hw.Power
module Extended = Polysynth_workloads.Extended

let strategy_rows ?names () =
  let selected =
    match names with
    | None -> B.all ()
    | Some names -> List.filter_map B.by_name names
  in
  List.map
    (fun (b : B.t) ->
      let w = b.B.width in
      let prog_of strategy =
        (Extract.run ~mode:Extract.Coeff_literals ~strategy ~signs:false
           b.B.polys)
          .Extract.prog
      in
      ( b.B.name,
        [
          ablation_of_prog ~width:w "greedy" (prog_of Extract.Greedy);
          ablation_of_prog ~width:w "kcm-rectangles"
            (prog_of Extract.Kcm_rectangles);
        ] ))
    selected

let objective_rows ?(names = [ "Quad"; "Mibench"; "MVCS" ]) () =
  List.filter_map B.by_name names
  |> List.map (fun (b : B.t) ->
         let w = b.B.width in
         let rows =
           List.map
             (fun (label, objective) ->
               let r =
                 run_method ~objective ~width:w Engine.Proposed b.B.polys
               in
               ablation_of_prog ~width:w label r.Engine.prog)
             [
               ("min-area", Search.Min_area);
               ("min-delay", Search.Min_delay);
               ("min-power", Search.Min_power);
               ("min-ops", Search.Min_ops);
             ]
         in
         (b.B.name, rows))

let schedule_rows ?(names = [ "SG 3x2"; "Quad"; "MVCS" ]) () =
  List.filter_map B.by_name names
  |> List.map (fun (b : B.t) ->
         let w = b.B.width in
         let r = run_method ~width:w Engine.Proposed b.B.polys in
         let n = Netlist.of_prog ~width:w r.Engine.prog in
         let budgets =
           [ (1, 1); (1, 2); (2, 2); (4, 4); (max_int, max_int) ]
         in
         let rows =
           List.map
             (fun (m, a) ->
               let label =
                 if m = max_int then "unlimited"
                 else Printf.sprintf "%dmul/%dadd" m a
               in
               let s =
                 Schedule.list_schedule_exn
                   { Schedule.multipliers = m; adders = a }
                   n
               in
               (label, s.Schedule.latency))
             budgets
         in
         (b.B.name, rows))

let extended_rows () = List.map bench_row (Extended.extended_suite ())

let mcm_rows ?(names = [ "SG 3x2"; "SG 4x2"; "Quad"; "Mibench"; "MVCS" ]) () =
  List.filter_map B.by_name names
  |> List.map (fun (b : B.t) ->
         let w = b.B.width in
         let r = run_method ~width:w Engine.Proposed b.B.polys in
         let n = Netlist.of_prog ~width:w r.Engine.prog in
         let plain = Cost.of_netlist n in
         let opt = Cost.of_netlist (Polysynth_hw.Mcm.optimize n) in
         ( b.B.name,
           [
             { variant = "proposed"; area = plain.Cost.area;
               delay = plain.Cost.delay;
               ops = Cost.total_operators plain };
             { variant = "proposed+mcm"; area = opt.Cost.area;
               delay = opt.Cost.delay;
               ops = Cost.total_operators opt };
           ] ))

(* sequential/pipelined implementation study of the chosen decompositions *)
let implementation_rows ?(names = [ "SG 3x2"; "Quad"; "MVCS" ]) () =
  List.filter_map B.by_name names
  |> List.map (fun (b : B.t) ->
         let w = b.B.width in
         let r = run_method ~width:w Engine.Proposed b.B.polys in
         let n = Netlist.of_prog ~width:w r.Engine.prog in
         let fsmd =
           Polysynth_hw.Fsmd.build
             { Polysynth_hw.Schedule.multipliers = 1; adders = 1 }
             n
         in
         let period = Cost.default.Cost.mult_delay w +. 4.0 in
         let st = Polysynth_hw.Stage.cut ~target_period:period n in
         ( b.B.name,
           [
             Printf.sprintf "fsmd(1x1): %d states, %d regs, %d ops"
               fsmd.Polysynth_hw.Fsmd.num_states
               fsmd.Polysynth_hw.Fsmd.num_registers
               (List.length fsmd.Polysynth_hw.Fsmd.micro_ops);
             Printf.sprintf "pipeline@%.0f: %d stages, %d regs" period
               st.Polysynth_hw.Stage.num_stages
               st.Polysynth_hw.Stage.pipeline_registers;
           ] ))

let render_implementation groups =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Implementation study — sequential and pipelined forms of the proposed \
     decompositions\n";
  List.iter
    (fun (name, lines) ->
      Buffer.add_string buf (Printf.sprintf "  %s:\n" name);
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "    %s\n" l))
        lines)
    groups;
  Buffer.contents buf

let render_named_ablation ~title groups =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (name, rows) ->
      Buffer.add_string buf (Printf.sprintf "  %s:\n" name);
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "    %-24s area=%8d delay=%6.1f ops=%4d\n"
               r.variant r.area r.delay r.ops))
        rows)
    groups;
  Buffer.contents buf

let render_schedule groups =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Scheduling — latency (steps) of the proposed decomposition vs resources\n";
  List.iter
    (fun (name, rows) ->
      Buffer.add_string buf (Printf.sprintf "  %-8s" name);
      List.iter
        (fun (label, latency) ->
          Buffer.add_string buf (Printf.sprintf "  %s:%d" label latency))
        rows;
      Buffer.add_string buf "\n")
    groups;
  Buffer.contents buf

let render_counts ~title rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (Printf.sprintf "  %-18s %6s %6s\n" "scheme" "MULT" "ADD");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %6d %6d\n" r.scheme r.mults r.adds))
    rows;
  Buffer.contents buf

let render_table_14_3 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 14.3 — factorization/CSE baseline vs proposed method\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %-9s %6s | %9s %7s | %9s %7s | %7s %7s\n" "system"
       "var/deg/m" "#polys" "base area" "delay" "prop area" "delay" "area%"
       "delay%");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-8s %-9s %6d | %9d %7.1f | %9d %7.1f | %+7.1f %+7.1f\n" r.name
           r.characteristics r.num_polys r.base_area r.base_delay r.prop_area
           r.prop_delay r.area_improvement_pct r.delay_improvement_pct))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  average area improvement: %.1f%%\n"
       (average_area_improvement rows));
  Buffer.contents buf

let render_ablation groups =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Ablation — pipeline variants in isolation\n";
  List.iter
    (fun (name, rows) ->
      Buffer.add_string buf (Printf.sprintf "  %s:\n" name);
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "    %-24s area=%8d delay=%6.1f ops=%4d\n"
               r.variant r.area r.delay r.ops))
        rows)
    groups;
  Buffer.contents buf
