module Z = Polysynth_zint.Zint
module Dag = Polysynth_expr.Dag
module Prog = Polysynth_expr.Prog

type op =
  | Input of string
  | Constant of Z.t
  | Negate
  | Add2
  | Sub2
  | Mult2
  | Cmult of Z.t
  | Shl of int

type cell = { id : int; op : op; fanin : int list }

type t = {
  cells : cell array;
  outputs : (string * int) list;
  width : int;
}

let of_dag ~width dag ~outputs =
  let roots = List.map snd outputs in
  let live = Dag.live dag ~roots in
  (* first pass: which constants survive as real cells? a constant feeding
     only multiplications is folded into Cmult cells *)
  let const_of i =
    match Dag.node dag i with Dag.Nconst c -> Some c | _ -> None
  in
  let const_needed = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match Dag.node dag i with
      | Dag.Nconst _ | Dag.Nvar _ -> ()
      | Dag.Nneg a -> (
          match const_of a with
          | Some _ -> Hashtbl.replace const_needed a ()
          | None -> ())
      | Dag.Nadd (a, b) | Dag.Nsub (a, b) ->
        List.iter
          (fun x ->
            match const_of x with
            | Some _ -> Hashtbl.replace const_needed x ()
            | None -> ())
          [ a; b ]
      | Dag.Nmul (a, b) -> (
          (* a multiplication with exactly one constant operand becomes a
             Cmult cell that embeds the value; only a (degenerate) product
             of two constants keeps its operands as cells *)
          match const_of a, const_of b with
          | Some _, Some _ ->
            Hashtbl.replace const_needed a ();
            Hashtbl.replace const_needed b ()
          | _ -> ()))
    live;
  List.iter
    (fun (_, r) ->
      match const_of r with
      | Some _ -> Hashtbl.replace const_needed r ()
      | None -> ())
    outputs;
  let id_map = Hashtbl.create 64 in
  let cells = ref [] in
  let next = ref 0 in
  let emit op fanin =
    let id = !next in
    incr next;
    cells := { id; op; fanin } :: !cells;
    id
  in
  List.iter
    (fun i ->
      let skip_const =
        match const_of i with
        | Some _ -> not (Hashtbl.mem const_needed i)
        | None -> false
      in
      if not skip_const then begin
        let resolve j = Hashtbl.find id_map j in
        let cell_id =
          match Dag.node dag i with
          | Dag.Nconst c -> emit (Constant c) []
          | Dag.Nvar v -> emit (Input v) []
          | Dag.Nneg a -> emit Negate [ resolve a ]
          | Dag.Nadd (a, b) -> emit Add2 [ resolve a; resolve b ]
          | Dag.Nsub (a, b) -> emit Sub2 [ resolve a; resolve b ]
          | Dag.Nmul (a, b) -> (
              match const_of a, const_of b with
              | Some ca, None -> emit (Cmult ca) [ resolve b ]
              | None, Some cb -> emit (Cmult cb) [ resolve a ]
              | Some _, Some _ | None, None ->
                emit Mult2 [ resolve a; resolve b ])
        in
        Hashtbl.replace id_map i cell_id
      end)
    live;
  {
    cells = Array.of_list (List.rev !cells);
    outputs = List.map (fun (n, r) -> (n, Hashtbl.find id_map r)) outputs;
    width;
  }

let of_prog ~width prog =
  let dag, roots = Prog.to_dag prog in
  of_dag ~width dag ~outputs:roots

let num_cells n = Array.length n.cells

let op_to_string = function
  | Input v -> Printf.sprintf "input %s" v
  | Constant c -> Z.to_string c
  | Negate -> "neg"
  | Add2 -> "add"
  | Sub2 -> "sub"
  | Mult2 -> "mul"
  | Cmult c -> Printf.sprintf "cmult %s" (Z.to_string c)
  | Shl k -> Printf.sprintf "shl %d" k

let inputs n =
  Array.to_list n.cells
  |> List.filter_map (fun c ->
         match c.op with Input v -> Some v | _ -> None)
  |> List.sort_uniq String.compare

(* Wrap-around reduction mod 2^width is a ring homomorphism for +, - and
   *, so a program that skips the per-cell clamping still computes the
   same outputs once those are reduced mod 2^width.  That makes the
   program below a faithful (ring-semantics) model of the netlist, which
   is what lets Equiv certify netlist rewrites. *)
let to_prog n =
  let module Expr = Polysynth_expr.Expr in
  let ins = inputs n in
  (* binding names must not collide with (or shadow) input variables *)
  let prefix =
    let rec grow p =
      if
        List.exists
          (fun v ->
            String.length v >= String.length p
            && String.equal (String.sub v 0 (String.length p)) p)
          ins
      then grow (p ^ "_")
      else p
    in
    grow "c"
  in
  let exprs = Array.make (Array.length n.cells) Expr.zero in
  let bindings = ref [] in
  Array.iter
    (fun cell ->
      let arg k = exprs.(List.nth cell.fanin k) in
      let name = prefix ^ string_of_int cell.id in
      let bind e =
        bindings := (name, e) :: !bindings;
        Expr.var name
      in
      let e =
        match cell.op with
        | Input v -> Expr.var v
        | Constant c -> Expr.const c
        | Negate -> bind (Expr.neg (arg 0))
        | Add2 -> bind (Expr.add [ arg 0; arg 1 ])
        | Sub2 -> bind (Expr.sub (arg 0) (arg 1))
        | Mult2 -> bind (Expr.mul [ arg 0; arg 1 ])
        | Cmult c -> bind (Expr.mul [ Expr.const c; arg 0 ])
        | Shl k -> bind (Expr.mul [ Expr.const (Z.pow2 k); arg 0 ])
      in
      exprs.(cell.id) <- e)
    n.cells;
  {
    Prog.bindings = List.rev !bindings;
    outputs = List.map (fun (nm, id) -> (nm, exprs.(id))) n.outputs;
  }

let eval n env =
  let values = Array.make (Array.length n.cells) Z.zero in
  let clamp v = Z.erem_pow2 v n.width in
  Array.iter
    (fun cell ->
      let arg k = values.(List.nth cell.fanin k) in
      let v =
        match cell.op with
        | Input v -> env v
        | Constant c -> c
        | Negate -> Z.neg (arg 0)
        | Add2 -> Z.add (arg 0) (arg 1)
        | Sub2 -> Z.sub (arg 0) (arg 1)
        | Mult2 -> Z.mul (arg 0) (arg 1)
        | Cmult c -> Z.mul c (arg 0)
        | Shl k -> Z.mul (Z.pow2 k) (arg 0)
      in
      values.(cell.id) <- clamp v)
    n.cells;
  List.map (fun (name, id) -> (name, values.(id))) n.outputs
