(** Resource-constrained operation scheduling.

    After a decomposition is chosen, high-level synthesis maps its operator
    DAG onto a limited number of functional units over clock steps.  This
    module provides ASAP/ALAP analyses and a priority list scheduler
    (least-slack first), which exposes the area/latency trade-off of a
    decomposition: heavily shared building blocks serialize and need more
    steps on narrow resource budgets. *)

type resources = {
  multipliers : int;  (** general multipliers available per step *)
  adders : int;  (** adder/subtractor/constant-multiplier units per step *)
}

val unlimited : resources

type latency_model = {
  mult_cycles : int;  (** >= 1 *)
  add_cycles : int;  (** >= 1; used for adds, subs and constant mults *)
}

val default_latency : latency_model
(** Two-cycle multipliers, single-cycle adders. *)

type schedule = {
  start_step : int array;  (** indexed by cell id; inputs/constants at 0 *)
  latency : int;  (** first step at which every output is available *)
  steps_used : int;
}

val asap : ?latency_model:latency_model -> Netlist.t -> int array
(** Earliest start step of every cell. *)

val critical_path_latency : ?latency_model:latency_model -> Netlist.t -> int
(** Latency with unlimited resources. *)

type no_progress = {
  step : int;  (** the step at which the scheduler gave up *)
  unscheduled : int list;  (** cell ids that never became ready *)
  message : string;  (** human-readable diagnosis *)
}
(** Diagnostic for a scheduling run that stopped making progress — only
    possible on a malformed netlist (cyclic or not topologically
    ordered); well-formed inputs always schedule. *)

val list_schedule :
  ?latency_model:latency_model ->
  resources ->
  Netlist.t ->
  (schedule, [ `No_progress of no_progress ]) result
(** Priority list scheduling; ties broken deterministically by cell id.
    @raise Invalid_argument when a resource class has fewer than one
    unit. *)

val list_schedule_exn :
  ?latency_model:latency_model -> resources -> Netlist.t -> schedule
(** {!list_schedule}, raising [Failure] with the diagnostic message on
    [`No_progress] — the historical behaviour, for callers that treat a
    stuck schedule as a fatal invariant violation. *)

val is_valid : ?latency_model:latency_model -> resources -> Netlist.t -> schedule -> bool
(** Checker used by the tests: dependences respected, per-step resource
    usage within bounds. *)
