module Z = Polysynth_zint.Zint

type source =
  | From_register of int
  | From_input of string
  | From_constant of Z.t
  | Shifted of int * source
  | Negated of source

type micro_op = {
  step : int;
  op : Netlist.op;
  unit_class : int;
  unit_index : int;
  sources : source list;
  dest_register : int;
  latched_at : int;
}

type t = {
  micro_ops : micro_op list;
  num_states : int;
  num_registers : int;
  output_sources : (string * source) list;
  width : int;
}

type unit_class = Free | Mult_unit | Add_unit

let class_of op =
  match (op : Netlist.op) with
  | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate | Netlist.Shl _ ->
    Free
  | Netlist.Mult2 -> Mult_unit
  | Netlist.Add2 | Netlist.Sub2 | Netlist.Cmult _ -> Add_unit

let build ?(latency_model = Schedule.default_latency) resources
    (n : Netlist.t) =
  let s = Schedule.list_schedule_exn ~latency_model resources n in
  let b = Bind.bind ~latency_model resources n s in
  let cells = n.Netlist.cells in
  let num = Array.length cells in
    (* free cells (shifts, negations) are folded into the consumer's operand
     steering, so a read through them happens at the *consumer's* launch
     state: lifetimes propagate transitively through free cells, walking
     consumers before producers (reverse topological order) *)
  let last_use = Array.make num (-1) in
  List.iter
    (fun (_, i) -> last_use.(i) <- Stdlib.max last_use.(i) s.Schedule.latency)
    n.Netlist.outputs;
  for i = num - 1 downto 0 do
    let cell = cells.(i) in
    let contribution =
      match class_of cell.Netlist.op with
      | Free -> last_use.(i)
      | Mult_unit | Add_unit -> s.Schedule.start_step.(i)
    in
    List.iter
      (fun src -> last_use.(src) <- Stdlib.max last_use.(src) contribution)
      cell.Netlist.fanin
  done;
  (* a value lands in its register at the end of its launch state
     (non-blocking write), so its lifetime starts at launch+1; readers at
     the landing state still see the previous value, which is exactly the
     Verilog semantics the emitter uses *)
  let intervals =
    Array.to_list cells
    |> List.filter_map (fun c ->
           let i = c.Netlist.id in
           match class_of c.Netlist.op with
           | Free -> None
           | Mult_unit | Add_unit ->
             let start = s.Schedule.start_step.(i) + 1 in
             Some (i, start, Stdlib.max last_use.(i) start))
    |> List.sort (fun (_, a, _) (_, b, _) -> Stdlib.compare a b)
  in
  let register_of = Array.make num (-1) in
  let registers : int ref list ref = ref [] in
  List.iter
    (fun (i, start, stop) ->
      let rec find k = function
        | [] ->
          registers := !registers @ [ ref stop ];
          k
        | r :: rest ->
          if !r < start then begin
            r := stop;
            k
          end
          else find (k + 1) rest
      in
      register_of.(i) <- find 0 !registers)
    intervals;
  (* resolve a cell value to a steering expression over registers, inputs
     and constants, folding the free cells combinationally *)
  let rec source_of i =
    let cell = cells.(i) in
    match cell.Netlist.op with
    | Netlist.Input v -> From_input v
    | Netlist.Constant c -> From_constant c
    | Netlist.Shl k -> Shifted (k, source_of (List.hd cell.Netlist.fanin))
    | Netlist.Negate -> Negated (source_of (List.hd cell.Netlist.fanin))
    | Netlist.Mult2 | Netlist.Add2 | Netlist.Sub2 | Netlist.Cmult _ ->
      From_register register_of.(i)
  in
  let micro_ops =
    Array.to_list cells
    |> List.filter_map (fun cell ->
           let i = cell.Netlist.id in
           match class_of cell.Netlist.op with
           | Free -> None
           | Mult_unit | Add_unit ->
             let cls, idx = b.Bind.unit_of.(i) in
             Some
               {
                 step = s.Schedule.start_step.(i);
                 op = cell.Netlist.op;
                 unit_class = cls;
                 unit_index = idx;
                 sources = List.map source_of cell.Netlist.fanin;
                 dest_register = register_of.(i);
                 latched_at = s.Schedule.start_step.(i);
               })
    |> List.sort (fun a b -> Stdlib.compare (a.step, a.dest_register) (b.step, b.dest_register))
  in
  {
    micro_ops;
    num_states = Stdlib.max 1 s.Schedule.latency;
    num_registers = List.length !registers;
    output_sources =
      List.map (fun (name, i) -> (name, source_of i)) n.Netlist.outputs;
    width = n.Netlist.width;
  }

let simulate fsmd env =
  let regs = Array.make (Stdlib.max 1 fsmd.num_registers) Z.zero in
  let clamp v = Z.erem_pow2 v fsmd.width in
  let rec eval_source = function
    | From_register r -> regs.(r)
    | From_input v -> clamp (env v)
    | From_constant c -> clamp c
    | Shifted (k, s) -> clamp (Z.mul (Z.pow2 k) (eval_source s))
    | Negated s -> clamp (Z.neg (eval_source s))
  in
  for state = 0 to fsmd.num_states - 1 do
    (* all reads of this state happen first, then all writes commit at the
       end of the state (non-blocking semantics) *)
    let launched = List.filter (fun m -> m.step = state) fsmd.micro_ops in
    let computed =
      List.map
        (fun m ->
          let a k = eval_source (List.nth m.sources k) in
          let v =
            match m.op with
            | Netlist.Add2 -> Z.add (a 0) (a 1)
            | Netlist.Sub2 -> Z.sub (a 0) (a 1)
            | Netlist.Mult2 -> Z.mul (a 0) (a 1)
            | Netlist.Cmult c -> Z.mul c (a 0)
            | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate
            | Netlist.Shl _ -> assert false
          in
          (m.dest_register, clamp v))
        launched
    in
    List.iter (fun (r, v) -> regs.(r) <- v) computed
  done;
  List.map (fun (name, src) -> (name, eval_source src)) fsmd.output_sources

let rec pp_source ~width buf = function
  | From_register r -> Buffer.add_string buf (Printf.sprintf "regs[%d]" r)
  | From_input v -> Buffer.add_string buf (Verilog.legalize v)
  | From_constant c ->
    Buffer.add_string buf
      (Printf.sprintf "%d'd%s" width (Z.to_string (Z.erem_pow2 c width)))
  | Shifted (k, s) ->
    Buffer.add_string buf "(";
    pp_source ~width buf s;
    Buffer.add_string buf (Printf.sprintf " <<< %d)" k)
  | Negated s ->
    Buffer.add_string buf "(-";
    pp_source ~width buf s;
    Buffer.add_string buf ")"

let to_verilog ?(module_name = "polysynth_fsmd") fsmd =
  let w = fsmd.width in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs =
    let rec collect acc = function
      | From_input v -> if List.mem v acc then acc else v :: acc
      | From_register _ | From_constant _ -> acc
      | Shifted (_, s) | Negated s -> collect acc s
    in
    List.sort_uniq String.compare
      (List.fold_left collect []
         (List.concat_map (fun m -> m.sources) fsmd.micro_ops
         @ List.map snd fsmd.output_sources))
  in
  add "module %s (\n" (Verilog.legalize module_name);
  add "  input  wire clk,\n";
  add "  input  wire rst,\n";
  List.iter
    (fun v -> add "  input  signed [%d:0] %s,\n" (w - 1) (Verilog.legalize v))
    inputs;
  List.iter
    (fun (name, _) ->
      add "  output signed [%d:0] %s,\n" (w - 1) (Verilog.legalize name))
    fsmd.output_sources;
  add "  output wire done_o\n";
  add ");\n";
  let state_bits =
    let rec bits v acc = if v = 0 then Stdlib.max acc 1 else bits (v lsr 1) (acc + 1) in
    bits fsmd.num_states 0
  in
  add "  reg [%d:0] state;\n" (state_bits - 1);
  add "  reg signed [%d:0] regs [0:%d];\n" (w - 1)
    (Stdlib.max 0 (fsmd.num_registers - 1));
  add "  assign done_o = (state == %d'd%d);\n" state_bits fsmd.num_states;
  add "  always @(posedge clk) begin\n";
  add "    if (rst) state <= 0;\n";
  add "    else if (!done_o) begin\n";
  add "      case (state)\n";
  for st = 0 to fsmd.num_states - 1 do
    let ops = List.filter (fun m -> m.step = st) fsmd.micro_ops in
    if ops <> [] then begin
      add "        %d'd%d: begin\n" state_bits st;
      List.iter
        (fun m ->
          let src k =
            let b = Buffer.create 32 in
            pp_source ~width:w b (List.nth m.sources k);
            Buffer.contents b
          in
          let rhs =
            match m.op with
            | Netlist.Add2 -> Printf.sprintf "%s + %s" (src 0) (src 1)
            | Netlist.Sub2 -> Printf.sprintf "%s - %s" (src 0) (src 1)
            | Netlist.Mult2 -> Printf.sprintf "%s * %s" (src 0) (src 1)
            | Netlist.Cmult c ->
              Printf.sprintf "%d'd%s * %s" w
                (Z.to_string (Z.erem_pow2 c w))
                (src 0)
            | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate
            | Netlist.Shl _ -> assert false
          in
          add "          regs[%d] <= %s; // %s unit %d\n" m.dest_register rhs
            (if m.unit_class = 1 then "mult" else "add")
            m.unit_index)
        ops;
      add "        end\n"
    end
  done;
  add "        default: ;\n";
  add "      endcase\n";
  add "      state <= state + 1;\n";
  add "    end\n";
  add "  end\n";
  List.iter
    (fun (name, srcv) ->
      let b = Buffer.create 32 in
      pp_source ~width:w b srcv;
      add "  assign %s = %s;\n" (Verilog.legalize name) (Buffer.contents b))
    fsmd.output_sources;
  add "endmodule\n";
  Buffer.contents buf
