type resources = { multipliers : int; adders : int }

let unlimited = { multipliers = max_int; adders = max_int }

type latency_model = { mult_cycles : int; add_cycles : int }

let default_latency = { mult_cycles = 2; add_cycles = 1 }

type schedule = {
  start_step : int array;
  latency : int;
  steps_used : int;
}

type unit_class = Free | Mult_unit | Add_unit

let class_of op =
  match (op : Netlist.op) with
  | Netlist.Input _ | Netlist.Constant _ | Netlist.Negate | Netlist.Shl _ ->
    Free
  | Netlist.Mult2 -> Mult_unit
  | Netlist.Add2 | Netlist.Sub2 | Netlist.Cmult _ -> Add_unit

let duration lm op =
  match class_of op with
  | Free -> 0
  | Mult_unit -> lm.mult_cycles
  | Add_unit -> lm.add_cycles

let asap ?(latency_model = default_latency) (n : Netlist.t) =
  let start = Array.make (Array.length n.Netlist.cells) 0 in
  Array.iter
    (fun cell ->
      let ready =
        List.fold_left
          (fun acc i ->
            let fin =
              start.(i) + duration latency_model (n.Netlist.cells.(i)).Netlist.op
            in
            Stdlib.max acc fin)
          0 cell.Netlist.fanin
      in
      start.(cell.Netlist.id) <- ready)
    n.Netlist.cells;
  start

let finish_time lm (n : Netlist.t) start =
  Array.fold_left
    (fun acc cell ->
      Stdlib.max acc (start.(cell.Netlist.id) + duration lm cell.Netlist.op))
    0 n.Netlist.cells

let critical_path_latency ?(latency_model = default_latency) n =
  finish_time latency_model n (asap ~latency_model n)

(* ALAP start times for priority (slack) computation *)
let alap lm (n : Netlist.t) deadline =
  let cells = n.Netlist.cells in
  let late = Array.make (Array.length cells) deadline in
  (* initialize: every cell may finish by the deadline *)
  Array.iteri
    (fun i cell -> late.(i) <- deadline - duration lm cell.Netlist.op)
    cells;
  (* walk in reverse topological order, tightening producers *)
  for i = Array.length cells - 1 downto 0 do
    let cell = cells.(i) in
    List.iter
      (fun src ->
        let bound = late.(cell.Netlist.id) - duration lm cells.(src).Netlist.op in
        if bound < late.(src) then late.(src) <- bound)
      cell.Netlist.fanin
  done;
  late

type no_progress = {
  step : int;
  unscheduled : int list;
  message : string;
}

exception Stuck of no_progress

let list_schedule_result ?(latency_model = default_latency) resources
    (n : Netlist.t) =
  if resources.multipliers < 1 || resources.adders < 1 then
    invalid_arg "Schedule.list_schedule: need at least one unit per class";
  let lm = latency_model in
  let cells = n.Netlist.cells in
  let num = Array.length cells in
  let deadline = critical_path_latency ~latency_model n in
  let late = alap lm n deadline in
  let start = Array.make num (-1) in
  let finished = Array.make num (-1) in
  (* inputs/constants/negations are free: schedule them as soon as their
     fanin is done (negation is absorbed into the consuming adder) *)
  let unscheduled = ref [] in
  Array.iter
    (fun cell ->
      if class_of cell.Netlist.op = Free && cell.Netlist.fanin = [] then begin
        start.(cell.Netlist.id) <- 0;
        finished.(cell.Netlist.id) <- 0
      end
      else unscheduled := cell :: !unscheduled)
    cells;
  let unscheduled = ref (List.rev !unscheduled) in
  let step = ref 0 in
  let busy_until_mult = ref [] and busy_until_add = ref [] in
  (* busy_until_* holds the finish step of each occupied unit *)
  let available busy limit t =
    let in_use = List.length (List.filter (fun f -> f > t) busy) in
    in_use < limit
  in
  while !unscheduled <> [] do
    let t = !step in
    (* cells whose operands are finished by t *)
    let ready, rest =
      List.partition
        (fun cell ->
          List.for_all
            (fun src -> finished.(src) >= 0 && finished.(src) <= t)
            cell.Netlist.fanin)
        !unscheduled
    in
    let ready =
      List.sort
        (fun a b ->
          let c = Stdlib.compare late.(a.Netlist.id) late.(b.Netlist.id) in
          if c <> 0 then c else Stdlib.compare a.Netlist.id b.Netlist.id)
        ready
    in
    let leftover =
      List.filter
        (fun cell ->
          let id = cell.Netlist.id in
          match class_of cell.Netlist.op with
          | Free ->
            start.(id) <- t;
            finished.(id) <- t;
            false
          | Mult_unit ->
            if available !busy_until_mult resources.multipliers t then begin
              start.(id) <- t;
              finished.(id) <- t + lm.mult_cycles;
              busy_until_mult := (t + lm.mult_cycles) :: !busy_until_mult;
              false
            end
            else true
          | Add_unit ->
            if available !busy_until_add resources.adders t then begin
              start.(id) <- t;
              finished.(id) <- t + lm.add_cycles;
              busy_until_add := (t + lm.add_cycles) :: !busy_until_add;
              false
            end
            else true)
        ready
    in
    unscheduled := leftover @ rest;
    incr step;
    if !step > 4 * (num + 1) * (lm.mult_cycles + lm.add_cycles) then begin
      let stuck = List.map (fun c -> c.Netlist.id) !unscheduled in
      raise
        (Stuck
           {
             step = !step;
             unscheduled = stuck;
             message =
               Printf.sprintf
                 "no progress after %d steps: %d cell%s still unscheduled \
                  (the netlist is not topologically ordered, or a latency \
                  bound is inconsistent)"
                 !step (List.length stuck)
                 (if List.length stuck = 1 then "" else "s");
           })
    end
  done;
  let latency = finish_time lm n start in
  { start_step = start; latency; steps_used = latency }

let list_schedule ?latency_model resources n =
  match list_schedule_result ?latency_model resources n with
  | s -> Ok s
  | exception Stuck d -> Error (`No_progress d)

let list_schedule_exn ?latency_model resources n =
  match list_schedule_result ?latency_model resources n with
  | s -> s
  | exception Stuck d -> failwith ("Schedule.list_schedule: " ^ d.message)

let is_valid ?(latency_model = default_latency) resources (n : Netlist.t) s =
  let lm = latency_model in
  let cells = n.Netlist.cells in
  let deps_ok =
    Array.for_all
      (fun cell ->
        List.for_all
          (fun src ->
            s.start_step.(src) + duration lm cells.(src).Netlist.op
            <= s.start_step.(cell.Netlist.id))
          cell.Netlist.fanin)
      cells
  in
  let usage_ok =
    let ok = ref true in
    for t = 0 to s.latency do
      let used cls =
        Array.fold_left
          (fun acc cell ->
            let d = duration lm cell.Netlist.op in
            if
              class_of cell.Netlist.op = cls
              && s.start_step.(cell.Netlist.id) <= t
              && t < s.start_step.(cell.Netlist.id) + d
            then acc + 1
            else acc)
          0 cells
      in
      if used Mult_unit > resources.multipliers then ok := false;
      if used Add_unit > resources.adders then ok := false
    done;
    !ok
  in
  deps_ok && usage_ok
