(** Operator-level netlists.

    A netlist is the hardware view of an expression DAG: one cell per live
    operator, with constant multiplications classified separately (they
    synthesize to shift-add networks, much cheaper than a general
    multiplier).  The cost model and the Verilog emitter both work from this
    representation, mirroring the paper's hand-off of each decomposition to
    Synopsys Design Compiler. *)

module Z := Polysynth_zint.Zint
module Dag := Polysynth_expr.Dag

type op =
  | Input of string
  | Constant of Z.t
  | Negate
  | Add2
  | Sub2
  | Mult2  (** general multiplier *)
  | Cmult of Z.t  (** multiplication by a constant *)
  | Shl of int  (** left shift by a constant amount: free wiring *)

type cell = { id : int; op : op; fanin : int list }

type t = {
  cells : cell array;  (** topologically ordered: fanin ids precede users *)
  outputs : (string * int) list;
  width : int;  (** operand bit-width *)
}

val of_dag : width:int -> Dag.t -> outputs:(string * Dag.id) list -> t
(** Keep only the nodes reachable from the outputs; multiplications with a
    constant operand become [Cmult] cells (the constant cell itself is kept
    only if some other cell still reads it). *)

val of_prog : width:int -> Polysynth_expr.Prog.t -> t

val num_cells : t -> int
val inputs : t -> string list

val op_to_string : op -> string

val to_prog : t -> Polysynth_expr.Prog.t
(** Lift the netlist back into a straight-line program: one binding per
    operator cell (inputs and constants are inlined), outputs preserved
    by name and order.  Binding names are chosen so they cannot shadow an
    input variable.  Because reduction mod [2^width] is a ring
    homomorphism for [+], [-] and [*], the program denotes the same
    outputs as {!eval} once results are reduced mod [2^width] — this is
    what lets {!Polysynth_analysis.Equiv} certify netlist rewrites. *)

val eval : t -> (string -> Z.t) -> (string * Z.t) list
(** Bit-accurate evaluation: every cell result is reduced into
    [[0, 2^width)] (wrap-around bit-vector arithmetic). *)
