let p = Polysynth_poly.Parse.poly_exn

let table_14_1 =
  [
    p "x^2 + 6*x*y + 9*y^2";
    p "4*x*y^2 + 12*y^3";
    p "2*x^2*z + 6*x*y*z";
  ]

let table_14_2 =
  [
    p "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11";
    p "15*x^2 - 30*x*y + 15*y^2 + 11*x + 11*y + 9";
    p "5*x^3*y^2 - 5*x^3*y - 15*x^2*y^2 + 15*x^2*y + 10*x*y^2 - 10*x*y + 3*z^2";
    p "3*x^2*y^2 - 3*x^2*y - 3*x*y^2 + 3*x*y + z + 1";
  ]

let section_14_3_1_f = p "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y + 5*z^2*x - 5*z*x"

let section_14_3_1_g = p "7*x^2*z^2 - 7*x^2*z - 7*x*z^2 + 7*z*x + 3*y^2*x - 3*y*x"

let section_14_4_1 = p "8*x + 16*y + 24*z + 15*a + 30*b + 11"

let section_14_4_2 =
  [
    p "x^2*y + x*y*z";
    p "a*b^2*c^3 + b^2*c^2*x";
    p "a*x*z + x^2*z^2*b";
  ]

let coefficient_factoring_motivation = p "5*x^2 + 10*y^3 + 15*q*w"
