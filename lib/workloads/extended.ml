module Z = Polysynth_zint.Zint
module Poly = Polysynth_poly.Poly

let p = Polysynth_poly.Parse.poly_exn

let fir_direct ~taps =
  if taps < 1 then invalid_arg "Extended.fir_direct: taps < 1";
  (* symmetric triangular coefficients 1, 2, ..., peak, ..., 2, 1 *)
  let coeff k =
    let half = (taps + 1) / 2 in
    1 + if k < half then k else taps - k
  in
  Poly.add_list
    (List.init (taps + 1) (fun k ->
         Poly.mul_scalar (Z.of_int (coeff k))
           (if k = 0 then Poly.one else Poly.var ~exp:k "x")))

let chebyshev ~degree =
  if degree < 0 then invalid_arg "Extended.chebyshev: negative degree";
  let x = Poly.var "x" in
  let rec go n t_prev t_cur =
    if n = degree then t_cur
    else go (n + 1) t_cur (Poly.sub (Poly.mul_scalar Z.two (Poly.mul x t_cur)) t_prev)
  in
  if degree = 0 then Poly.one else go 1 Poly.one x

let lighting () =
  (* shared attenuation a = x^2 + y^2 + z^2; per-channel gains and linear
     terms on top, degree 3 through the x*a / y*a / z*a products *)
  [
    p "3*x^3 + 3*x*y^2 + 3*x*z^2 + 7*x + 2*y + 5";
    p "3*y^3 + 3*y*x^2 + 3*y*z^2 + 7*y + 2*z + 5";
    p "3*z^3 + 3*z*x^2 + 3*z*y^2 + 7*z + 2*x + 5";
  ]

let biquad_pair () =
  (* shared resonator r = x^2 - 2xy + y^2 = (x - y)^2 *)
  [
    p "9*x^2 - 18*x*y + 9*y^2 + 6*x + 12*y + 4";
    p "15*x^2 - 30*x*y + 15*y^2 - 10*x + 5*y + 8";
  ]

let extended_suite () =
  [
    {
      Benchmarks.name = "FIR8";
      polys = [ fir_direct ~taps:8 ];
      num_vars = 1;
      degree = 8;
      width = 16;
    };
    {
      Benchmarks.name = "Cheb5";
      polys = [ chebyshev ~degree:5 ];
      num_vars = 1;
      degree = 5;
      width = 16;
    };
    {
      Benchmarks.name = "Lighting";
      polys = lighting ();
      num_vars = 3;
      degree = 3;
      width = 16;
    };
    {
      Benchmarks.name = "Biquad";
      polys = biquad_pair ();
      num_vars = 2;
      degree = 2;
      width = 16;
    };
  ]
