module Poly = Polysynth_poly.Poly

let p = Polysynth_poly.Parse.poly_exn

type t = {
  name : string;
  polys : Poly.t list;
  num_vars : int;
  degree : int;
  width : int;
}

let sg name window degree =
  {
    name;
    polys = Savitzky_golay.system ~window ~degree;
    num_vars = 2;
    degree;
    width = 16;
  }

(* Quadratic (Volterra) filter section after Mathews-Sicuranza: two output
   channels, each a full quadratic kernel in the two input samples; the
   symmetric kernels give the perfect-square structure such filters
   exhibit. *)
let quad =
  {
    name = "Quad";
    polys =
      [
        p "4*x^2 + 8*x*y + 4*y^2 + 5*x + 10*y + 3";
        p "6*x^2 + 12*x*y + 6*y^2 + 7*x - 7*y + 2";
      ];
    num_vars = 2;
    degree = 2;
    width = 16;
  }

(* MiBench automotive-style kernel (e.g. the quadratic smoothing/corner
   response of susan): two outputs over three 8-bit inputs. *)
let mibench =
  {
    name = "Mibench";
    polys =
      [
        p "2*x^2 + 4*x*y + 2*y^2 + 3*z^2 + 6*z + 3";
        p "4*x^2 + 4*x*z + z^2 + 5*y^2 + 10*y + 5";
      ];
    num_vars = 3;
    degree = 2;
    width = 8;
  }

(* Multivariate cosine wavelet (Hosangadi et al.): a scaled degree-3
   truncation of the modulated carrier sin(x + 2y), i.e.
   256*(x+2y)^3 - 1536*(x+2y) expanded. *)
let mvcs =
  {
    name = "MVCS";
    polys =
      [
        p "256*x^3 + 1536*x^2*y + 3072*x*y^2 + 2048*y^3 - 1536*x - 3072*y";
      ];
    num_vars = 2;
    degree = 3;
    width = 16;
  }

let all () =
  [
    sg "SG 3x2" 3 2;
    sg "SG 4x2" 4 2;
    sg "SG 4x3" 4 3;
    sg "SG 5x2" 5 2;
    sg "SG 5x3" 5 3;
    quad;
    mibench;
    mvcs;
  ]

let by_name name = List.find_opt (fun b -> b.name = name) (all ())

let characteristics_ok b =
  let vars =
    List.sort_uniq String.compare (List.concat_map Poly.vars b.polys)
  in
  List.length vars = b.num_vars
  && List.for_all (fun q -> Poly.degree q <= b.degree) b.polys
  && List.exists (fun q -> Poly.degree q = b.degree) b.polys
  && List.length b.polys > 0
