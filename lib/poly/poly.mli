(** Sparse multivariate polynomials with {!Polysynth_zint.Zint} (exact
    integer) coefficients.

    Terms are kept sorted in descending graded-lex order with non-zero
    coefficients, so structural equality coincides with mathematical
    equality. *)

module Z := Polysynth_zint.Zint

type t

(** {1 Construction} *)

val zero : t
val one : t
val const : Z.t -> t
val of_int : int -> t
val var : ?exp:int -> string -> t
val term : Z.t -> Monomial.t -> t
val of_terms : (Z.t * Monomial.t) list -> t
(** Combines duplicate monomials and drops zero coefficients. *)

val monomial : Monomial.t -> t

val of_sorted_terms : (Z.t * Monomial.t) list -> t
(** Trusted O(1) constructor: the caller guarantees the terms are already
    in strictly descending graded-lex order with non-zero coefficients —
    e.g. the image of [terms p] under a strictly order-preserving monomial
    map, such as division of every term by a common cube.  Use
    {!of_terms} whenever that is not certain. *)

(** {1 Observation} *)

val terms : t -> (Z.t * Monomial.t) list
(** Descending graded-lex order. *)

val num_terms : t -> int
val is_zero : t -> bool
val is_const : t -> bool
val to_const_opt : t -> Z.t option
val coeff : t -> Monomial.t -> Z.t
val constant_term : t -> Z.t

val leading : t -> Z.t * Monomial.t
(** @raise Invalid_argument on the zero polynomial. *)

val degree : t -> int
(** Total degree; [-1] for the zero polynomial. *)

val degree_in : string -> t -> int
val vars : t -> string list
(** Sorted, without duplicates. *)

val mentions : string -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Ring operations} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_scalar : Z.t -> t -> t
val mul_term : Z.t -> Monomial.t -> t -> t
val pow : t -> int -> t
(** @raise Invalid_argument on a negative exponent. *)

val add_list : t list -> t

(** {1 Division and content} *)

val div_exact : t -> t -> t option
(** [div_exact a b] is [Some q] when [a = q*b] exactly over [Z]. *)

val div_rem : t -> t -> t * t
(** Multivariate division with remainder: [div_rem a b = (q, r)] with
    [a = q*b + r], where no term of [r] is reducible by the leading term of
    [b] (monomial and coefficient divisibility).
    @raise Division_by_zero when [b] is zero. *)

val divides : t -> t -> bool

val content : t -> Z.t
(** Non-negative gcd of all coefficients; [0] for the zero polynomial. *)

val primitive_part : t -> t
(** [p = content p * primitive_part p] with the leading coefficient of the
    primitive part positive.  Zero maps to zero. *)

val div_scalar_exact : t -> Z.t -> t
(** @raise Invalid_argument when some coefficient is not divisible. *)

(** {1 Calculus, substitution, evaluation} *)

val derivative : string -> t -> t

val eval : (string -> Z.t) -> t -> Z.t

val eval_partial : (string * Z.t) list -> t -> t
(** Substitute constants for some of the variables. *)

val subst : string -> t -> t -> t
(** [subst x q p] replaces every occurrence of variable [x] in [p] by the
    polynomial [q]. *)

val shift : (string * Z.t) list -> t -> t
(** [shift [(x, c); ...] p] substitutes [x + c] for [x] (used by the
    Savitzky-Golay window generator). *)

(** {1 Univariate views} *)

val coeffs_in : string -> t -> (int * t) list
(** [coeffs_in x p] writes [p = sum_k c_k(other vars) * x^k] and returns the
    non-zero [(k, c_k)] pairs in increasing [k]. *)

val of_coeffs_in : string -> (int * t) list -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
