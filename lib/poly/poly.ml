module Z = Polysynth_zint.Zint

module Mtbl = Hashtbl.Make (struct
  type t = Monomial.t

  let equal = Monomial.equal
  let hash = Monomial.hash
end)

(* Terms in descending graded-lex order, all coefficients non-zero. *)
type t = (Z.t * Monomial.t) list

let zero = []

let term c m = if Z.is_zero c then zero else [ (c, m) ]

let const c = term c Monomial.one
let of_int n = const (Z.of_int n)
let one = of_int 1
let var ?exp name = term Z.one (Monomial.var ?exp name)
let monomial m = term Z.one m

(* Combine duplicates through a hashtable on the monomials' precomputed
   hashes (O(n) expected) and sort the surviving terms once, instead of
   the O(n log n) comparison-heavy [Map.Make(Monomial)] churn. *)
let of_terms list =
  match list with
  | [] -> zero
  | [ (c, m) ] -> term c m
  | list ->
    let tbl = Mtbl.create 32 in
    List.iter
      (fun (c, m) ->
        match Mtbl.find_opt tbl m with
        | Some c0 -> Mtbl.replace tbl m (Z.add c0 c)
        | None -> Mtbl.add tbl m c)
      list;
    let terms =
      Mtbl.fold (fun m c acc -> if Z.is_zero c then acc else (c, m) :: acc) tbl []
    in
    List.sort (fun (_, m1) (_, m2) -> Monomial.compare m2 m1) terms

let of_sorted_terms list = (list : t)

let terms p = p
let num_terms p = List.length p
let is_zero p = p = []

let is_const = function
  | [] -> true
  | [ (_, m) ] -> Monomial.is_one m
  | _ :: _ :: _ -> false

let to_const_opt = function
  | [] -> Some Z.zero
  | [ (c, m) ] when Monomial.is_one m -> Some c
  | _ -> None

let coeff p m =
  let rec go = function
    | [] -> Z.zero
    | (c, m') :: rest ->
      let cmp = Monomial.compare m' m in
      if cmp = 0 then c else if cmp < 0 then Z.zero else go rest
  in
  go p

let constant_term p = coeff p Monomial.one

let leading = function
  | [] -> invalid_arg "Poly.leading: zero polynomial"
  | (c, m) :: _ -> (c, m)

let degree = function
  | [] -> -1
  | (_, m) :: _ -> Monomial.degree m

let degree_in v p =
  List.fold_left (fun acc (_, m) -> Stdlib.max acc (Monomial.degree_of v m)) 0 p

let vars p =
  List.sort_uniq String.compare
    (List.concat_map (fun (_, m) -> Monomial.vars m) p)

let mentions v p = List.exists (fun (_, m) -> Monomial.mentions v m) p

let equal (a : t) (b : t) =
  try List.for_all2 (fun (c, m) (c', m') -> Z.equal c c' && Monomial.equal m m') a b
  with Invalid_argument _ -> false

let compare a b =
  let rec go a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ca, ma) :: ra, (cb, mb) :: rb ->
      let c = Monomial.compare ma mb in
      if c <> 0 then c
      else
        let c = Z.compare ca cb in
        if c <> 0 then c else go ra rb
  in
  go a b

let hash p =
  List.fold_left
    (fun acc (c, m) -> (acc * 8191 + Z.hash c + (Monomial.hash m * 31)) land max_int)
    3 p

let neg p = List.map (fun (c, m) -> (Z.neg c, m)) p

let rec add a b =
  match a, b with
  | [], p | p, [] -> p
  | (ca, ma) :: ra, (cb, mb) :: rb ->
    let cmp = Monomial.compare ma mb in
    if cmp > 0 then (ca, ma) :: add ra b
    else if cmp < 0 then (cb, mb) :: add a rb
    else
      let c = Z.add ca cb in
      if Z.is_zero c then add ra rb else (c, ma) :: add ra rb

let sub a b = add a (neg b)

let mul_term c m p =
  if Z.is_zero c then zero
  else List.map (fun (c', m') -> (Z.mul c c', Monomial.mul m m')) p

let mul_scalar c p = mul_term c Monomial.one p

let mul a b =
  match a, b with
  | [], _ | _, [] -> zero
  | _ ->
    List.fold_left (fun acc (c, m) -> add acc (mul_term c m b)) zero a

let pow p e =
  if e < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc base) (mul base base) (e lsr 1)
    else go acc (mul base base) (e lsr 1)
  in
  go one p e

let add_list ps = List.fold_left add zero ps

let div_rem a b =
  if is_zero b then raise Division_by_zero;
  let cb, mb = leading b in
  let rec go q r =
    match r with
    | [] -> (q, r)
    | (cr, mr) :: _ ->
      (match Monomial.div mr mb with
       | Some mq when Z.divides cb cr ->
         let cq = Z.divexact cr cb in
         let t = term cq mq in
         go (add q t) (sub r (mul_term cq mq b))
       | Some _ | None ->
         (* move the irreducible leading term into the remainder and keep
            dividing what is left *)
         let qrest, rrest = go q (List.tl r) in
         (qrest, (cr, mr) :: rrest))
  in
  go zero a

let div_exact a b =
  if is_zero b then None
  else
    let q, r = div_rem a b in
    if is_zero r then Some q else None

let divides b a = match div_exact a b with Some _ -> true | None -> false

let content p =
  List.fold_left (fun acc (c, _) -> Z.gcd acc c) Z.zero p

let div_scalar_exact p c =
  if Z.is_zero c then invalid_arg "Poly.div_scalar_exact: zero divisor";
  List.map
    (fun (c', m) ->
      if Z.divides c c' then (Z.divexact c' c, m)
      else invalid_arg "Poly.div_scalar_exact: inexact")
    p

let primitive_part p =
  match p with
  | [] -> zero
  | (lc, _) :: _ ->
    let c = content p in
    let c = if Z.is_negative lc then Z.neg c else c in
    div_scalar_exact p c

let derivative v p =
  List.fold_left
    (fun acc (c, m) ->
      let e = Monomial.degree_of v m in
      if e = 0 then acc
      else
        let m' =
          if e = 1 then Monomial.remove_var v m
          else Monomial.mul (Monomial.remove_var v m) (Monomial.var ~exp:(e - 1) v)
        in
        add acc (term (Z.mul_int c e) m'))
    zero p

let eval env p =
  List.fold_left
    (fun acc (c, m) -> Z.add acc (Z.mul c (Monomial.eval env m)))
    Z.zero p

let subst x q p =
  List.fold_left
    (fun acc (c, m) ->
      let e = Monomial.degree_of x m in
      if e = 0 then add acc (term c m)
      else
        let rest = Monomial.remove_var x m in
        add acc (mul_term c rest (pow q e)))
    zero p

let eval_partial bindings p =
  List.fold_left (fun p (x, c) -> subst x (const c) p) p bindings

let shift offsets p =
  List.fold_left
    (fun p (x, c) -> subst x (add (var x) (const c)) p)
    p offsets

let coeffs_in x p =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, m) ->
      let e = Monomial.degree_of x m in
      let rest = Monomial.remove_var x m in
      let prev = match Hashtbl.find_opt tbl e with Some p -> p | None -> zero in
      Hashtbl.replace tbl e (add prev (term c rest)))
    p;
  Hashtbl.fold (fun e c acc -> if is_zero c then acc else (e, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let of_coeffs_in x coeffs =
  List.fold_left
    (fun acc (e, c) ->
      let xe = if e = 0 then one else var ~exp:e x in
      add acc (mul c xe))
    zero coeffs

let to_string p =
  if is_zero p then "0"
  else begin
    let buf = Buffer.create 64 in
    List.iteri
      (fun i (c, m) ->
        let neg = Z.is_negative c in
        let cabs = Z.abs c in
        if i = 0 then (if neg then Buffer.add_char buf '-')
        else Buffer.add_string buf (if neg then " - " else " + ");
        if Monomial.is_one m then Buffer.add_string buf (Z.to_string cabs)
        else begin
          if not (Z.is_one cabs) then begin
            Buffer.add_string buf (Z.to_string cabs);
            Buffer.add_char buf '*'
          end;
          Buffer.add_string buf (Monomial.to_string m)
        end)
      p;
    Buffer.contents buf
  end

let pp fmt p = Format.pp_print_string fmt (to_string p)
