module Z = Polysynth_zint.Zint

(* Interned packed representation: [pairs] interleaves (variable id,
   exponent) with exponents strictly positive, sorted by the alphabetical
   rank of the id's name (see {!Symtab} — that order is append-stable, so
   the array never needs resorting).  Total degree and a structural hash
   are precomputed, making [degree]/[hash] O(1) and giving [equal] and the
   hashtable paths an O(1) negative fast path; all the merge loops
   ([mul]/[div]/[gcd]/[lcm]/[compare]) run on ints only. *)
type t = {
  pairs : int array;  (* id0; e0; id1; e1; ... *)
  degree : int;
  hash : int;
}

let compute_degree pairs =
  let d = ref 0 in
  let n = Array.length pairs in
  let i = ref 1 in
  while !i < n do
    d := !d + pairs.(!i);
    i := !i + 2
  done;
  !d

let compute_hash pairs =
  Array.fold_left (fun acc x -> ((acc * 131) + x) land max_int) 17 pairs

let mk pairs =
  { pairs; degree = compute_degree pairs; hash = compute_hash pairs }

let degree m = m.degree
let hash m = m.hash
let is_one m = Array.length m.pairs = 0

let structural_equal a b =
  a == b
  || (a.hash = b.hash && a.degree = b.degree
      &&
      let pa = a.pairs and pb = b.pairs in
      let n = Array.length pa in
      n = Array.length pb
      &&
      let rec go i = i >= n || (pa.(i) = pb.(i) && go (i + 1)) in
      go 0)

let equal = structural_equal

(* ---- hash-consing ------------------------------------------------------ *)

(* Optional sharing: structurally equal monomials built through the
   string-based constructors are physically shared across a synthesis run,
   turning their [equal] into pointer equality.  The weak set lets the GC
   reclaim monomials no longer referenced anywhere else.  The hot integer
   merge loops below do NOT pay the table lookup; sharing is applied where
   monomials enter the system ([var]/[of_list]) and on demand via
   [hashcons]. *)
module HC = Weak.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash m = m.hash
end)

let hc_table = HC.create 4096
let hc_lock = Mutex.create ()
let hashcons m = Mutex.protect hc_lock (fun () -> HC.merge hc_table m)

let one = hashcons (mk [||])

(* the exponent-1 monomial of every interned variable, cached per id so the
   extraction loops' ubiquitous [Monomial.var v] is an array load *)
let var_cache = Atomic.make ([||] : t array)
let var_lock = Mutex.create ()

let of_var_id id =
  let cache = Atomic.get var_cache in
  if id < Array.length cache then cache.(id)
  else
    Mutex.protect var_lock (fun () ->
        let cache = Atomic.get var_cache in
        if id < Array.length cache then cache.(id)
        else begin
          let n = Symtab.size () in
          let fresh =
            Array.init n (fun i ->
                if i < Array.length cache then cache.(i)
                else hashcons (mk [| i; 1 |]))
          in
          Atomic.set var_cache fresh;
          fresh.(id)
        end)

let var ?(exp = 1) name =
  if exp <= 0 then invalid_arg "Monomial.var: non-positive exponent";
  if String.length name = 0 then invalid_arg "Monomial.var: empty name";
  let id = Symtab.intern name in
  if exp = 1 then of_var_id id else hashcons (mk [| id; exp |])

let of_list bindings =
  match bindings with
  | [] -> one
  | bindings ->
    let arr =
      Array.of_list
        (List.map
           (fun (v, e) ->
             if e < 0 then invalid_arg "Monomial.of_list: negative exponent";
             (Symtab.intern v, e))
           bindings)
    in
    let rk = Symtab.ranks () in
    Array.sort (fun (a, _) (b, _) -> Int.compare rk.(a) rk.(b)) arr;
    (* single left-to-right pass: duplicates are adjacent after the sort *)
    let out = Array.make (2 * Array.length arr) 0 in
    let k = ref 0 in
    Array.iter
      (fun (id, e) ->
        if !k > 0 && out.(!k - 2) = id then out.(!k - 1) <- out.(!k - 1) + e
        else begin
          out.(!k) <- id;
          out.(!k + 1) <- e;
          k := !k + 2
        end)
      arr;
    (* compact away zero exponents *)
    let nonzero = ref 0 in
    let i = ref 0 in
    while !i < !k do
      if out.(!i + 1) > 0 then incr nonzero;
      i := !i + 2
    done;
    let pairs = Array.make (2 * !nonzero) 0 in
    let j = ref 0 in
    let i = ref 0 in
    while !i < !k do
      if out.(!i + 1) > 0 then begin
        pairs.(!j) <- out.(!i);
        pairs.(!j + 1) <- out.(!i + 1);
        j := !j + 2
      end;
      i := !i + 2
    done;
    if Array.length pairs = 0 then one else hashcons (mk pairs)

let to_list m =
  let n = Array.length m.pairs in
  let rec go i =
    if i >= n then []
    else (Symtab.name_of m.pairs.(i), m.pairs.(i + 1)) :: go (i + 2)
  in
  go 0

let fold f acc m =
  let n = Array.length m.pairs in
  let rec go acc i =
    if i >= n then acc
    else go (f acc (Symtab.name_of m.pairs.(i)) m.pairs.(i + 1)) (i + 2)
  in
  go acc 0

let find_id m id =
  let n = Array.length m.pairs in
  let rec go i =
    if i >= n then 0 else if m.pairs.(i) = id then m.pairs.(i + 1) else go (i + 2)
  in
  go 0

let degree_of v m =
  match Symtab.find v with None -> 0 | Some id -> find_id m id

let mentions v m = degree_of v m > 0

let mentions_id id m = find_id m id > 0

let var_ids m =
  let n = Array.length m.pairs / 2 in
  Array.init n (fun i -> m.pairs.(2 * i))

let var_of_id id =
  if id < 0 || id >= Symtab.size () then
    invalid_arg "Monomial.var_of_id: unknown id";
  of_var_id id

let vars m =
  let n = Array.length m.pairs in
  let rec go i =
    if i >= n then [] else Symtab.name_of m.pairs.(i) :: go (i + 2)
  in
  go 0

(* Graded lexicographic order: total degree first, ties broken
   lexicographically with alphabetically-earlier variables more significant.
   This is a genuine monomial order (compatible with multiplication, with 1
   minimal), which the polynomial division algorithms rely on.  Variable
   comparisons go through the rank snapshot: the relative order of two
   interned variables is append-stable, so results never change as more
   variables are interned. *)
let compare a b =
  if a == b then 0
  else
    let c = Int.compare a.degree b.degree in
    if c <> 0 then c
    else begin
      let rk = Symtab.ranks () in
      let pa = a.pairs and pb = b.pairs in
      let na = Array.length pa and nb = Array.length pb in
      let rec lex i j =
        if i >= na then (if j >= nb then 0 else -1)
        else if j >= nb then 1
        else
          let ra = rk.(pa.(i)) and rb = rk.(pb.(j)) in
          if ra < rb then 1
          else if ra > rb then -1
          else
            let ea = pa.(i + 1) and eb = pb.(j + 1) in
            if ea <> eb then Int.compare ea eb else lex (i + 2) (j + 2)
      in
      lex 0 0
    end

let mul a b =
  if is_one a then b
  else if is_one b then a
  else begin
    let rk = Symtab.ranks () in
    let pa = a.pairs and pb = b.pairs in
    let na = Array.length pa and nb = Array.length pb in
    let out = Array.make (na + nb) 0 in
    let rec go i j k =
      if i >= na && j >= nb then k
      else if j >= nb || (i < na && rk.(pa.(i)) < rk.(pb.(j))) then begin
        out.(k) <- pa.(i);
        out.(k + 1) <- pa.(i + 1);
        go (i + 2) j (k + 2)
      end
      else if i >= na || rk.(pb.(j)) < rk.(pa.(i)) then begin
        out.(k) <- pb.(j);
        out.(k + 1) <- pb.(j + 1);
        go i (j + 2) (k + 2)
      end
      else begin
        out.(k) <- pa.(i);
        out.(k + 1) <- pa.(i + 1) + pb.(j + 1);
        go (i + 2) (j + 2) (k + 2)
      end
    in
    let k = go 0 0 0 in
    mk (if k = na + nb then out else Array.sub out 0 k)
  end

let divides d m =
  d.degree <= m.degree
  &&
  let rk = Symtab.ranks () in
  let pd = d.pairs and pm = m.pairs in
  let nd = Array.length pd and nm = Array.length pm in
  let rec go i j =
    if i >= nd then true
    else if j >= nm then false
    else
      let rd = rk.(pd.(i)) and rm = rk.(pm.(j)) in
      if rd < rm then false
      else if rd > rm then go i (j + 2)
      else pd.(i + 1) <= pm.(j + 1) && go (i + 2) (j + 2)
  in
  go 0 0

let div m d =
  if is_one d then Some m
  else if d.degree > m.degree then None
  else begin
    let rk = Symtab.ranks () in
    let pm = m.pairs and pd = d.pairs in
    let nm = Array.length pm and nd = Array.length pd in
    let out = Array.make nm 0 in
    let rec go i j k =
      if j >= nd then begin
        (* copy what is left of m *)
        let rec copy i k =
          if i >= nm then Some k
          else begin
            out.(k) <- pm.(i);
            out.(k + 1) <- pm.(i + 1);
            copy (i + 2) (k + 2)
          end
        in
        copy i k
      end
      else if i >= nm then None
      else
        let rm = rk.(pm.(i)) and rd = rk.(pd.(j)) in
        if rm < rd then begin
          out.(k) <- pm.(i);
          out.(k + 1) <- pm.(i + 1);
          go (i + 2) j (k + 2)
        end
        else if rm > rd then None
        else
          let e = pm.(i + 1) - pd.(j + 1) in
          if e < 0 then None
          else if e = 0 then go (i + 2) (j + 2) k
          else begin
            out.(k) <- pm.(i);
            out.(k + 1) <- e;
            go (i + 2) (j + 2) (k + 2)
          end
    in
    match go 0 0 0 with
    | None -> None
    | Some 0 -> Some one
    | Some k -> Some (mk (if k = nm then out else Array.sub out 0 k))
  end

let gcd a b =
  if is_one a || is_one b then one
  else begin
    let rk = Symtab.ranks () in
    let pa = a.pairs and pb = b.pairs in
    let na = Array.length pa and nb = Array.length pb in
    let out = Array.make (Stdlib.min na nb) 0 in
    let rec go i j k =
      if i >= na || j >= nb then k
      else
        let ra = rk.(pa.(i)) and rb = rk.(pb.(j)) in
        if ra < rb then go (i + 2) j k
        else if ra > rb then go i (j + 2) k
        else begin
          out.(k) <- pa.(i);
          out.(k + 1) <- Stdlib.min pa.(i + 1) pb.(j + 1);
          go (i + 2) (j + 2) (k + 2)
        end
    in
    match go 0 0 0 with
    | 0 -> one
    | k -> mk (if k = Array.length out then out else Array.sub out 0 k)
  end

let lcm a b =
  if is_one a then b
  else if is_one b then a
  else begin
    let rk = Symtab.ranks () in
    let pa = a.pairs and pb = b.pairs in
    let na = Array.length pa and nb = Array.length pb in
    let out = Array.make (na + nb) 0 in
    let rec go i j k =
      if i >= na && j >= nb then k
      else if j >= nb || (i < na && rk.(pa.(i)) < rk.(pb.(j))) then begin
        out.(k) <- pa.(i);
        out.(k + 1) <- pa.(i + 1);
        go (i + 2) j (k + 2)
      end
      else if i >= na || rk.(pb.(j)) < rk.(pa.(i)) then begin
        out.(k) <- pb.(j);
        out.(k + 1) <- pb.(j + 1);
        go i (j + 2) (k + 2)
      end
      else begin
        out.(k) <- pa.(i);
        out.(k + 1) <- Stdlib.max pa.(i + 1) pb.(j + 1);
        go (i + 2) (j + 2) (k + 2)
      end
    in
    let k = go 0 0 0 in
    mk (if k = na + nb then out else Array.sub out 0 k)
  end

let remove_var v m =
  match Symtab.find v with
  | None -> m
  | Some id ->
    if find_id m id = 0 then m
    else begin
      let n = Array.length m.pairs in
      let pairs = Array.make (n - 2) 0 in
      let k = ref 0 in
      let i = ref 0 in
      while !i < n do
        if m.pairs.(!i) <> id then begin
          pairs.(!k) <- m.pairs.(!i);
          pairs.(!k + 1) <- m.pairs.(!i + 1);
          k := !k + 2
        end;
        i := !i + 2
      done;
      if Array.length pairs = 0 then one else mk pairs
    end

let eval env m =
  let n = Array.length m.pairs in
  let rec go acc i =
    if i >= n then acc
    else
      go
        (Z.mul acc (Z.pow (env (Symtab.name_of m.pairs.(i))) m.pairs.(i + 1)))
        (i + 2)
  in
  go Z.one 0

let to_string m =
  if is_one m then "1"
  else
    String.concat "*"
      (List.map
         (fun (v, e) -> if e = 1 then v else Printf.sprintf "%s^%d" v e)
         (to_list m))

let pp fmt m = Format.pp_print_string fmt (to_string m)
