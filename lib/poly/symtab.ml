(* Global variable interning.

   Names are mapped to dense integer ids in first-intern order; alongside
   the id we maintain each id's alphabetical rank among all interned names
   so that the graded-lex monomial order can compare variables with two
   int-array loads instead of a string comparison.  The relative
   alphabetical order of two interned names never changes when a third is
   added, so data sorted by rank stays sorted forever; only the rank
   *values* shift, which is why readers take a fresh snapshot.

   Published snapshots are immutable: readers [Atomic.get] the current one
   and never lock, writers copy, extend and publish under [lock].  Interning
   is rare (variables number in the dozens) and lookups are the hot path, so
   copy-on-write is the right trade. *)

type snapshot = {
  ids : (string, int) Hashtbl.t;  (* never mutated once published *)
  names : string array;           (* id -> name *)
  ranks : int array;              (* id -> alphabetical rank *)
}

let empty =
  { ids = Hashtbl.create 64; names = [||]; ranks = [||] }

let state = Atomic.make empty
let lock = Mutex.create ()

let size () = Array.length (Atomic.get state).names

let find name = Hashtbl.find_opt (Atomic.get state).ids name

let intern name =
  if String.length name = 0 then invalid_arg "Symtab.intern: empty name";
  let s = Atomic.get state in
  match Hashtbl.find_opt s.ids name with
  | Some id -> id
  | None ->
    Mutex.protect lock (fun () ->
        (* re-check: another domain may have interned it meanwhile *)
        let s = Atomic.get state in
        match Hashtbl.find_opt s.ids name with
        | Some id -> id
        | None ->
          let id = Array.length s.names in
          let ids = Hashtbl.copy s.ids in
          Hashtbl.add ids name id;
          let names = Array.append s.names [| name |] in
          let below =
            Array.fold_left
              (fun acc n -> if String.compare n name < 0 then acc + 1 else acc)
              0 s.names
          in
          let ranks = Array.make (id + 1) below in
          Array.iteri
            (fun i r -> ranks.(i) <- (if r >= below then r + 1 else r))
            s.ranks;
          Atomic.set state { ids; names; ranks };
          id)

let name_of id =
  let s = Atomic.get state in
  if id < 0 || id >= Array.length s.names then
    invalid_arg "Symtab.name_of: unknown id";
  s.names.(id)

let ranks () = (Atomic.get state).ranks

let rank_of id =
  let r = ranks () in
  if id < 0 || id >= Array.length r then
    invalid_arg "Symtab.rank_of: unknown id";
  r.(id)
