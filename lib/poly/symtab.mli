(** Interning of variable names to dense integer ids.

    The symbol table is global and append-only: a name, once interned,
    keeps its id for the lifetime of the process, and ids are dense
    ([0 .. size () - 1]).  Alongside the id the table maintains each
    variable's {e alphabetical rank} among all interned names, which is
    what the monomial order compares — so the interned representation
    preserves the alphabetical graded-lex semantics of the original
    string-keyed one exactly, while comparing variables with integer
    loads.

    All operations are domain-safe: lookups are lock-free reads of an
    immutable snapshot, interning publishes a fresh snapshot under a
    lock. *)

val intern : string -> int
(** The id of the name, interning it first if needed.
    @raise Invalid_argument on the empty string. *)

val find : string -> int option
(** The id of an already-interned name, without interning. *)

val name_of : int -> string
(** Inverse of {!intern}.  @raise Invalid_argument on an unknown id. *)

val rank_of : int -> int
(** Alphabetical rank of the id's name among all interned names.  Ranks
    shift as new names are interned, but the relative order of two fixed
    ids never changes. *)

val ranks : unit -> int array
(** The current id -> rank table as one consistent snapshot; index it with
    ids obtained before the call.  Taking one snapshot per bulk operation
    is the intended hot-path usage. *)

val size : unit -> int
(** Number of interned names. *)
