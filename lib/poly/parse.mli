(** Text syntax for polynomials.

    Grammar (whitespace-insensitive):
    {v
      expr   ::= ['-'] term (('+' | '-') term)*
      term   ::= factor ('*' factor)*
      factor ::= atom ['^' nat]
      atom   ::= nat | ident | '(' expr ')'
    v}
    Identifiers match [[A-Za-z_][A-Za-z0-9_]*]; numbers are unsigned decimal
    naturals (sign comes from the grammar).  Example:
    ["4*x^2*y^2 - 4*x*y + 5*(x + 3*y)^2"]. *)

type error = [ `Parse of string ]
(** A human-readable message with the offending position.  Shared with
    {!Polysynth_expr.Prog_parse.error} so callers can handle both parsers
    with one match. *)

exception Parse_error of string
(** Raised by the [_exn] conveniences only. *)

val poly : string -> (Poly.t, error) result

val system : string -> (Poly.t list, error) result
(** Parses a list of polynomials separated by [';'] or newlines; blank
    entries and [#]-to-end-of-line comments are ignored. *)

val poly_exn : string -> Poly.t
(** @raise Parse_error on malformed input. *)

val system_exn : string -> Poly.t list
(** @raise Parse_error on malformed input. *)
