(** Power products of variables ("cubes" without sign/coefficient in the
    paper's terminology, e.g. [x^2*y]).

    A monomial maps variable names to strictly positive exponents.  The
    ordering is graded lexicographic: higher total degree first, then
    lexicographic on variable names.

    Internally variables are interned through {!Symtab} and a monomial is
    a packed integer array carrying a precomputed hash and total degree:
    [degree], [hash] and the negative case of [equal] are O(1), and
    [compare]/[mul]/[div]/[gcd]/[lcm] are integer-only merge loops.  The
    string-based API below is unchanged and remains the public surface. *)

type t

val one : t
(** The empty power product. *)

val var : ?exp:int -> string -> t
(** [var x] is the monomial [x]; [var ~exp:k x] is [x^k].
    @raise Invalid_argument when [exp <= 0] or the name is empty. *)

val of_list : (string * int) list -> t
(** Duplicates are combined; zero exponents dropped.
    @raise Invalid_argument on a negative exponent. *)

val to_list : t -> (string * int) list
(** Sorted by variable name. *)

val is_one : t -> bool
val degree : t -> int
(** Total degree. *)

val degree_of : string -> t -> int
(** Exponent of the given variable (0 when absent). *)

val vars : t -> string list
(** Sorted variable names. *)

val mentions : string -> t -> bool

(** {2 Interned-id views}

    Hot loops that repeatedly probe the same variables can pre-intern the
    names once (via {!Symtab.intern}) and use these id-level entry points,
    skipping the per-call name lookup. *)

val var_ids : t -> int array
(** The interned ids of the monomial's variables, in name order. *)

val mentions_id : int -> t -> bool
(** [mentions_id (Symtab.intern v) m] = [mentions v m]. *)

val var_of_id : int -> t
(** The exponent-1 monomial of an interned variable id (physically
    shared).  @raise Invalid_argument on an unknown id. *)

val fold : ('a -> string -> int -> 'a) -> 'a -> t -> 'a
(** [fold f acc m] folds over the (variable, exponent) pairs in name
    order without building the intermediate list of {!to_list}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Graded lexicographic order. *)

val hash : t -> int
(** Precomputed structural hash (O(1)). *)

val hashcons : t -> t
(** The canonical physically-shared copy of the monomial: structurally
    equal arguments return the same pointer for the lifetime of the value.
    The constructors going through variable names ({!var}, {!of_list})
    already return shared monomials; results of the arithmetic operations
    are not shared unless passed through here. *)

val mul : t -> t -> t

val divides : t -> t -> bool
(** [divides d m]: every exponent of [d] is at most that of [m]. *)

val div : t -> t -> t option
(** [div m d] is [Some (m/d)] when [d] divides [m]. *)

val gcd : t -> t -> t
val lcm : t -> t -> t

val remove_var : string -> t -> t
(** Drop one variable entirely. *)

val eval : (string -> Polysynth_zint.Zint.t) -> t -> Polysynth_zint.Zint.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
