module Z = Polysynth_zint.Zint

type error = [ `Parse of string ]

exception Parse_error of string

type token =
  | Tnum of Z.t
  | Tident of string
  | Tplus
  | Tminus
  | Tstar
  | Tcaret
  | Tlparen
  | Trparen
  | Tend

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := (t, !i) :: !tokens in
  while !i < n do
    (match s.[!i] with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '+' -> push Tplus; incr i
     | '-' -> push Tminus; incr i
     | '*' -> push Tstar; incr i
     | '^' -> push Tcaret; incr i
     | '(' -> push Tlparen; incr i
     | ')' -> push Trparen; incr i
     | '0' .. '9' ->
       let start = !i in
       while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
         incr i
       done;
       tokens := (Tnum (Z.of_string (String.sub s start (!i - start))), start) :: !tokens
     | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
       let start = !i in
       while
         !i < n
         && (match s.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
       do
         incr i
       done;
       tokens := (Tident (String.sub s start (!i - start)), start) :: !tokens
     | c -> fail !i (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev ((Tend, n) :: !tokens)

type state = { mutable stream : (token * int) list }

let peek st =
  match st.stream with
  | [] -> (Tend, 0)
  | tok :: _ -> tok

let advance st =
  match st.stream with
  | [] -> ()
  | _ :: rest -> st.stream <- rest

let expect st tok msg =
  let t, pos = peek st in
  if t = tok then advance st else fail pos msg

let parse_nat st =
  match peek st with
  | Tnum z, pos ->
    advance st;
    (match Z.to_int_opt z with
     | Some n -> n
     | None -> fail pos "exponent too large")
  | _, pos -> fail pos "expected a number"

let rec parse_expr st =
  let first =
    match peek st with
    | Tminus, _ ->
      advance st;
      Poly.neg (parse_term st)
    | _ -> parse_term st
  in
  let rec loop acc =
    match peek st with
    | Tplus, _ ->
      advance st;
      loop (Poly.add acc (parse_term st))
    | Tminus, _ ->
      advance st;
      loop (Poly.sub acc (parse_term st))
    | _ -> acc
  in
  loop first

and parse_term st =
  let first = parse_factor st in
  let rec loop acc =
    match peek st with
    | Tstar, _ ->
      advance st;
      loop (Poly.mul acc (parse_factor st))
    | _ -> acc
  in
  loop first

and parse_factor st =
  let base = parse_atom st in
  match peek st with
  | Tcaret, _ ->
    advance st;
    Poly.pow base (parse_nat st)
  | _ -> base

and parse_atom st =
  match peek st with
  | Tnum z, _ ->
    advance st;
    Poly.const z
  | Tident v, _ ->
    advance st;
    Poly.var v
  | Tlparen, _ ->
    advance st;
    let e = parse_expr st in
    expect st Trparen "expected ')'";
    e
  | (Tplus | Tminus | Tstar | Tcaret | Trparen | Tend), pos ->
    fail pos "expected a number, variable or '('"

let poly_exn s =
  let st = { stream = tokenize s } in
  let e = parse_expr st in
  (match peek st with
   | Tend, _ -> ()
   | _, pos -> fail pos "trailing input");
  e

let strip_comments line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let system_exn s =
  String.split_on_char '\n' s
  |> List.map strip_comments
  |> List.concat_map (String.split_on_char ';')
  |> List.filter_map (fun chunk ->
         if String.trim chunk = "" then None else Some (poly_exn chunk))

let poly s = try Ok (poly_exn s) with Parse_error msg -> Error (`Parse msg)

let system s =
  try Ok (system_exn s) with Parse_error msg -> Error (`Parse msg)
