module Parse = Polysynth_poly.Parse

type error = [ `Parse of string ]

exception Parse_error of string

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let program_exn text =
  let entries =
    String.split_on_char '\n' text
    |> List.map strip_comment
    |> List.concat_map (String.split_on_char ';')
    |> List.filter (fun s -> String.trim s <> "")
  in
  let parse_entry chunk =
    match String.index_opt chunk '=' with
    | None -> raise (Parse_error ("missing '=' in: " ^ String.trim chunk))
    | Some i ->
      let name = String.trim (String.sub chunk 0 i) in
      let rhs = String.sub chunk (i + 1) (String.length chunk - i - 1) in
      if not (is_ident name) then
        raise (Parse_error ("bad definition name: " ^ name));
      let expr =
        match Parse.poly rhs with
        | Ok poly -> Expr.of_poly poly
        | Error (`Parse msg) -> raise (Parse_error (name ^ ": " ^ msg))
      in
      (name, expr)
  in
  let defs = List.map parse_entry entries in
  if defs = [] then raise (Parse_error "empty program");
  (* duplicate and forward-reference checks *)
  let rec check_scope seen = function
    | [] -> ()
    | (name, expr) :: rest ->
      if List.mem name seen then
        raise (Parse_error ("duplicate definition of " ^ name));
      List.iter
        (fun v ->
          let defined_later = List.mem_assoc v rest in
          if defined_later && not (List.mem v seen) then
            raise (Parse_error ("forward reference to " ^ v ^ " in " ^ name)))
        (Expr.vars expr);
      check_scope (name :: seen) rest
  in
  check_scope [] defs;
  let referenced =
    List.concat_map (fun (_, e) -> Expr.vars e) defs
    |> List.sort_uniq String.compare
  in
  let bindings, outputs =
    List.partition (fun (name, _) -> List.mem name referenced) defs
  in
  if outputs = [] then
    raise (Parse_error "program has no outputs (every name is referenced)");
  { Prog.bindings; outputs }

let program text =
  try Ok (program_exn text) with Parse_error msg -> Error (`Parse msg)
