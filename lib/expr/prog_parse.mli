(** Text syntax for straight-line programs (decompositions).

    One definition per line (or [';']-separated):
    {v
      d1 = x + 3*y
      P1 = d1^2          # comments run to end of line
      P2 = 4*y^2*d1
    v}
    Right-hand sides use the polynomial grammar of
    {!Polysynth_poly.Parse} and may reference earlier definitions by
    name.  Names defined but never referenced by a later definition are
    the program's outputs; referenced names become bindings.  This lets a
    user hand a candidate decomposition to the cost model and the
    verifier. *)

type error = [ `Parse of string ]
(** Shared with {!Polysynth_poly.Parse.error} so callers can handle both
    parsers with one match. *)

exception Parse_error of string
(** Raised by {!program_exn} only. *)

val program : string -> (Prog.t, error) result
(** [Error (`Parse _)] on malformed input, duplicate definitions, forward
    references, or programs with no outputs. *)

val program_exn : string -> Prog.t
(** @raise Parse_error under the same conditions. *)
